"""The paper's Figure 1 bug: a ServerSocketChannel leak in ZooKeeper.

``NIOServerCnxnFactory.reconfigure`` saves the old channel, opens a new
one, and only closes the old one several statements later -- any exception
thrown in between leaks it.  This example models that code in the
mini-language and runs the socket checker: the leak is found on the
exception path, while the corrected version is clean.

Run:  python examples/zookeeper_socket_leak.py
"""

from repro import Grapple, socket_checker

# reconfigure(): the old channel's close() can be skipped by an exception
# thrown from the statements between the new bind and oldSS.close().
BUGGY = """
func wakeup_selector(x) {
    if (x > 3) {
        var e = new IOException();
        throw e;
    }
    return;
}

func reconfigure(addr) {
    var oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    oldSS.configureBlocking(0);
    try {
        var ss = new ServerSocketChannel();
        ss.bind(addr);
        ss.configureBlocking(0);
        wakeup_selector(addr);
        oldSS.close();
        ss.close();
    } catch (err) {
        ss.close();
    }
    return;
}

func main(addr) {
    reconfigure(addr);
    return;
}
"""

# The fix ZooKeeper applied: close the old channel *before* anything that
# can throw.
FIXED = """
func wakeup_selector(x) {
    if (x > 3) {
        var e = new IOException();
        throw e;
    }
    return;
}

func reconfigure(addr) {
    var oldSS = new ServerSocketChannel();
    oldSS.bind(addr);
    oldSS.configureBlocking(0);
    oldSS.close();
    try {
        var ss = new ServerSocketChannel();
        ss.bind(addr);
        ss.configureBlocking(0);
        wakeup_selector(addr);
        ss.close();
    } catch (err) {
        ss.close();
    }
    return;
}

func main(addr) {
    reconfigure(addr);
    return;
}
"""


def check(label: str, source: str) -> int:
    run = Grapple(source, [socket_checker()]).run()
    print(f"-- {label}: {len(run.report)} warning(s)")
    for warning in run.report.warnings:
        print(f"   {warning.describe()}")
    return len(run.report)


def main() -> None:
    print("== ZooKeeper 3.5.0 NIOServerCnxnFactory reconfigure() ==\n")
    buggy = check("buggy reconfigure (Figure 1)", BUGGY)
    print()
    fixed = check("fixed reconfigure", FIXED)
    assert buggy >= 1, "the Figure 1 leak should be reported"
    assert fixed == 0, "the fixed version should be clean"
    print("\nOK: leak found in the buggy version only.")


if __name__ == "__main__":
    main()
