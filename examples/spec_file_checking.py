"""Checking against an FSM written in the plain-text spec format.

The paper's workflow is "read the API docs, write the FSM, run Grapple".
The text format in :mod:`repro.checkers.spec` makes that possible without
Python: this example specifies the java.nio channel discipline as a spec
string, loads it, and checks a service.

Run:  python examples/spec_file_checking.py
"""

from repro import Grapple
from repro.checkers.spec import parse_fsm_specs

CHANNEL_SPEC = """
# java.nio.channels.FileChannel discipline: map/read/write only while
# open, force before close when dirty (simplified).
fsm channel
types FileChannel
initial Open
accepting Closed
error Error

Open   -read->   Open
Open   -write->  Dirty
Dirty  -write->  Dirty
Dirty  -force->  Open
Open   -close->  Closed
Dirty  -close->  Error      # close without force loses buffered writes
Closed -read->   Error
Closed -write->  Error
"""

SERVICE = """
func flush_and_close(ch) {
    ch.force(1);
    ch.close();
    return;
}

func good(data) {
    var ch = new FileChannel();
    ch.write(data);
    flush_and_close(ch);
    return;
}

func bad(data) {
    var ch = new FileChannel();
    ch.write(data);
    ch.close();
    return;
}

func main(data) {
    good(data);
    bad(data + 1);
    return;
}
"""


def main() -> None:
    (fsm,) = parse_fsm_specs(CHANNEL_SPEC)
    print("== FSM loaded from spec text ==")
    print(f"   states: {sorted(fsm.states())}")
    print(f"   events: {sorted(fsm.events())}\n")

    report = Grapple(SERVICE, [fsm]).run().report
    print(report.summary())

    funcs = {w.func for w in report.warnings}
    assert "bad" in funcs, "close-without-force should be flagged"
    assert "good" not in funcs, "the disciplined path is clean"
    print("\nOK: only the undisciplined close was flagged.")


if __name__ == "__main__":
    main()
