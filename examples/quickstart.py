"""Quickstart: check the paper's Figure 3b program with the I/O checker.

The program opens a FileWriter in one branch and closes it only when a
correlated condition holds.  Of the four static control-flow paths, one is
infeasible (the paper's path 3: x < 0 and then y > 0 with y == x + 1), and
one leaks the writer (path 2: x >= 0 but y <= 0).  Grapple's path-sensitive
analysis reports exactly the leak -- and nothing for the infeasible path.

Run:  python examples/quickstart.py
"""

from repro import Grapple, io_checker

FIG3B = """
func main(arg0) {
    var out = null;
    var o = null;
    var x = arg0;
    var y = x;
    if (x >= 0) {
        out = new FileWriter();
        o = out;
        y = y - 1;
    } else {
        y = y + 1;
    }
    if (y > 0) {
        out.write(x);
        o.close();
    }
    return;
}
"""


def main() -> None:
    run = Grapple(FIG3B, [io_checker()]).run()

    print("== Figure 3b: FileWriter property check ==")
    print(run.report.summary())
    print()
    print("What happened under the hood:")
    stats = run.stats
    print(f"  program graph vertices : {stats.vertices}")
    print(f"  edges before closure   : {stats.edges_before}")
    print(f"  edges after closure    : {stats.edges_after}")
    print(f"  constraints solved     : {stats.constraints_solved}")
    print(f"  infeasible paths cut   : {stats.infeasible_dropped}")
    print(f"  total time             : {run.total_time:.3f}s")

    assert len(run.report) == 1, "expected exactly the path-2 leak"
    assert run.report.warnings[0].kind == "at-exit"
    print("\nOK: exactly one warning -- the leak on the feasible path.")


if __name__ == "__main__":
    main()
