"""Multi-file linting demo: scope-graph resolution plus the new rules.

``examples/multifile_demo/`` holds three files -- ``core.mini`` and
``util.mini`` declare modules, ``app.mini`` imports both from the root
namespace -- deliberately written so that every lint rule added with
multi-file support fires exactly once:

* ``unresolved-name`` -- ``core.missing(x)`` names a symbol ``core``
  does not define;
* ``ambiguous-import`` -- ``helper`` is imported from both ``core`` and
  ``util``;
* ``tainted-sink`` -- the ``UserInput`` request reaches ``exec`` with no
  sanitizer;
* ``lock-order`` -- the ``Monitor`` is acquired twice without release;
* ``dead-store`` -- ``w`` is assigned and never read;
* ``shadowed-variable`` -- an inner ``var x`` hides the outer one.

The same directory works with the CLI::

    python -m repro check examples/multifile_demo --lint \
        --checkers taint,order,iterator,lockdep
"""

import os

from repro.checkers.checker import pack_checkers
from repro.sa.lint import run_lint_files

DEMO_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "multifile_demo"
)

EXPECTED_KINDS = {
    "unresolved-name",
    "ambiguous-import",
    "tainted-sink",
    "lock-order",
    "dead-store",
    "shadowed-variable",
}


def main():
    sources = {}
    for name in sorted(os.listdir(DEMO_DIR)):
        if name.endswith(".mini"):
            with open(os.path.join(DEMO_DIR, name)) as f:
                sources[name] = f.read()

    report = run_lint_files(
        sources, fsms=[c.fsm for c in pack_checkers()]
    )
    print(report.summary())

    missing = EXPECTED_KINDS - report.kinds()
    assert not missing, f"demo should fire every new rule; missing: {missing}"

    # File discovery order must not matter: feed the files reversed and
    # expect byte-identical output.
    reversed_report = run_lint_files(
        list(sources.items())[::-1], fsms=[c.fsm for c in pack_checkers()]
    )
    assert reversed_report.summary() == report.summary()
    print(f"OK: all {len(EXPECTED_KINDS)} multi-file lint kinds fired,"
          " output independent of file order")


if __name__ == "__main__":
    main()
