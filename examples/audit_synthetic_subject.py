"""Audit a full synthetic subject with all four checkers (mini Table 2).

Generates the ZooKeeper-profile subject (seeded with the paper's Table 2
bug mix: 65 true bugs, 0 false positives), runs the I/O, lock, exception
and socket checkers in one Grapple execution, and scores the report
against the seeded ground truth.

Run:  python examples/audit_synthetic_subject.py  [subject] [scale]
"""

import sys

from repro import Grapple, default_checkers
from repro.workloads import build_subject, classify_report


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "zookeeper"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    subject = build_subject(name, scale=scale)
    print(f"== Auditing {subject.name} {subject.version}"
          f" ({subject.description}) ==")
    print(f"   {subject.loc} lines, {subject.module_count} modules,"
          f" {len(subject.seeds)} seeded patterns\n")

    fsms = [c.fsm for c in default_checkers()]
    run = Grapple(subject.source, fsms).run()
    result = classify_report(subject.seeds, run.report)

    print(f"{'checker':<12}{'TP':>6}{'FP':>6}{'missed':>8}")
    for checker in ("io", "lock", "exception", "socket"):
        tp, fp = result.row(checker)
        missed = result.missed.get(checker, 0)
        print(f"{checker:<12}{tp:>6}{fp:>6}{missed:>8}")
    tp, fp = result.totals()
    print(f"{'total':<12}{tp:>6}{fp:>6}")
    print(f"\nunexpected warnings : {len(result.unexpected)}")
    print(f"analysis time       : {run.total_time:.1f}s")
    stats = run.stats
    print(f"edges               : {stats.edges_before} -> {stats.edges_after}")
    print(f"cache hit rate      : {stats.cache_hit_rate:.0%}")

    assert not result.unexpected, "warnings at unseeded code!"
    assert not result.missed, "seeded bugs were missed!"
    print("\nOK: every seeded bug found, nothing else flagged.")


if __name__ == "__main__":
    main()
