"""Writing a custom finite-state property checker.

Grapple takes (1) a program graph, (2) a set of types of interest, and
(3) FSMs describing their legal states and transitions (paper §1.2).  New
checkers are just FSMs -- this example specifies a database-transaction
protocol (begin -> work -> commit/rollback, never two begins, never work
after commit) and checks two services against it.

Run:  python examples/custom_checker.py
"""

from repro import Grapple, make_fsm


def transaction_checker():
    """A Transaction must commit or roll back before program exit; using
    it outside an active transaction is an error."""
    return make_fsm(
        name="txn",
        types={"Transaction"},
        initial="Idle",
        transitions={
            ("Idle", "begin"): "Active",
            ("Active", "execute"): "Active",
            ("Active", "commit"): "Done",
            ("Active", "rollback"): "Done",
            ("Idle", "execute"): "Error",  # work outside a transaction
            ("Active", "begin"): "Error",  # nested begin
            ("Done", "execute"): "Error",  # work after commit
        },
        accepting={"Idle", "Done"},
        error_states={"Error"},
    )


GOOD_SERVICE = """
func update_row(t, v) {
    t.execute(v);
    return;
}
func main(req) {
    var t = new Transaction();
    t.begin();
    update_row(t, req);
    if (req > 0) {
        t.commit();
    } else {
        t.rollback();
    }
    return;
}
"""

# Two bugs: execute before begin, and a path (req <= 0) that exits with
# the transaction still active.
BUGGY_SERVICE = """
func main(req) {
    var t = new Transaction();
    t.execute(req);
    t.begin();
    if (req > 0) {
        t.commit();
    }
    return;
}
"""


def main() -> None:
    fsm = transaction_checker()
    print("== Custom checker: database transaction protocol ==\n")
    print(f"states      : {sorted(fsm.states())}")
    print(f"events      : {sorted(fsm.events())}")
    print()

    good = Grapple(GOOD_SERVICE, [fsm]).run().report
    print(f"well-behaved service : {len(good)} warning(s)")

    bad = Grapple(BUGGY_SERVICE, [fsm]).run().report
    print(f"buggy service        : {len(bad)} warning(s)")
    for warning in bad.warnings:
        print(f"   {warning.describe()}")

    assert len(good) == 0
    assert any(w.kind == "error-transition" for w in bad.warnings)
    print("\nOK: the protocol violation was caught by the custom FSM.")


if __name__ == "__main__":
    main()
