"""Comparison baselines from the paper's §5.3.

* :mod:`repro.baselines.traditional` -- a traditional (non-systemised)
  in-memory worklist implementation of the path-sensitive alias analysis,
  with explicit constraint objects attached to edges.  With a bounded
  memory budget it runs out of memory on every subject, as the paper
  observed ("it ran out of memory quickly after several iterations").
* :mod:`repro.baselines.string_constraints` -- the systemised variant that
  stores constraints as strings embedded in edges (Table 5): it needs far
  more partitions and iterations, solves more constraints, and is much
  slower than interval encodings.
"""

from repro.baselines.traditional import (
    OutOfMemoryError,
    TraditionalStats,
    run_traditional_alias,
    run_traditional_check,
)
from repro.baselines.string_constraints import run_string_based

__all__ = [
    "OutOfMemoryError",
    "TraditionalStats",
    "run_traditional_alias",
    "run_traditional_check",
    "run_string_based",
]
