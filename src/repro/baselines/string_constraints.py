"""String-based constraint representation baseline (paper Table 5).

The same systemised engine, but each edge embeds its whole constraint as a
string rather than an interval-sequence encoding.  Strings grow with path
length, so partitions blow past the memory budget and repartition
aggressively; more partitions mean more computational iterations and more
constraint solving.  On the largest subject the paper's version of this
baseline did not terminate within 200 hours -- pass ``time_budget`` to
let the run report a timeout instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.pipeline import Grapple, GrappleOptions, GrappleRun
from repro.checkers.fsm import FSM
from repro.engine.computation import EngineOptions


@dataclass
class StringBaselineResult:
    run: GrappleRun | None
    timed_out: bool
    partitions: int
    iterations: int
    constraints_solved: int
    total_time: float


def run_string_based(
    source: str,
    fsms: list[FSM],
    options: GrappleOptions | None = None,
    time_budget: float | None = None,
) -> StringBaselineResult:
    """Run the full pipeline with string-encoded constraints."""
    options = options or GrappleOptions()
    engine_options = replace(
        options.engine,
        constraint_mode="string",
        time_budget=time_budget,
    )
    string_options = GrappleOptions(
        unroll=options.unroll,
        max_clone_depth=options.max_clone_depth,
        max_clones=options.max_clones,
        engine=engine_options,
    )
    run = Grapple(source, fsms, string_options).run()
    stats = run.stats
    timed_out = _timed_out(run)
    return StringBaselineResult(
        run=run,
        timed_out=timed_out,
        partitions=stats.final_partitions,
        iterations=stats.pairs_processed,
        constraints_solved=stats.constraints_solved,
        total_time=run.total_time,
    )


def _timed_out(run: GrappleRun) -> bool:
    # GraphEngine records timeout on itself; the pipeline keeps only the
    # results, so infer from the per-phase stats flag set by the engine.
    for result in (run.alias_phase.engine_result, run.dataflow_phase.engine_result):
        if getattr(result.stats, "timed_out", False):
            return True
    return False
