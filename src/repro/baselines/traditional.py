"""Traditional in-memory path-sensitive alias analysis (paper §5.3).

"We represented the actual constraints using objects and saved them with
edges via pointers.  A worklist-based algorithm was employed to
iteratively check existing edges and add new edges.  This implementation
could not successfully analyze any program in our set -- it ran out of
memory quickly after several iterations."

This module reproduces that design: a worklist closure over the same alias
program graph, but entirely in memory, with every edge carrying a full
constraint expression object.  Memory use is metered (edges plus
expression-tree nodes) against a configurable budget; exceeding it raises
:class:`OutOfMemoryError` -- the simulated OOM, standing in for the
paper's 16 GB desktop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.frontend import CompiledProgram
from repro.cfet import encoding as enc_mod
from repro.grammar.cfg_grammar import ComposeContext
from repro.grammar.pointsto import PointsToGrammar
from repro.graph.alias_graph import build_alias_graph
from repro.smt import Result, Solver
from repro.smt import expr as E

# Rough per-object sizes (CPython, 64-bit): an edge record and one
# expression tree node.
EDGE_BYTES = 120
EXPR_NODE_BYTES = 88


class OutOfMemoryError(MemoryError):
    """The traditional implementation exceeded its memory budget."""

    def __init__(self, stats: "TraditionalStats"):
        super().__init__(
            f"out of memory after {stats.iterations} iterations"
            f" ({stats.estimated_bytes // (1 << 20)} MiB estimated,"
            f" {stats.edges} edges)"
        )
        self.stats = stats


@dataclass
class TraditionalStats:
    edges: int = 0
    facts: int = 0
    iterations: int = 0
    constraints_solved: int = 0
    estimated_bytes: int = 0
    elapsed: float = 0.0
    completed: bool = False
    _start: float = 0.0


def run_traditional_alias(
    compiled: CompiledProgram,
    tracked_types: set[str] | None = None,
    memory_budget: int = 64 << 20,
) -> TraditionalStats:
    """Run the alias worklist; raises :class:`OutOfMemoryError` when the
    budget is exceeded (the expected outcome on real subjects)."""
    stats, _graph_result, _adjacency = _alias_closure(
        compiled, tracked_types, memory_budget, time.perf_counter(),
        TraditionalStats(),
    )
    stats.elapsed = time.perf_counter() - stats._start
    stats.completed = True
    return stats


def _alias_closure(
    compiled: CompiledProgram,
    tracked_types,
    memory_budget: int,
    start: float,
    stats: TraditionalStats,
):
    stats._start = start
    graph_result = build_alias_graph(
        compiled.program,
        compiled.icfet,
        compiled.callgraph,
        compiled.info,
        compiled.forest,
        tracked_types,
    )
    graph = graph_result.graph
    grammar = PointsToGrammar()
    solver = Solver()
    ctx = ComposeContext(feasible=lambda encs: True, vertex=graph.vertices.lookup)

    # Materialise all edges with explicit constraint objects.
    adjacency: dict[int, dict] = {}  # src -> {(dst, label) -> [constraints]}
    radjacency: dict[int, dict] = {}  # dst -> {(src, label) -> [constraints]}
    expr_sizes: dict[int, int] = {}

    def expr_size(expr: E.Expr) -> int:
        cached = expr_sizes.get(id(expr))
        if cached is None:
            cached = 1 + sum(
                expr_size(a) for a in expr.args if isinstance(a, E.Expr)
            )
            expr_sizes[id(expr)] = cached
        return cached

    def charge(constraint: E.Expr) -> None:
        stats.edges += 1
        stats.estimated_bytes += EDGE_BYTES + EXPR_NODE_BYTES * expr_size(
            constraint
        )
        if stats.estimated_bytes > memory_budget:
            stats.elapsed = time.perf_counter() - stats._start
            raise OutOfMemoryError(stats)

    def add_edge(src: int, dst: int, label: tuple, constraint: E.Expr) -> bool:
        slot = adjacency.setdefault(src, {}).setdefault((dst, label), [])
        if any(existing == constraint for existing in slot):
            return False
        slot.append(constraint)
        radjacency.setdefault(dst, {}).setdefault((src, label), []).append(
            constraint
        )
        charge(constraint)
        return True

    worklist: list = []
    labels = graph.labels
    for src, dst, label_id, encoding in graph.iter_edges():
        label = labels.lookup(label_id)
        constraint = enc_mod.decode_constraint(encoding, compiled.icfet)
        if add_edge(src, dst, label, constraint):
            worklist.append((src, dst, label, constraint))
        for derived_label, rev in grammar.derived(label):
            edge = (dst, src) if rev else (src, dst)
            if add_edge(edge[0], edge[1], derived_label, constraint):
                worklist.append((edge[0], edge[1], derived_label, constraint))

    def emit(src: int, dst: int, label: tuple, constraint: E.Expr) -> None:
        if add_edge(src, dst, label, constraint):
            worklist.append((src, dst, label, constraint))
        for derived_label, rev in grammar.derived(label):
            edge = (dst, src) if rev else (src, dst)
            if add_edge(edge[0], edge[1], derived_label, constraint):
                worklist.append((edge[0], edge[1], derived_label, constraint))

    def try_compose(left, right) -> None:
        src, dst, label, constraint = left
        dst_mid, dst2, label2, constraint2 = right
        new_labels = grammar.compose(
            (src, dst, label, None), (dst_mid, dst2, label2, None), ctx
        )
        if not new_labels:
            return
        combined = E.and_(constraint, constraint2)
        stats.constraints_solved += 1
        if solver.check(combined) is not Result.SAT:
            return
        for new_label in new_labels:
            emit(src, dst2, new_label, combined)

    while worklist:
        stats.iterations += 1
        src, dst, label, constraint = worklist.pop()
        edge = (src, dst, label, constraint)
        # As the left edge of a pair ...
        for (dst2, label2), constraints2 in list(adjacency.get(dst, {}).items()):
            for constraint2 in list(constraints2):
                try_compose(edge, (dst, dst2, label2, constraint2))
        # ... and as the right edge of a pair.
        for (src0, label0), constraints0 in list(radjacency.get(src, {}).items()):
            for constraint0 in list(constraints0):
                try_compose((src0, src, label0, constraint0), edge)

    return stats, graph_result, adjacency


def run_traditional_check(
    compiled: CompiledProgram,
    fsms: list,
    memory_budget: int = 64 << 20,
) -> TraditionalStats:
    """The full traditional finite-state property checker: alias closure
    followed by in-memory dataflow fact propagation, every edge and fact
    carrying a full constraint object.

    Fact constraints are whole-path conjunctions (no interval compaction),
    so memory grows with path length times fact count; on realistic
    subjects this exceeds any proportionate budget -- the paper's
    "crashed with out-of-memory errors in all cases".
    """
    from repro.graph.dataflow_graph import build_dataflow_graph
    from repro.grammar.pointsto import FLOWS_TO

    start = time.perf_counter()
    stats = TraditionalStats()
    fsms_by_type = {t: fsm for fsm in fsms for t in fsm.types}
    stats, graph_result, adjacency = _alias_closure(
        compiled, set(fsms_by_type), memory_budget, start, stats
    )

    tracked_vertices = {t.vertex for t in graph_result.tracked}
    flows_to: dict = {}
    for src, targets in adjacency.items():
        if src not in tracked_vertices:
            continue
        for (dst, label), constraints in targets.items():
            if label == FLOWS_TO:
                flows_to.setdefault((src, dst), []).extend(constraints)

    df = build_dataflow_graph(compiled.icfet, graph_result, fsms_by_type)
    solver = Solver()
    expr_sizes: dict[int, int] = {}

    def expr_size(expr: E.Expr) -> int:
        cached = expr_sizes.get(id(expr))
        if cached is None:
            cached = 1 + sum(
                expr_size(a) for a in expr.args if isinstance(a, E.Expr)
            )
            expr_sizes[id(expr)] = cached
        return cached

    def charge(constraint: E.Expr) -> None:
        stats.facts += 1
        stats.estimated_bytes += EDGE_BYTES + EXPR_NODE_BYTES * expr_size(
            constraint
        )
        if stats.estimated_bytes > memory_budget:
            stats.elapsed = time.perf_counter() - start
            raise OutOfMemoryError(stats)

    # Control-flow adjacency with decoded constraints per edge.
    cf_out: dict = {}
    label_cf = df.graph.labels.get(("cf",))
    for src, dst, label_id, encoding in df.graph.iter_edges():
        if label_id != label_cf:
            continue
        constraint = enc_mod.decode_constraint(encoding, compiled.icfet)
        events = df.events_meta.get((src, dst), ())
        cf_out.setdefault(src, []).append((dst, constraint, events))

    facts: dict = {}  # (obj, pt, state) -> list of constraints
    worklist: list = []

    def add_fact(obj, pt, state, constraint) -> None:
        slot = facts.setdefault((obj, pt, state), [])
        if any(existing == constraint for existing in slot):
            return
        slot.append(constraint)
        charge(constraint)
        worklist.append((obj, pt, state, constraint))

    for src, dst, label_id, encoding in df.graph.iter_edges():
        label = df.graph.labels.lookup(label_id)
        if label[0] != "st":
            continue
        constraint = enc_mod.decode_constraint(encoding, compiled.icfet)
        add_fact(src, dst, label[2], constraint)

    while worklist:
        stats.iterations += 1
        obj, pt, state, constraint = worklist.pop()
        entry = df.objects.get(obj)
        if entry is None:
            continue
        fsm, alias_obj, _tracked = entry
        if fsm.is_error(state):
            continue
        for dst, cf_constraint, events in cf_out.get(pt, ()):
            combined = E.and_(constraint, cf_constraint)
            stats.constraints_solved += 1
            if solver.check(combined) is not Result.SAT:
                continue
            new_state = state
            for _index, base_vertex, method in events:
                if method not in fsm.events():
                    continue
                for alias_c in flows_to.get((alias_obj, base_vertex), ()):
                    stats.constraints_solved += 1
                    if solver.check(E.and_(combined, alias_c)) is Result.SAT:
                        new_state = fsm.step(new_state, method)
                        break
            add_fact(obj, dst, new_state, combined)

    stats.elapsed = time.perf_counter() - start
    stats.completed = True
    return stats
