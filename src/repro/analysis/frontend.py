"""Frontend driver: source text to analysable program artifacts."""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.lang import ast
from repro.lang.callgraph import CallGraph, build_call_graph
from repro.lang.parser import parse_program
from repro.lang.transform import (
    lower_exceptions,
    normalize_calls,
    unroll_loops,
)
from repro.lang.types import ObjectInfo, infer_object_vars
from repro.cfet.icfet import Icfet, build_icfet
from repro.graph.cloning import CloneForest, enumerate_clones


@dataclass
class CompiledProgram:
    """Everything the analyses need about one subject program."""

    program: ast.Program
    icfet: Icfet
    callgraph: CallGraph
    info: ObjectInfo
    forest: CloneForest
    loc: int
    frontend_time: float
    #: Scope-graph resolution record for multi-file subjects
    #: (:class:`repro.sa.scopes.Resolution`); None for single-source runs.
    resolution: object = None


def compile_source(
    source,
    unroll: int = 2,
    max_clone_depth: int = 24,
    max_clones: int = 500_000,
    reduce: bool = False,
    reduction=None,
    trace=None,
    scope_cache=None,
) -> CompiledProgram:
    """Parse, lower, and index a subject program.

    ``source`` is either a single source string (legacy single-file
    path: no scope resolution, byte-identical behaviour) or a multi-file
    mapping ``{path: text}`` / list of ``(path, text)`` pairs, which is
    routed through scope-graph name resolution and linking
    (:mod:`repro.sa.scopes`; ``scope_cache`` optionally persists the
    per-file artifacts).

    With ``reduce`` on, the :mod:`repro.sa` AST reductions run between
    exception lowering and CFET construction: constant branches are
    folded away and dead pure-scalar stores removed, so the CFET (and
    therefore every generated graph edge and path constraint) is built
    from the reduced program.  ``reduction`` collects the counters and
    ``trace`` (a :class:`repro.obs.trace.TraceRecorder`) the pass spans.
    """
    start = time.perf_counter()
    resolution = None
    if isinstance(source, str):
        program = parse_program(source)
        source_text = source
    else:
        from repro.sa.scopes import load_modules

        tick = trace.begin() if trace is not None else 0.0
        loaded = load_modules(source, cache=scope_cache)
        if trace is not None:
            trace.end("sa-scopes", tick, cat="sa")
        program = loaded.program
        resolution = loaded.resolution
        texts = source.values() if isinstance(source, dict) else (
            text for _, text in source
        )
        source_text = "\n".join(texts)
    normalize_calls(program)
    unroll_loops(program, unroll)
    lower_exceptions(program)
    if reduce:
        from repro.sa.constprop import fold_constant_branches
        from repro.sa.liveness import eliminate_dead_stores
        from repro.sa.reduce import ReductionStats

        if reduction is None:
            reduction = ReductionStats()
        tick = trace.begin() if trace is not None else 0.0
        reduction.branches_folded += fold_constant_branches(program)
        if trace is not None:
            trace.end("sa-fold", tick, cat="sa")
            tick = trace.begin()
        # Dead-store elimination needs object-variable classification to
        # restrict itself to scalars; the folded program gives the same
        # (or a smaller) classification than the original.
        reduction.dead_stores_removed += eliminate_dead_stores(
            program, infer_object_vars(program)
        )
        if trace is not None:
            trace.end("sa-dse", tick, cat="sa")
    icfet = build_icfet(program)
    callgraph = build_call_graph(program)
    info = infer_object_vars(program)
    forest = enumerate_clones(
        program, icfet, callgraph,
        max_depth=max_clone_depth, max_clones=max_clones,
    )
    loc = sum(1 for line in source_text.splitlines() if line.strip())
    return CompiledProgram(
        program=program,
        icfet=icfet,
        callgraph=callgraph,
        info=info,
        forest=forest,
        loc=loc,
        frontend_time=time.perf_counter() - start,
        resolution=resolution,
    )
