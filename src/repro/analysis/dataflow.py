"""Phase 2: path-sensitive dataflow (typestate) analysis."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.alias import AliasAnalysis
from repro.analysis.frontend import CompiledProgram
from repro.checkers.fsm import FSM
from repro.engine.computation import EngineOptions, EngineResult, GraphEngine
from repro.grammar.dataflow import DataflowGrammar
from repro.graph.dataflow_graph import DataflowGraphResult, build_dataflow_graph


@dataclass
class DataflowAnalysis:
    graph_result: DataflowGraphResult
    engine_result: EngineResult


def run_dataflow_phase(
    compiled: CompiledProgram,
    alias_phase: AliasAnalysis,
    fsms_by_type: dict[str, FSM],
    options: EngineOptions | None = None,
    relevance=None,
    rstats=None,
) -> DataflowAnalysis:
    """Propagate FSM states over the dataflow graph, answering alias
    queries from phase 1's in-memory results.

    ``relevance``/``rstats`` (from :mod:`repro.sa`) skip clones of
    flow-irrelevant functions and, when reduction is on, compress linear
    cf chains before the closure runs.
    """
    graph_result = build_dataflow_graph(
        compiled.icfet,
        alias_phase.graph_result,
        fsms_by_type,
        relevance=relevance,
        rstats=rstats,
    )
    if rstats is not None:
        from repro.sa.reduce import compress_cf_chains

        trace = options.trace if options is not None else None
        tick = trace.begin() if trace is not None else 0.0
        compress_cf_chains(graph_result, compiled.icfet, rstats)
        if trace is not None:
            trace.end("sa-compress", tick, cat="sa")
    grammar = DataflowGrammar(
        objects=graph_result.objects,
        alias_index=alias_phase.flows_to,
        events_meta=graph_result.events_meta,
    )
    engine = GraphEngine(compiled.icfet, grammar, options, phase="dataflow")
    engine_result = engine.run(graph_result.graph)
    return DataflowAnalysis(graph_result, engine_result)
