"""Phase 1: path-sensitive, context-sensitive alias analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.frontend import CompiledProgram
from repro.engine.computation import EngineOptions, EngineResult, GraphEngine
from repro.grammar.pointsto import ALIAS, FLOWS_TO, PointsToGrammar
from repro.graph.alias_graph import AliasGraphResult, build_alias_graph


@dataclass
class AliasAnalysis:
    """Phase 1 output held in memory for phase 2's alias queries."""

    graph_result: AliasGraphResult
    engine_result: EngineResult
    # (object vertex, variable vertex) -> tuple of witness path encodings
    flows_to: dict = field(default_factory=dict)
    alias_pair_count: int = 0

    def flows_to_encodings(self, obj_vertex: int, var_vertex: int):
        return self.flows_to.get((obj_vertex, var_vertex), ())

    def points_to(self, func: str, var: str, ctx: tuple | None = None):
        """Allocation sites the variable may reference.

        The cloning-based design answers the query the paper uses to
        motivate it (§2.1): *"what objects does a variable point to under
        a particular context?"* -- pass ``ctx`` (a clone's cid tuple) to
        scope the answer to one calling context; omit it to union over all
        contexts.  Returns ``{(site, ctx), ...}``.
        """
        vertices = self.graph_result.graph.vertices
        out = set()
        for src, dst, _enc in self.engine_result.edges_with_label(FLOWS_TO):
            dst_key = vertices.lookup(dst)
            if dst_key[0] != "var":
                continue
            if dst_key[2] != func or dst_key[3] != var:
                continue
            if ctx is not None and dst_key[1] != ctx:
                continue
            src_key = vertices.lookup(src)
            if src_key[0] == "obj":
                out.add((src_key[1], dst_key[1]))
        return out

    def iter_alias_pairs(self):
        """Stream the computed alias pairs as resolved vertex keys."""
        vertices = self.graph_result.graph.vertices
        for src, dst, _enc in self.engine_result.edges_with_label(ALIAS):
            yield vertices.lookup(src), vertices.lookup(dst)


def run_alias_phase(
    compiled: CompiledProgram,
    tracked_types: set[str] | None = None,
    options: EngineOptions | None = None,
    relevance=None,
    rstats=None,
) -> AliasAnalysis:
    """Build the alias program graph and run the points-to closure.

    ``relevance``/``rstats`` (from :mod:`repro.sa`) slice away variables
    that cannot reach a tracked object before any edge is generated.
    """
    if relevance is not None and rstats is not None:
        for func, vars_ in sorted(compiled.info.object_vars.items()):
            sliced = sum(
                1 for v in vars_ if not relevance.var_relevant(func, v)
            )
            rstats.alias_vars_sliced += sliced
            if sliced and func not in relevance.alias_relevant_funcs:
                rstats.functions_sliced += 1
    graph_result = build_alias_graph(
        compiled.program,
        compiled.icfet,
        compiled.callgraph,
        compiled.info,
        compiled.forest,
        tracked_types,
        relevance=relevance,
        rstats=rstats,
    )
    engine = GraphEngine(compiled.icfet, PointsToGrammar(), options, phase="alias")
    engine_result = engine.run(graph_result.graph)

    analysis = AliasAnalysis(graph_result, engine_result)
    tracked_vertices = {t.vertex for t in graph_result.tracked}
    for src, dst, label, encoding in engine_result.iter_edges():
        if label == FLOWS_TO and src in tracked_vertices:
            key = (src, dst)
            analysis.flows_to[key] = analysis.flows_to.get(key, ()) + (encoding,)
        elif label == ALIAS:
            analysis.alias_pair_count += 1
    return analysis
