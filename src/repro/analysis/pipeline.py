"""The end-to-end Grapple pipeline (paper §2.2's three-phase workflow).

:class:`Grapple` ties everything together: compile the subject, run the
path-sensitive alias closure (phase 1), run the path-sensitive dataflow
closure with in-memory alias queries (phase 2), then extract state facts
and check them against every applicable FSM (phase 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.alias import AliasAnalysis, run_alias_phase
from repro.analysis.dataflow import DataflowAnalysis, run_dataflow_phase
from repro.analysis.frontend import CompiledProgram, compile_source
from repro.checkers.fsm import FSM
from repro.checkers.report import Report, Warning
from repro.engine.computation import EngineOptions
from repro.engine.stats import EngineStats


@dataclass
class GrappleOptions:
    """End-to-end knobs: frontend bounds plus engine options."""

    unroll: int = 2
    max_clone_depth: int = 24
    max_clones: int = 500_000
    #: Run the pre-closure reductions (:mod:`repro.sa`): constant-branch
    #: folding, dead-store elimination, FSM-relevance slicing and cf-chain
    #: compression.  On by default; ``--no-reduce`` turns it off.
    reduce: bool = True
    #: Optional :class:`~repro.sa.scopes.ScopeArtifactCache` shared
    #: across runs (the serve daemon hands one in so only edited files
    #: re-derive their scope artifacts).
    scope_cache: object = None
    engine: EngineOptions = field(default_factory=EngineOptions)


@dataclass
class GrappleRun:
    """Everything produced by one Grapple execution."""

    compiled: CompiledProgram
    alias_phase: AliasAnalysis
    dataflow_phase: DataflowAnalysis
    report: Report
    preprocess_time: float
    computation_time: float
    total_time: float
    #: Pre-closure reduction counters; None when reduction was off.
    reduction: "ReductionStats | None" = None

    @property
    def stats(self) -> EngineStats:
        """Merged engine stats across both phases (Fig. 9 components).

        Cross-phase aggregation is :meth:`EngineStats.merge_phase`,
        derived entirely from field metadata: counters and gauges sum
        (whatever their scope -- both operands are final per-phase
        results, not worker deltas), flags OR, registries merge.
        """
        merged = EngineStats()
        merged.merge_phase(self.alias_phase.engine_result.stats)
        merged.merge_phase(self.dataflow_phase.engine_result.stats)
        return merged

    def run_report(
        self, subject: str | None = None, telemetry: dict | None = None
    ) -> dict:
        """The ``grapple/run-report`` JSON document for this run.

        ``telemetry`` is a resource sampler's timeseries document
        (``repro.obs.profile``); when given it rides in the report's
        optional ``telemetry`` section (schema version 2).
        """
        from repro.obs.report import build_run_report

        return build_run_report(self, subject=subject, telemetry=telemetry)


class Grapple:
    """Facade: check finite-state properties of one subject program.

    ``source`` is a single source string or a multi-file mapping
    ``{path: text}`` (or ``(path, text)`` pairs); multi-file subjects go
    through scope-graph name resolution (:mod:`repro.sa.scopes`) before
    the phases run, and the resolution record rides on
    ``run.compiled.resolution``.
    """

    def __init__(
        self,
        source,
        fsms: list[FSM],
        options: GrappleOptions | None = None,
    ):
        self.source = source
        self.fsms = list(fsms)
        self.options = options or GrappleOptions()

    def run(self) -> GrappleRun:
        options = self.options
        start = time.perf_counter()
        reduction = None
        trace = options.engine.trace
        if options.reduce:
            from repro.sa.reduce import ReductionStats

            reduction = ReductionStats()
        compiled = compile_source(
            self.source,
            unroll=options.unroll,
            max_clone_depth=options.max_clone_depth,
            max_clones=options.max_clones,
            reduce=options.reduce,
            reduction=reduction,
            trace=trace,
            scope_cache=options.scope_cache,
        )
        fsms_by_type: dict[str, FSM] = {}
        for fsm in self.fsms:
            for type_name in fsm.types:
                fsms_by_type[type_name] = fsm
        tracked_types = set(fsms_by_type)

        relevance = None
        if options.reduce:
            from repro.sa.relevance import compute_relevance

            tracked_events: set[str] = set()
            for fsm in self.fsms:
                tracked_events |= fsm.events()
            tick = trace.begin() if trace is not None else 0.0
            relevance = compute_relevance(
                compiled.program,
                compiled.callgraph,
                compiled.info,
                tracked_types,
                tracked_events,
            )
            if trace is not None:
                trace.end("sa-relevance", tick, cat="sa")

        alias_phase = run_alias_phase(
            compiled, tracked_types, options.engine,
            relevance=relevance, rstats=reduction,
        )
        dataflow_phase = run_dataflow_phase(
            compiled, alias_phase, fsms_by_type, options.engine,
            relevance=relevance, rstats=reduction,
        )
        report = extract_report(dataflow_phase, compiled.icfet)
        total = time.perf_counter() - start

        preprocess = (
            compiled.frontend_time
            + alias_phase.engine_result.stats.preprocess_time
            + dataflow_phase.engine_result.stats.preprocess_time
        )
        return GrappleRun(
            compiled=compiled,
            alias_phase=alias_phase,
            dataflow_phase=dataflow_phase,
            report=report,
            preprocess_time=preprocess,
            computation_time=total - preprocess,
            total_time=total,
            reduction=reduction,
        )


def extract_report(
    dataflow_phase: DataflowAnalysis,
    icfet=None,
    with_witnesses: bool = True,
) -> Report:
    """Phase 3: check each object's reachable states against its FSM.

    When the ICFET is supplied, each warning carries a *witness*: a
    concrete assignment to the program's inputs satisfying the path
    constraint of one witnessing path (decoded from the state edge's
    encoding and solved for a model).
    """
    report = Report()
    objects = dataflow_phase.graph_result.objects
    exits = dataflow_phase.graph_result.exit_vertices
    fsm_by_name = {fsm.name: fsm for fsm, _, _ in objects.values()}
    for src, dst, label, encoding in dataflow_phase.engine_result.iter_edges():
        if label[0] != "st":
            continue
        entry = objects.get(src)
        if entry is None:
            continue
        fsm_name, state = label[1], label[2]
        fsm = fsm_by_name.get(fsm_name)
        if fsm is None:
            continue
        _, _, tracked = entry
        if fsm.is_error(state):
            kind = "error-transition"
        elif dst in exits and fsm.violates_at_exit(state):
            kind = "at-exit"
        else:
            continue
        witness = ()
        if with_witnesses and icfet is not None:
            witness = _witness_of(encoding, icfet)
        report.add(
            Warning(
                checker=fsm_name,
                kind=kind,
                site=tracked.site,
                type_name=tracked.type_name,
                state=state,
                func=tracked.clone_key[1],
                line=tracked.line,
                witness=witness,
            )
        )
    return report


def _witness_of(encoding, icfet) -> tuple:
    """Concrete triggering inputs for one witnessing path encoding."""
    from repro.cfet.encoding import decode_constraint
    from repro.smt import Solver

    try:
        constraint = decode_constraint(encoding, icfet)
        model = Solver().get_model(constraint)
    except (ValueError, KeyError):  # string-mode payloads, pruned ICFETs
        return ()
    if not model:
        return ()
    entries = []
    for name in sorted(model):
        if not isinstance(name, str) or "@" in name or "::" not in name:
            continue  # only root-context program symbols
        short = name.split("::", 1)[1]
        if short.startswith(("opaque_", "ret_occ", "thr_occ", "__")):
            continue
        value = model[name]
        if hasattr(value, "denominator") and value.denominator == 1:
            value = int(value)
        entries.append(f"{name} = {value}")
        if len(entries) >= 4:
            break
    return tuple(entries)
