"""Phase drivers and the end-to-end Grapple pipeline (paper §2.2).

1. :mod:`repro.analysis.frontend` compiles mini-language source into core
   form plus the ICFET, call graph, type info and clone forest;
2. :mod:`repro.analysis.alias` runs the path-sensitive alias analysis
   (phase 1) on the engine;
3. :mod:`repro.analysis.dataflow` runs the path-sensitive dataflow/typestate
   analysis (phase 2), consulting phase 1's results for alias queries;
4. :mod:`repro.analysis.pipeline` extracts per-point states and checks them
   against the FSMs (phase 3), producing the bug report.
"""

from repro.analysis.frontend import CompiledProgram, compile_source
from repro.analysis.alias import AliasAnalysis, run_alias_phase
from repro.analysis.dataflow import DataflowAnalysis, run_dataflow_phase
from repro.analysis.pipeline import Grapple, GrappleOptions, GrappleRun

__all__ = [
    "CompiledProgram",
    "compile_source",
    "AliasAnalysis",
    "run_alias_phase",
    "DataflowAnalysis",
    "run_dataflow_phase",
    "Grapple",
    "GrappleOptions",
    "GrappleRun",
]
