"""Deterministic fault injection for the disk engine.

Grapple's durability claims (atomic partition writes, crash-tolerant
delta frames, worker retry, checkpoint/resume) are only worth anything
if they are exercised; this module injects the failures those mechanisms
exist to survive, at *deterministic* points, so every recovery path has
a repeatable test.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
naming an injection *site* (a well-known string the engine passes to
:meth:`FaultPlan.fire` at the instrumented operation), a *mode* (what to
break), and *nth* (fire on the nth operation at that site, counted
per process).  Specs parse from a compact string so they can ride the
CLI::

    --fault-plan "short_write@partition-write:2,kill_worker@worker-task:1"

Sites and their legal modes:

``partition-write``  (:meth:`PartitionStore._save`)
    ``short_write``  -- write a truncated prefix of the payload directly
    to the destination path, bypassing the temp-file/rename protocol
    (the pre-atomic torn write this PR eliminates);
    ``torn_rename``  -- write and fsync the temp file but skip the
    ``os.replace`` (a crash between write and rename: the previous
    durable version survives untouched).

``delta-append``  (direct append and :class:`SpillWriter` thread)
    ``short_frame``  -- append only a prefix of the frame (a crash
    mid-append; the tolerant reader must drop the tail);
    ``bad_frame``  -- flip payload bytes but keep the stale CRC (the
    reader must detect the mismatch and salvage around it);
    ``bad_zlib``  -- replace the payload with an undecodable ``GRPZ``
    frame and a *valid* CRC (corruption below the checksum: surfaces as
    :class:`~repro.engine.serialize.CorruptPartition` at decode time).

``worker-task``  (:func:`repro.engine.parallel._worker_run`)
    ``kill_worker``  -- SIGKILL the worker process at task start; the
    coordinator must detect the broken pool, rebuild it, and retry.

``checkpoint``  (:meth:`GraphEngine._write_checkpoint`, after the
manifest is durable)
    ``kill_run``  -- SIGKILL the whole process; a later ``--resume``
    must restart from this manifest.

``attach``  (:meth:`repro.engine.shm.ShmAttachCache.attach`, before a
worker maps a published segment)
    ``shm_unlink``  -- unlink the segment out from under the worker
    (as if the coordinator died mid-republish); the attach must fail
    with ``ShmAttachLost`` and the pair go through the retry path,
    never silently fall back to the (possibly stale) partition file.

Every spec fires **at most once per run**, enforced by a latch file in
the engine workdir created with ``O_EXCL`` -- so a retried worker (a
fresh fork whose per-process counters restarted) does not re-kill
itself, and a resumed run does not re-trip the faults that crashed it.
The optional ``seed`` feeds the byte-mutation modes so corruption is
repeatable bit-for-bit.
"""

from __future__ import annotations

import os
import signal
import threading
import zlib
from dataclasses import dataclass

SITES = {
    "partition-write": ("short_write", "torn_rename"),
    "delta-append": ("short_frame", "bad_frame", "bad_zlib"),
    "worker-task": ("kill_worker",),
    "checkpoint": ("kill_run",),
    "attach": ("shm_unlink",),
}


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: fire ``mode`` on the ``nth`` op at ``site``."""

    mode: str
    site: str
    nth: int


class FaultPlanError(ValueError):
    """A fault-plan spec string is malformed."""


class FaultPlan:
    """Deterministic, once-per-run fault injectors for the engine."""

    def __init__(self, specs: list[FaultSpec], seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._counts: dict[str, int] = {}
        self._latch_dir: str | None = None
        self._fired: set[int] = set()  # in-memory latch when no dir
        self._lock = threading.Lock()

    # -- construction ---------------------------------------------------------

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"mode@site:nth,..."`` into a plan."""
        specs = []
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            try:
                mode, rest = item.split("@", 1)
                site, nth = rest.split(":", 1)
                spec = FaultSpec(mode.strip(), site.strip(), int(nth))
            except ValueError:
                raise FaultPlanError(
                    f"bad fault spec {item!r} (want mode@site:nth)"
                ) from None
            if spec.site not in SITES:
                raise FaultPlanError(
                    f"unknown fault site {spec.site!r}"
                    f" (known: {', '.join(sorted(SITES))})"
                )
            if spec.mode not in SITES[spec.site]:
                raise FaultPlanError(
                    f"mode {spec.mode!r} not valid at site {spec.site!r}"
                    f" (valid: {', '.join(SITES[spec.site])})"
                )
            if spec.nth < 1:
                raise FaultPlanError(f"nth must be >= 1 in {item!r}")
            specs.append(spec)
        return cls(specs, seed=seed)

    def arm(self, latch_dir: str, reset: bool = False) -> None:
        """Bind the once-per-run latches to ``latch_dir``.

        The first call wins (the pipeline's two phases share one plan and
        one latch directory, so a fault fires once across the whole run).
        ``reset`` clears stale latch files -- a *fresh* run in a reused
        workdir starts with every fault re-armed, while ``--resume``
        keeps them tripped.
        """
        if self._latch_dir is not None:
            return
        os.makedirs(latch_dir, exist_ok=True)
        self._latch_dir = latch_dir
        if reset:
            for k in range(len(self.specs)):
                try:
                    os.remove(self._latch_path(k))
                except FileNotFoundError:
                    pass

    def _latch_path(self, k: int) -> str:
        return os.path.join(self._latch_dir, f"fault-{k:02d}.fired")

    def _acquire(self, k: int) -> bool:
        """Latch spec ``k``; True exactly once across all processes."""
        if self._latch_dir is None:
            if k in self._fired:
                return False
            self._fired.add(k)
            return True
        try:
            fd = os.open(self._latch_path(k), os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    # -- firing ---------------------------------------------------------------

    def fire(self, site: str) -> FaultSpec | None:
        """Count one operation at ``site``; the spec to apply, or None."""
        with self._lock:
            count = self._counts.get(site, 0) + 1
            self._counts[site] = count
        for k, spec in enumerate(self.specs):
            if spec.site != site or spec.nth != count:
                continue
            if self._acquire(k):
                return spec
        return None

    # -- mode implementations --------------------------------------------------

    def mutate_frame(self, spec: FaultSpec, frame: bytes) -> bytes:
        """Apply a ``delta-append`` mode to an encoded frame's bytes."""
        from repro.engine import serialize

        header = serialize.FRAME_HEADER_BYTES
        payload = bytearray(frame[header:])
        if spec.mode == "short_frame":
            keep = header + max(0, len(payload) // 2)
            return frame[:keep]
        if spec.mode == "bad_frame":
            if not payload:
                return frame[: header - 1]
            at = (zlib.crc32(bytes(payload)) ^ self.seed) % len(payload)
            payload[at] ^= 0xFF
            return frame[:header] + bytes(payload)
        if spec.mode == "bad_zlib":
            bad = serialize.ZMAGIC + bytes(
                (self.seed + i) & 0xFF for i in range(16)
            )
            return serialize.encode_frame(bad)
        raise FaultPlanError(f"mode {spec.mode!r} is not a frame mutation")

    @staticmethod
    def kill_self() -> None:
        """SIGKILL the current process (``kill_worker`` / ``kill_run``)."""
        os.kill(os.getpid(), signal.SIGKILL)


class _NullPlan:
    """No-fault default: ``fire`` never triggers, costs one comparison."""

    specs: tuple = ()

    def fire(self, site: str):
        return None

    def arm(self, latch_dir: str, reset: bool = False) -> None:
        return None


NULL_PLAN = _NullPlan()


def resolve_plan(plan) -> "FaultPlan | _NullPlan":
    """Normalise an ``EngineOptions.fault_plan`` value: None, a spec
    string, or an already-built plan."""
    if plan is None:
        return NULL_PLAN
    if isinstance(plan, str):
        return FaultPlan.parse(plan)
    return plan
