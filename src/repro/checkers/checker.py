"""Convenience layer: named checkers and a one-call entry point."""

from __future__ import annotations

from dataclasses import dataclass

from repro.checkers.exception_checker import exception_checker
from repro.checkers.fsm import FSM
from repro.checkers.io_checker import io_checker
from repro.checkers.lock_checker import lock_checker
from repro.checkers.lockdep_checker import lockdep_checker
from repro.checkers.order_checker import iterator_checker, order_checker
from repro.checkers.report import Report
from repro.checkers.socket_checker import socket_checker
from repro.checkers.taint_checker import taint_checker

#: Every registered checker.  The first four are the paper's originals
#: and remain the default set (:func:`default_checkers`); the rest are
#: the interprocedural property packs (taint, API ordering, lock
#: discipline) that ship with cross-file scope resolution.
ALL_CHECKERS = {
    "io": io_checker,
    "lock": lock_checker,
    "exception": exception_checker,
    "socket": socket_checker,
    "taint": taint_checker,
    "order": order_checker,
    "iterator": iterator_checker,
    "lockdep": lockdep_checker,
}

#: The paper's original four checker names (the default set).
PAPER_CHECKERS = ("io", "lock", "exception", "socket")
#: The property-pack checker names added with multi-file support.
PACK_CHECKERS = ("taint", "order", "iterator", "lockdep")


@dataclass
class Checker:
    """A named property checker: just a human name plus its FSM."""

    name: str
    fsm: FSM

    @classmethod
    def by_name(cls, name: str) -> "Checker":
        """Look up one of the built-in checkers by its short name."""
        try:
            factory = ALL_CHECKERS[name]
        except KeyError:
            raise KeyError(
                f"unknown checker {name!r}; available: {sorted(ALL_CHECKERS)}"
            ) from None
        return cls(name, factory())


def default_checkers() -> list[Checker]:
    """The paper's four checkers: I/O, lock, exception, socket."""
    return [Checker.by_name(name) for name in PAPER_CHECKERS]


def pack_checkers() -> list[Checker]:
    """The property-pack checkers: taint, order, iterator, lockdep."""
    return [Checker.by_name(name) for name in PACK_CHECKERS]


def run_checker(source: str, checkers=None, options=None) -> Report:
    """Check one program with the given (or all four) checkers."""
    from repro.analysis.pipeline import Grapple

    if checkers is None:
        checkers = default_checkers()
    fsms = [c.fsm if isinstance(c, Checker) else c for c in checkers]
    return Grapple(source, fsms, options).run().report
