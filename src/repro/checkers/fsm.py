"""Finite-state-machine property specifications (paper §2, Figure 3a).

An :class:`FSM` maps a set of object types to states and event transitions.
Events are method names (``close``, ``write``, ``lock``, ...).  Each FSM
declares:

* ``initial`` -- the state right after allocation (the paper's post-``new``
  state);
* ``error_states`` -- states that indicate a bug as soon as they are
  entered (e.g. ``write`` after ``close``);
* ``accepting`` -- states an object must be in when the program exits;
  ending anywhere else is an at-exit violation (e.g. a leak).

Unknown events leave the state unchanged (objects receive many calls the
property does not care about).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class FsmError(ValueError):
    """Raised for ill-formed FSM specifications."""


@dataclass(frozen=True)
class FSM:
    name: str
    types: frozenset[str]
    initial: str
    transitions: dict  # (state, event) -> state
    accepting: frozenset[str]
    error_states: frozenset[str] = frozenset()

    def __post_init__(self):
        known = self._reachable_states()
        for state in self.accepting | self.error_states:
            if state not in known:
                raise FsmError(
                    f"state {state!r} in {self.name} is neither the initial"
                    " state nor mentioned by any transition"
                )

    def _reachable_states(self) -> frozenset[str]:
        out = {self.initial}
        for (state, _event), target in self.transitions.items():
            out.add(state)
            out.add(target)
        return frozenset(out)

    def states(self) -> frozenset[str]:
        """Every state mentioned by the specification."""
        return self._reachable_states() | self.accepting | self.error_states

    def events(self) -> frozenset[str]:
        """Every event that can change some state."""
        return frozenset(event for (_state, event) in self.transitions)

    def step(self, state: str, event: str) -> str:
        """Transition on one event; unknown events are ignored."""
        return self.transitions.get((state, event), state)

    def run(self, events) -> str:
        """Run a whole event sequence from the initial state."""
        state = self.initial
        for event in events:
            state = self.step(state, event)
        return state

    def is_error(self, state: str) -> bool:
        """Whether entering this state is itself a bug."""
        return state in self.error_states

    def violates_at_exit(self, state: str) -> bool:
        """Whether ending the program in this state is a bug (a leak).

        Error states are excluded: they are reported as error transitions,
        not additionally as at-exit violations."""
        return state not in self.accepting and state not in self.error_states


def make_fsm(
    name: str,
    types,
    initial: str,
    transitions: dict,
    accepting,
    error_states=(),
) -> FSM:
    """Convenience constructor taking plain containers."""
    return FSM(
        name=name,
        types=frozenset(types),
        initial=initial,
        transitions=dict(transitions),
        accepting=frozenset(accepting),
        error_states=frozenset(error_states),
    )
