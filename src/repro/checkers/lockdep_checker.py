"""Lock-discipline property pack: acquire/release pairing plus
no-wait-while-holding.

Stricter than the paper's basic :mod:`repro.checkers.lock_checker`: a
``Monitor``/``Semaphore`` object must pair every ``acquire`` with a
``release`` (release-unheld and double-acquire are error transitions,
held-at-exit is an at-exit violation), and calling ``wait`` -- a
blocking operation -- while the lock is held is its own error state
(the no-wait-while-holding discipline; waiting with a lock held is a
classic distributed-system stall, cf. the paper's ZooKeeper deadlock
study).  ``wait`` while *not* holding is fine.

The discipline is interprocedural by nature: acquire in one module's
guard helper, blocking call in another -- the scope-graph resolved call
paths are what make the pairing checkable across files.
"""

from repro.checkers.fsm import FSM, make_fsm

LOCKDEP_TYPES = ("Monitor", "Semaphore")


def lockdep_checker() -> FSM:
    """The lock-discipline FSM (pairing + no-wait-while-holding)."""
    return make_fsm(
        name="lockdep",
        types=LOCKDEP_TYPES,
        initial="Released",
        transitions={
            ("Released", "acquire"): "Held",
            ("Held", "release"): "Released",
            ("Released", "release"): "ReleaseUnheld",  # release before acquire
            ("Held", "acquire"): "DoubleAcquire",  # non-reentrant
            ("Held", "wait"): "WaitWhileHolding",  # blocking with lock held
            ("Released", "wait"): "Released",
        },
        accepting={"Released"},
        error_states={"ReleaseUnheld", "DoubleAcquire", "WaitWhileHolding"},
    )
