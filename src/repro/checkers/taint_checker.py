"""Taint property pack: source -> (sanitizer?) -> sink as an FSM.

A tracked object allocated from a taint-source type (``UserInput``,
``NetPacket``, ``EnvVar``) starts ``Tainted``.  Passing it to a sink
(``exec``, ``query``, ``send_raw`` -- modelled as methods on the tracked
object) while still ``Tainted`` is an error transition; a ``sanitize``
or ``validate`` event moves it to ``Clean``, after which sinks are fine.
Re-reading fresh data (``refill``) re-taints a cleaned object.

Unlike the resource checkers there is no at-exit obligation: dropping a
tainted value on the floor is harmless, so every non-error state
accepts.  The interesting bugs are interprocedural -- the source is
allocated in one module, sanitized (or not) in another, and sunk in a
third -- which is exactly what the cross-file scope resolution plus
context-sensitive cloning make checkable.
"""

from repro.checkers.fsm import FSM, make_fsm

TAINT_TYPES = ("UserInput", "NetPacket", "EnvVar")

#: Events that consume the value in a dangerous position.
SINK_EVENTS = ("exec", "query", "send_raw")
#: Events that neutralise the taint.
SANITIZE_EVENTS = ("sanitize", "validate")


def taint_checker() -> FSM:
    """The taint-flow FSM (tainted data must be sanitized before sinks)."""
    transitions = {}
    for sanitize in SANITIZE_EVENTS:
        transitions[("Tainted", sanitize)] = "Clean"
        transitions[("Clean", sanitize)] = "Clean"
    for sink in SINK_EVENTS:
        transitions[("Tainted", sink)] = "Error"
        transitions[("Clean", sink)] = "Clean"
    transitions[("Clean", "refill")] = "Tainted"
    transitions[("Tainted", "refill")] = "Tainted"
    return make_fsm(
        name="taint",
        types=TAINT_TYPES,
        initial="Tainted",
        transitions=transitions,
        accepting={"Tainted", "Clean"},
        error_states={"Error"},
    )
