"""Warning and report types (phase 3 output)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class Warning:
    """One static warning about an allocation site.

    ``kind`` is ``"error-transition"`` (the object reached an FSM error
    state, e.g. write-after-close) or ``"at-exit"`` (the object can reach
    program exit in a non-accepting state, e.g. a leak).  ``witness`` is a
    concrete input assignment satisfying the path constraint of one
    witnessing path (``("main::x = 2", ...)``); it is informational and
    excluded from warning identity.
    """

    checker: str
    kind: str
    site: int
    type_name: str
    state: str
    func: str
    line: int
    witness: tuple = field(default=(), compare=False)

    def describe(self) -> str:
        """Human-readable one-line description, including the witness."""
        if self.kind == "at-exit":
            text = (
                f"[{self.checker}] {self.type_name} allocated in {self.func}"
                f" (line {self.line}, site {self.site}) can reach program"
                f" exit in state {self.state!r}"
            )
        else:
            text = (
                f"[{self.checker}] {self.type_name} allocated in {self.func}"
                f" (line {self.line}, site {self.site}) can reach error state"
                f" {self.state!r}"
            )
        if self.witness:
            text += f" [e.g. when {', '.join(self.witness)}]"
        return text


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One lint finding (:mod:`repro.sa.lint`): a local, syntactic or
    CFG-level observation, cheaper and chattier than a checker
    :class:`Warning` -- no path feasibility is consulted.

    ``kind`` is a stable machine-readable category
    (``use-before-init``, ``unreachable-code``, ``constant-branch``,
    ``escape-without-close``, ``dead-store``, ``shadowed-variable``,
    ``unresolved-name``, ``ambiguous-import``, ``tainted-sink``,
    ``lock-order``); ``subject`` names the variable, symbol or
    condition concerned.  ``file`` is the source file for multi-file
    runs ("" for single-source linting, which keeps the legacy output
    format byte-identical).
    """

    kind: str
    func: str
    line: int
    subject: str
    message: str
    file: str = ""

    def describe(self) -> str:
        where = f"{self.file}:{self.line}" if self.file else f"line {self.line}"
        return f"{where}: [{self.kind}] {self.func}: {self.message}"

    def sort_key(self) -> tuple:
        """Deterministic output order: (file, line, kind, symbol, ...).

        Keyed on position before provenance so multi-file ``--lint``
        output is byte-stable regardless of file discovery order.
        """
        return (self.file, self.line, self.kind, self.subject, self.func,
                self.message)


@dataclass
class LintReport:
    """All lint diagnostics for one program, in deterministic order."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        if diagnostic not in self.diagnostics:
            self.diagnostics.append(diagnostic)

    def sorted(self) -> list[Diagnostic]:
        return sorted(self.diagnostics, key=Diagnostic.sort_key)

    def kinds(self) -> set[str]:
        return {d.kind for d in self.diagnostics}

    def by_kind(self, kind: str) -> list[Diagnostic]:
        return [d for d in self.sorted() if d.kind == kind]

    def __len__(self) -> int:
        return len(self.diagnostics)

    def summary(self) -> str:
        lines = [f"{len(self.diagnostics)} lint diagnostic(s)"]
        lines.extend(d.describe() for d in self.sorted())
        return "\n".join(lines)


@dataclass
class Report:
    """All warnings from one Grapple run, deduplicated per site/state."""

    warnings: list[Warning] = field(default_factory=list)

    def add(self, warning: Warning) -> None:
        """Add a warning unless an identical one is already present."""
        if warning not in self.warnings:
            self.warnings.append(warning)

    def by_checker(self, checker: str) -> list[Warning]:
        """All warnings emitted by one named checker."""
        return [w for w in self.warnings if w.checker == checker]

    def sites(self, checker: str | None = None) -> set[int]:
        """Allocation sites with warnings (optionally for one checker)."""
        return {
            w.site
            for w in self.warnings
            if checker is None or w.checker == checker
        }

    def __len__(self) -> int:
        return len(self.warnings)

    def summary(self) -> str:
        """Count line followed by one description per warning."""
        lines = [f"{len(self.warnings)} warning(s)"]
        lines.extend(w.describe() for w in self.warnings)
        return "\n".join(lines)
