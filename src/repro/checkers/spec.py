"""Text format for FSM property specifications.

The paper's workflow: "it took one developer one day to read the related
API information to acquire these FSMs" -- users write FSMs, Grapple checks
them.  This module gives FSMs a plain-text surface so checkers can be
specified without writing Python::

    fsm io
    types FileWriter FileReader
    initial Open
    accepting Closed
    error Error

    Open   -write->  Open
    Open   -close->  Closed
    Closed -write->  Error
    Closed -close->  Closed

Blank lines and ``#`` comments are ignored.  A file may contain several
``fsm`` blocks.
"""

from __future__ import annotations

from repro.checkers.fsm import FSM, FsmError, make_fsm


class SpecError(ValueError):
    """Raised on a malformed FSM specification."""


def parse_fsm_specs(text: str) -> list[FSM]:
    """Parse one or more FSM blocks from spec text.

    Every :class:`SpecError` names the offending line.  Beyond shape
    errors, the parser rejects: two ``fsm`` blocks with the same name,
    the same ``(state, event)`` transition declared twice (the second
    declaration would silently win otherwise), and transitions out of a
    state the block never introduces elsewhere (not the initial state,
    not accepting, not an error state, and never a transition target --
    almost always a typo, since no object can ever be in that state).
    """
    fsms: list[FSM] = []
    seen_names: dict[str, int] = {}
    block: dict | None = None

    def finish() -> None:
        nonlocal block
        if block is None:
            return
        at = block["line"]
        for required in ("name", "types", "initial", "accepting"):
            if not block.get(required):
                raise SpecError(
                    f"line {at}: fsm {block.get('name', '?')!r}:"
                    f" missing {required!r}"
                )
        declared = {block["initial"]}
        declared.update(block["accepting"])
        declared.update(block["errors"])
        declared.update(block["transitions"].values())
        for (src, event), tline in block["tlines"].items():
            if src not in declared:
                raise SpecError(
                    f"line {tline}: fsm {block['name']!r}: transition from"
                    f" undeclared state {src!r} (not initial, accepting,"
                    f" error, or any transition's target)"
                )
        try:
            fsms.append(
                make_fsm(
                    name=block["name"],
                    types=block["types"],
                    initial=block["initial"],
                    transitions=block["transitions"],
                    accepting=block["accepting"],
                    error_states=block["errors"],
                )
            )
        except FsmError as error:
            raise SpecError(f"line {at}: {error}") from error
        block = None

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        words = line.split()
        keyword = words[0]
        if keyword == "fsm":
            finish()
            if len(words) != 2:
                raise SpecError(f"line {lineno}: 'fsm' takes exactly one name")
            if words[1] in seen_names:
                raise SpecError(
                    f"line {lineno}: duplicate fsm name {words[1]!r}"
                    f" (first declared on line {seen_names[words[1]]})"
                )
            seen_names[words[1]] = lineno
            block = {
                "name": words[1],
                "line": lineno,
                "types": [],
                "initial": None,
                "accepting": [],
                "errors": [],
                "transitions": {},
                "tlines": {},
            }
            continue
        if block is None:
            raise SpecError(f"line {lineno}: content before any 'fsm' block")
        if keyword == "types":
            block["types"].extend(words[1:])
        elif keyword == "initial":
            if len(words) != 2:
                raise SpecError(f"line {lineno}: 'initial' takes one state")
            block["initial"] = words[1]
        elif keyword == "accepting":
            block["accepting"].extend(words[1:])
        elif keyword == "error":
            block["errors"].extend(words[1:])
        else:
            transition = _parse_transition(line, lineno)
            (key,) = transition
            if key in block["transitions"]:
                src, event = key
                raise SpecError(
                    f"line {lineno}: duplicate transition"
                    f" {src!r} -{event}-> (first declared on line"
                    f" {block['tlines'][key]})"
                )
            block["transitions"].update(transition)
            block["tlines"][key] = lineno
    finish()
    if not fsms:
        raise SpecError("no fsm blocks found")
    return fsms


def _parse_transition(line: str, lineno: int) -> dict:
    """``State -event-> State`` lines."""
    parts = line.split()
    if len(parts) != 3 or not (
        parts[1].startswith("-") and parts[1].endswith("->")
    ):
        raise SpecError(
            f"line {lineno}: expected 'State -event-> State', got {line!r}"
        )
    event = parts[1][1:-2]
    if not event:
        raise SpecError(f"line {lineno}: empty event name")
    return {(parts[0], event): parts[2]}


def load_fsm_specs(path: str) -> list[FSM]:
    """Parse FSM specs from a file."""
    with open(path) as f:
        return parse_fsm_specs(f.read())
