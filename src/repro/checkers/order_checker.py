"""API-ordering property pack: init-before-use and iterator invalidation.

Two FSMs over typestate-style API protocols:

* :func:`order_checker` -- a ``Handle``/``Codec``/``Parser`` object must
  see ``init`` before any ``use``/``process`` call, must not be
  re-initialised, and must be ``dispose``d before program exit.
* :func:`iterator_checker` -- an ``Iterator``/``Cursor`` yields elements
  via ``next`` only while valid; mutating the underlying collection
  (``invalidate``, i.e. the collection's ``add``/``remove`` modelled as
  a method on the iterator object) makes further ``next`` calls an
  error until ``refresh`` re-establishes validity.

Both protocols are classic cross-file bugs: construction happens in a
factory module, initialisation in a setup helper, and use at a distant
call site, so checking them exercises the scope-graph resolved
interprocedural paths.
"""

from repro.checkers.fsm import FSM, make_fsm

ORDER_TYPES = ("Handle", "Codec", "Parser")
ITERATOR_TYPES = ("Iterator", "Cursor")

#: Events that require a completed ``init`` first.
USE_EVENTS = ("use", "process")


def order_checker() -> FSM:
    """The init-before-use FSM (use of an uninitialised handle)."""
    transitions = {
        ("Created", "init"): "Ready",
        ("Ready", "init"): "Error",  # double init
        ("Ready", "dispose"): "Disposed",
        ("Created", "dispose"): "Disposed",  # never initialised: fine
        ("Disposed", "dispose"): "Error",  # double dispose
    }
    for use in USE_EVENTS:
        transitions[("Created", use)] = "Error"  # use before init
        transitions[("Ready", use)] = "Ready"
        transitions[("Disposed", use)] = "Error"  # use after dispose
    return make_fsm(
        name="order",
        types=ORDER_TYPES,
        initial="Created",
        transitions=transitions,
        accepting={"Disposed", "Created"},
        error_states={"Error"},
    )


def iterator_checker() -> FSM:
    """The iterator-invalidation FSM (next after concurrent mutation)."""
    return make_fsm(
        name="iterator",
        types=ITERATOR_TYPES,
        initial="Valid",
        transitions={
            ("Valid", "next"): "Valid",
            ("Valid", "invalidate"): "Invalid",
            ("Invalid", "invalidate"): "Invalid",
            ("Invalid", "next"): "Error",  # iteration after invalidation
            ("Invalid", "refresh"): "Valid",
            ("Valid", "refresh"): "Valid",
        },
        accepting={"Valid", "Invalid"},
        error_states={"Error"},
    )
