"""FSM specifications and the four finite-state property checkers (§5)."""

from repro.checkers.fsm import FSM, FsmError
from repro.checkers.report import Warning, Report
from repro.checkers.io_checker import io_checker
from repro.checkers.lock_checker import lock_checker
from repro.checkers.exception_checker import exception_checker
from repro.checkers.socket_checker import socket_checker
from repro.checkers.checker import Checker, default_checkers, run_checker

__all__ = [
    "FSM",
    "FsmError",
    "Warning",
    "Report",
    "Checker",
    "default_checkers",
    "run_checker",
    "io_checker",
    "lock_checker",
    "exception_checker",
    "socket_checker",
]
