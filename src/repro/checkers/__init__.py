"""FSM specifications, the paper's four finite-state property checkers
(§5), and the interprocedural property packs (taint, API ordering, lock
discipline) added with cross-file scope resolution."""

from repro.checkers.fsm import FSM, FsmError
from repro.checkers.report import Diagnostic, LintReport, Warning, Report
from repro.checkers.io_checker import io_checker
from repro.checkers.lock_checker import lock_checker
from repro.checkers.exception_checker import exception_checker
from repro.checkers.socket_checker import socket_checker
from repro.checkers.taint_checker import taint_checker
from repro.checkers.order_checker import iterator_checker, order_checker
from repro.checkers.lockdep_checker import lockdep_checker
from repro.checkers.checker import (
    Checker,
    default_checkers,
    pack_checkers,
    run_checker,
)

__all__ = [
    "FSM",
    "FsmError",
    "Warning",
    "Report",
    "Diagnostic",
    "LintReport",
    "Checker",
    "default_checkers",
    "pack_checkers",
    "run_checker",
    "io_checker",
    "lock_checker",
    "exception_checker",
    "socket_checker",
    "taint_checker",
    "order_checker",
    "iterator_checker",
    "lockdep_checker",
]
