"""Java-I/O resource checker (paper §5: 21 warnings, mostly missing close).

The FSM mirrors Figure 3a: a stream opens on allocation, accepts reads and
writes while open, and must be closed before program exit.  Operating on a
closed stream is an error transition; reaching exit while still open is a
resource leak.
"""

from repro.checkers.fsm import FSM, make_fsm

IO_TYPES = (
    "FileWriter",
    "FileReader",
    "FileInputStream",
    "FileOutputStream",
    "BufferedWriter",
    "BufferedReader",
    "DataOutputStream",
)


def io_checker() -> FSM:
    """The Java-I/O resource FSM (paper Figure 3a)."""
    return make_fsm(
        name="io",
        types=IO_TYPES,
        initial="Open",
        transitions={
            ("Open", "write"): "Open",
            ("Open", "read"): "Open",
            ("Open", "flush"): "Open",
            ("Open", "close"): "Closed",
            ("Closed", "close"): "Closed",  # double close is harmless
            ("Closed", "write"): "Error",
            ("Closed", "read"): "Error",
            ("Closed", "flush"): "Error",
        },
        accepting={"Closed"},
        error_states={"Error"},
    )
