"""Lock-usage checker (paper §5: found one lock/unlock mis-ordering).

A lock starts unlocked; ``unlock`` before ``lock`` (the mis-ordering bug
Grapple found in HDFS) and double ``lock`` are error transitions, and
reaching program exit while still held is a leaked lock.
"""

from repro.checkers.fsm import FSM, make_fsm

LOCK_TYPES = ("Lock", "ReentrantLock", "Mutex", "RWLock")


def lock_checker() -> FSM:
    """The lock-usage FSM (lock/unlock ordering and held-at-exit)."""
    return make_fsm(
        name="lock",
        types=LOCK_TYPES,
        initial="Unlocked",
        transitions={
            ("Unlocked", "lock"): "Locked",
            ("Locked", "unlock"): "Unlocked",
            ("Unlocked", "unlock"): "Error",  # unlock before lock
            ("Locked", "lock"): "Error",  # double lock (non-reentrant)
        },
        accepting={"Unlocked"},
        error_states={"Error"},
    )
