"""Exception-handling checker (paper §5, after Yuan et al. [76]).

Exception lowering turns ``throw``/``catch`` into FSM events on the
exception object (see :mod:`repro.lang.transform`); an exception that can
reach program exit in state ``Thrown`` never had a handler on that path --
the paper's dominant bug category (300+ cases).
"""

from repro.checkers.fsm import FSM, make_fsm

EXCEPTION_TYPES = (
    "Exception",
    "IOException",
    "InterruptedException",
    "RuntimeException",
    "TimeoutException",
    "KeeperException",
)


def exception_checker() -> FSM:
    """The exception-handling FSM (created/thrown/handled)."""
    return make_fsm(
        name="exception",
        types=EXCEPTION_TYPES,
        initial="Created",
        transitions={
            ("Created", "throw"): "Thrown",
            ("Thrown", "catch"): "Handled",
            ("Handled", "throw"): "Thrown",  # rethrow from a handler
        },
        accepting={"Created", "Handled"},
    )
