"""Socket-usage checker (paper §5 and Figures 1/2: ServerSocketChannel).

Mirrors the paper's Figure 2 FSM: a channel opens on allocation, binds,
optionally configures and accepts, and must be closed; using a closed
channel is an error, and reaching program exit unclosed is the socket leak
the paper reports in ZooKeeper's ``reconfigure``.
"""

from repro.checkers.fsm import FSM, make_fsm

SOCKET_TYPES = ("Socket", "ServerSocket", "ServerSocketChannel", "SocketChannel")


def socket_checker() -> FSM:
    """The socket/channel FSM (paper Figure 2)."""
    return make_fsm(
        name="socket",
        types=SOCKET_TYPES,
        initial="Open",
        transitions={
            ("Open", "bind"): "Bound",
            ("Open", "connect"): "Connected",
            ("Bound", "configureBlocking"): "Bound",
            ("Bound", "accept"): "Bound",
            ("Connected", "send"): "Connected",
            ("Connected", "recv"): "Connected",
            ("Open", "close"): "Closed",
            ("Bound", "close"): "Closed",
            ("Connected", "close"): "Closed",
            ("Closed", "close"): "Closed",
            ("Closed", "accept"): "Error",
            ("Closed", "send"): "Error",
            ("Closed", "recv"): "Error",
            ("Closed", "bind"): "Error",
            ("Closed", "connect"): "Error",
        },
        accepting={"Closed"},
        error_states={"Error"},
    )
