"""The ``grapple/run-report`` schema, validators, and progress heartbeat.

A run report is the machine-readable counterpart of ``--stats``: one JSON
object holding the wall-clock timing split, the paper's Figure-9
component breakdown, every :class:`~repro.engine.stats.EngineStats`
field (exported through the stats' metrics-registry view, so new
counters appear automatically), and the engine's fixed-bucket histograms
when metrics collection was on.  ``repro check --metrics-json FILE``
writes one; the benchmark harness embeds one per measured run; CI
validates both artifacts with ``python -m repro.obs validate``.
"""

from __future__ import annotations

import sys
import time

REPORT_SCHEMA = "grapple/run-report"
#: Version 2 added the optional ``telemetry`` section (the resource
#: sampler's gauge timeseries, ``repro.obs.profile``) and later the
#: optional ``scopes`` section (scope-graph resolution counters for
#: multi-file subjects, ``repro.sa.scopes``); version-1 readers that
#: ignore unknown sections still parse a v2 document.
REPORT_VERSION = 2

#: Span names a full engine trace is expected to draw from (validation
#: reports which of these a trace actually covers; serial runs have no
#: ``wave`` spans, split-free runs no ``repartition`` spans).
KNOWN_SPANS = (
    "closure", "iteration", "wave", "pair-compute",
    "prefetch", "spill", "repartition", "smt-solve",
    "sa-fold", "sa-dse", "sa-relevance", "sa-compress", "sa-scopes",
    "checkpoint", "retry", "absorb", "spill-merge",
    "incr-diff", "incr-join", "incr-retract",
)

_TIMING_KEYS = ("preprocess_s", "computation_s", "total_s")
_BREAKDOWN_KEYS = ("io", "encode", "smt", "compute")


def build_run_report(
    run, subject: str | None = None, telemetry: dict | None = None
) -> dict:
    """Structured report for one :class:`~repro.analysis.pipeline.GrappleRun`.

    ``telemetry`` is the sampler's :meth:`timeseries
    <repro.obs.profile.ResourceSampler.timeseries>` document; profiling
    off means no sampler, no argument, and no ``telemetry`` key -- the
    report is byte-compatible with what version 1 produced.
    """
    stats = run.stats
    snapshot = stats.registry_view().snapshot()
    report = {
        "schema": REPORT_SCHEMA,
        "version": REPORT_VERSION,
        "generated_unix": round(time.time(), 3),
        "timing": {
            "preprocess_s": round(run.preprocess_time, 6),
            "computation_s": round(run.computation_time, 6),
            "total_s": round(run.total_time, 6),
        },
        "breakdown": {k: round(v, 6) for k, v in stats.breakdown().items()},
        "counters": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in snapshot["counters"].items()
        },
        "gauges": {
            k: round(v, 6) if isinstance(v, float) else v
            for k, v in snapshot["gauges"].items()
        },
        "histograms": snapshot["histograms"],
        "warnings": len(run.report.warnings),
    }
    # ``waves`` counts parallel dispatch waves; a serial run has none,
    # and reporting a hard zero next to a populated ``iterations`` reads
    # as a stall.  Omit the counter when no wave was ever dispatched.
    if not report["counters"].get("waves"):
        report["counters"].pop("waves", None)
    reduction = getattr(run, "reduction", None)
    if reduction is not None:
        report["reduction"] = reduction.as_dict()
    resolution = getattr(getattr(run, "compiled", None), "resolution", None)
    if resolution is not None:
        report["scopes"] = resolution.stats.as_dict()
    if subject is not None:
        report["subject"] = subject
    if telemetry is not None:
        report["telemetry"] = telemetry
    return report


# -- validation ----------------------------------------------------------------


def validate_run_report(report) -> list[str]:
    """Schema errors in a run report ([] = valid)."""
    errors: list[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != REPORT_SCHEMA:
        errors.append(
            f"schema is {report.get('schema')!r}, expected {REPORT_SCHEMA!r}"
        )
    version = report.get("version")
    if not isinstance(version, int):
        errors.append("version is not an integer")
    elif not 1 <= version <= REPORT_VERSION:
        errors.append(
            f"version {version} is not supported"
            f" (this reader knows 1..{REPORT_VERSION})"
        )
    timing = report.get("timing")
    if not isinstance(timing, dict):
        errors.append("timing section missing")
    else:
        for key in _TIMING_KEYS:
            if not isinstance(timing.get(key), (int, float)):
                errors.append(f"timing.{key} is not a number")
    breakdown = report.get("breakdown")
    if not isinstance(breakdown, dict):
        errors.append("breakdown section missing")
    else:
        for key in _BREAKDOWN_KEYS:
            if not isinstance(breakdown.get(key), (int, float)):
                errors.append(f"breakdown.{key} is not a number")
    for section in ("counters", "gauges"):
        values = report.get(section)
        if not isinstance(values, dict):
            errors.append(f"{section} section missing")
            continue
        for name, value in values.items():
            if not isinstance(value, (int, float)):
                errors.append(f"{section}.{name} is not a number")
    histograms = report.get("histograms")
    if not isinstance(histograms, dict):
        errors.append("histograms section missing")
    else:
        for name, hist in histograms.items():
            errors.extend(_validate_histogram(name, hist))
    if not isinstance(report.get("warnings"), int):
        errors.append("warnings is not an integer")
    reduction = report.get("reduction")
    if reduction is not None:  # optional: present when --reduce was on
        if not isinstance(reduction, dict):
            errors.append("reduction section is not an object")
        else:
            for name, value in reduction.items():
                if not isinstance(value, int):
                    errors.append(f"reduction.{name} is not an integer")
    scopes = report.get("scopes")
    if scopes is not None:  # optional: present for multi-file subjects
        if not isinstance(scopes, dict):
            errors.append("scopes section is not an object")
        else:
            for name, value in scopes.items():
                if not isinstance(value, int):
                    errors.append(f"scopes.{name} is not an integer")
    telemetry = report.get("telemetry")
    if telemetry is not None:  # optional: present when --profile was on
        errors.extend(_validate_telemetry(telemetry))
    return errors


def _validate_telemetry(telemetry) -> list[str]:
    """Schema errors in a run report's ``telemetry`` section."""
    if not isinstance(telemetry, dict):
        return ["telemetry section is not an object"]
    errors: list[str] = []
    if not isinstance(telemetry.get("interval_s"), (int, float)):
        errors.append("telemetry.interval_s is not a number")
    if not isinstance(telemetry.get("samples"), int):
        errors.append("telemetry.samples is not an integer")
    sections = {"coordinator": telemetry.get("coordinator")}
    workers = telemetry.get("workers", {})
    if not isinstance(workers, dict):
        errors.append("telemetry.workers is not an object")
        workers = {}
    for pid, series in workers.items():
        sections[f"workers.{pid}"] = series
    for where, series in sections.items():
        if not isinstance(series, dict):
            errors.append(f"telemetry.{where} is not an object")
            continue
        t_s = series.get("t_s")
        gauges = series.get("series")
        if not isinstance(t_s, list) or not isinstance(gauges, dict):
            errors.append(f"telemetry.{where}: t_s/series missing")
            continue
        for name, column in gauges.items():
            if not isinstance(column, list) or len(column) != len(t_s):
                errors.append(
                    f"telemetry.{where}.series.{name}: column does not"
                    f" align with t_s ({len(t_s)} timestamps)"
                )
    return errors


def _validate_histogram(name: str, hist) -> list[str]:
    errors: list[str] = []
    if not isinstance(hist, dict):
        return [f"histograms.{name} is not an object"]
    buckets = hist.get("buckets")
    counts = hist.get("counts")
    if not isinstance(buckets, list) or not isinstance(counts, list):
        return [f"histograms.{name}: buckets/counts missing"]
    if list(buckets) != sorted(buckets):
        errors.append(f"histograms.{name}: buckets are not sorted")
    if len(counts) != len(buckets) + 1:
        errors.append(
            f"histograms.{name}: {len(counts)} counts for"
            f" {len(buckets)} buckets (want buckets + 1)"
        )
    if not isinstance(hist.get("count"), int):
        errors.append(f"histograms.{name}: count is not an integer")
    elif sum(counts) != hist["count"]:
        errors.append(
            f"histograms.{name}: bucket counts sum to {sum(counts)},"
            f" count says {hist['count']}"
        )
    if not isinstance(hist.get("sum"), (int, float)):
        errors.append(f"histograms.{name}: sum is not a number")
    return errors


def validate_trace(trace) -> list[str]:
    """Schema errors in a Chrome-trace object ([] = valid).

    Accepts the ``{"traceEvents": [...]}`` object form or a bare event
    list (the parsed JSONL fallback).
    """
    if isinstance(trace, dict):
        events = trace.get("traceEvents")
        if not isinstance(events, list):
            return ["traceEvents is missing or not a list"]
    elif isinstance(trace, list):
        events = trace
    else:
        return ["trace is neither an object nor an event list"]
    errors: list[str] = []
    for at, event in enumerate(events):
        if not isinstance(event, dict):
            errors.append(f"event {at} is not an object")
            continue
        for key in ("ph", "name", "pid", "tid"):
            if key not in event:
                errors.append(f"event {at} ({event.get('name')!r}): no {key!r}")
        if event.get("ph") == "X":
            for key in ("ts", "dur"):
                if not isinstance(event.get(key), (int, float)):
                    errors.append(
                        f"event {at} ({event.get('name')!r}):"
                        f" {key!r} is not a number"
                    )
        if len(errors) > 20:
            errors.append("... (truncated)")
            break
    return errors


def trace_coverage(trace) -> dict:
    """Summary of a trace: span names, pids, and event count."""
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else trace
    spans = [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]
    names = sorted({e["name"] for e in spans})
    return {
        "events": len(events),
        "spans": len(spans),
        "span_names": names,
        "known_spans_covered": [n for n in KNOWN_SPANS if n in names],
        "pids": sorted({e["pid"] for e in spans}),
    }


# -- progress heartbeat --------------------------------------------------------


def _format_bytes(count: int) -> str:
    """Compact byte count for the heartbeat line (``3.2MB``, ``418KB``)."""
    if count >= 1 << 20:
        return f"{count / (1 << 20):.1f}MB"
    if count >= 1 << 10:
        return f"{count / (1 << 10):.0f}KB"
    return f"{count}B"


class Heartbeat:
    """Periodic one-line progress report on stderr.

    The engine calls :meth:`maybe_beat` once per serial pair / parallel
    wave; a line is emitted at most every ``interval`` seconds, so the
    cost is one clock read per call.
    """

    def __init__(self, interval: float, stream=None, clock=time.monotonic):
        self.interval = interval
        self.stream = stream
        self.clock = clock
        self.beats = 0
        self._started = clock()
        self._next = self._started + interval

    def maybe_beat(self, stats, store, scheduler) -> bool:
        now = self.clock()
        if now < self._next:
            return False
        self._next = now + self.interval
        self.beats += 1
        eligible = scheduler.eligible_count()
        done = stats.pairs_processed
        edges = store.total_edges()
        occupancy = store.cache_occupancy()
        line = (
            f"[grapple +{now - self._started:6.1f}s] pairs {done} done"
            f" / {eligible} eligible · edges {edges}"
            f" · budget {occupancy:.0%} resident"
            f" · waves {stats.waves} · solves {stats.constraints_solved}"
        )
        if stats.waves:
            # Parallel run: append data-plane health (steals, mapped shm
            # bytes, pool busy fraction) so a long run shows whether the
            # workers are actually fed.  Serial lines are unchanged.
            busy = stats.worker_busy_s
            idle = stats.worker_idle_s
            line += (
                f" · stolen {stats.pairs_stolen}"
                f" · shm {_format_bytes(stats.shm_bytes_mapped)}"
            )
            if busy + idle > 0:
                line += f" · busy {busy / (busy + idle):.0%}"
        print(
            line,
            file=self.stream if self.stream is not None else sys.stderr,
            flush=True,
        )
        return True
