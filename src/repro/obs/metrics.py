"""Metrics primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately small: values live in plain attributes so
hot paths can cache a metric object once and call ``inc``/``observe``
without dictionary traffic, everything pickles (histograms cross the
process boundary inside worker :class:`~repro.engine.stats.EngineStats`
deltas), and merging is exact -- histograms require identical bucket
boundaries, so a merged distribution is byte-for-byte the distribution a
single-process run would have recorded for the same observations.

Bucket boundaries are fixed at registration (Prometheus-style): bucket
``i`` counts observations ``<= bounds[i]``'s upper edge, with one
overflow bucket past the last boundary.  Fixed boundaries are what make
cross-worker merges and cross-run comparisons meaningful.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default latency boundaries (seconds): 100us .. 5s, roughly log-spaced.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default size boundaries (counts): 1 .. 100k, roughly log-spaced.
SIZE_BUCKETS = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def snapshot(self):
        return self.value

    def __getstate__(self):
        return (self.name, self.value)

    def __setstate__(self, state):
        self.name, self.value = state


class Gauge:
    """Point-in-time value; merge is last-set-wins."""

    __slots__ = ("name", "value", "updated")

    def __init__(self, name: str, value: float = 0):
        self.name = name
        self.value = value
        self.updated = False

    def set(self, value: float) -> None:
        self.value = value
        self.updated = True

    def merge(self, other: "Gauge") -> None:
        if other.updated:
            self.value = other.value
            self.updated = True

    def snapshot(self):
        return self.value

    def __getstate__(self):
        return (self.name, self.value, self.updated)

    def __setstate__(self, state):
        self.name, self.value, self.updated = state


class Histogram:
    """Fixed-boundary histogram: counts, sum, and observation count."""

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: tuple):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r}: bounds must be sorted")
        self.name = name
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError(
                f"histogram {self.name!r}: cannot merge differing bucket"
                f" boundaries {other.bounds!r} into {self.bounds!r}"
            )
        counts = self.counts
        for i, c in enumerate(other.counts):
            counts[i] += c
        self.total += other.total
        self.count += other.count

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket edge at quantile ``q`` (conservative estimate)."""
        if not self.count:
            return 0.0
        target = q * self.count
        running = 0
        for i, c in enumerate(self.counts):
            running += c
            if running >= target:
                return (
                    self.bounds[i] if i < len(self.bounds) else self.bounds[-1]
                )
        return self.bounds[-1]

    def snapshot(self) -> dict:
        return {
            "buckets": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }

    def __getstate__(self):
        return (self.name, self.bounds, self.counts, self.total, self.count)

    def __setstate__(self, state):
        self.name, self.bounds, self.counts, self.total, self.count = state


class MetricsRegistry:
    """Named counters, gauges, and histograms with exact merging."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- registration / access ------------------------------------------------

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str, bounds: tuple | None = None) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            if bounds is None:
                raise KeyError(
                    f"histogram {name!r} is not registered and no bounds"
                    " were given"
                )
            metric = self.histograms[name] = Histogram(name, bounds)
        return metric

    def observe(self, name: str, value: float) -> None:
        """Record into a pre-registered histogram."""
        self.histograms[name].observe(value)

    # -- aggregation ----------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        for name, counter in other.counters.items():
            self.counter(name).merge(counter)
        for name, gauge in other.gauges.items():
            self.gauge(name).merge(gauge)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = Histogram(name, hist.bounds)
            mine.merge(hist)

    def clone(self) -> "MetricsRegistry":
        fresh = MetricsRegistry()
        fresh.merge(self)
        return fresh

    def snapshot(self) -> dict:
        """JSON-ready view: ``{"counters": .., "gauges": .., "histograms": ..}``."""
        return {
            "counters": {
                name: metric.snapshot()
                for name, metric in sorted(self.counters.items())
            },
            "gauges": {
                name: metric.snapshot()
                for name, metric in sorted(self.gauges.items())
            },
            "histograms": {
                name: metric.snapshot()
                for name, metric in sorted(self.histograms.items())
            },
        }


def engine_metrics() -> MetricsRegistry:
    """The engine's standard histogram set (fixed boundaries, so worker
    deltas always merge exactly)."""
    registry = MetricsRegistry()
    registry.histogram("solve_latency_s", LATENCY_BUCKETS_S)
    registry.histogram("pair_compute_s", LATENCY_BUCKETS_S)
    registry.histogram("prefetch_wait_s", LATENCY_BUCKETS_S)
    registry.histogram("pair_new_edges", SIZE_BUCKETS)
    return registry
