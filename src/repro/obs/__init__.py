"""repro.obs -- structured observability for the engine.

Three layers, all zero-cost when disabled:

* :mod:`repro.obs.trace` -- span recording in Chrome ``trace_event``
  format (plus a compact JSONL fallback).  The engine, the I/O pipeline
  threads, and forked parallel workers all record into (or ship spans
  back to) one :class:`TraceRecorder`; load the exported file in
  ``chrome://tracing`` or https://ui.perfetto.dev.
* :mod:`repro.obs.metrics` -- counters, gauges, and fixed-bucket
  histograms in a :class:`MetricsRegistry`.
  :class:`~repro.engine.stats.EngineStats` exposes its whole field list
  as a registry view, and the engine records latency/size histograms
  (constraint-solve latency, per-pair edge counts, prefetch waits) into
  a registry carried on the stats object.
* :mod:`repro.obs.report` -- the ``grapple/run-report`` JSON schema
  (``repro check --metrics-json``), validators for report and trace
  files (``python -m repro.obs validate``), and the stderr progress
  :class:`Heartbeat`.

Two analysis layers sit on top (PR 8):

* :mod:`repro.obs.profile` -- the :class:`ResourceSampler` background
  gauge thread (RSS, /dev/shm bytes, cache occupancy, eligible pairs,
  GC pauses) whose timeseries ride in the run report's ``telemetry``
  section under ``repro check --profile``;
* :mod:`repro.obs.analyze` -- the critical-path analyzer
  (``python -m repro.obs analyze``): per-stage wall attribution,
  serialized fraction, steal-idle histograms, and an Amdahl-style
  speedup projection, emitted as a ``grapple/bottleneck-report``.
"""

from repro.obs.analyze import analyze, analyze_report, analyze_trace, format_bottleneck

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    engine_metrics,
)
from repro.obs.report import (
    Heartbeat,
    build_run_report,
    validate_run_report,
    validate_trace,
)
from repro.obs.profile import ResourceSampler
from repro.obs.trace import NULL_RECORDER, NullRecorder, TraceRecorder

__all__ = [
    "analyze",
    "analyze_report",
    "analyze_trace",
    "format_bottleneck",
    "ResourceSampler",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "engine_metrics",
    "Heartbeat",
    "build_run_report",
    "validate_run_report",
    "validate_trace",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
]
