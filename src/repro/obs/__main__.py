"""``python -m repro.obs`` -- validate and analyze exported artifacts.

``validate`` checks a Chrome trace (``--trace``) and/or a run report
(``--metrics``) against the schemas in :mod:`repro.obs.report`; CI runs
this over the files produced by the bench smoke job.  ``analyze`` runs
the critical-path analyzer (:mod:`repro.obs.analyze`) over a trace
(plus, optionally, its run report) and emits the bottleneck report --
human-readable to stdout, machine-readable JSON with ``--output``.
Exits 1 when any file fails validation or cannot be parsed.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.analyze import analyze, format_bottleneck
from repro.obs.report import trace_coverage, validate_run_report, validate_trace


def _load(path: str):
    if path.endswith(".jsonl"):
        with open(path) as f:
            return [json.loads(line) for line in f if line.strip()]
    with open(path) as f:
        return json.load(f)


def _load_checked(path: str):
    """(document, error) -- a truncated or unreadable file is a finding
    to report, not a traceback."""
    try:
        return _load(path), None
    except json.JSONDecodeError as exc:
        return None, f"not valid JSON (truncated?): {exc}"
    except OSError as exc:
        return None, str(exc)


def _cmd_validate(args) -> int:
    failed = False
    if args.trace:
        trace, load_error = _load_checked(args.trace)
        errors = [load_error] if load_error else validate_trace(trace)
        if errors:
            failed = True
            print(f"{args.trace}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            cov = trace_coverage(trace)
            print(
                f"{args.trace}: ok -- {cov['spans']} spans,"
                f" {len(cov['pids'])} process(es),"
                f" kinds: {', '.join(cov['known_spans_covered'])}"
            )
    if args.metrics:
        report, load_error = _load_checked(args.metrics)
        errors = [load_error] if load_error else validate_run_report(report)
        if errors:
            failed = True
            print(f"{args.metrics}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            n_hist = len(report.get("histograms", {}))
            line = (
                f"{args.metrics}: ok -- {len(report.get('counters', {}))}"
                f" counters, {n_hist} histograms"
            )
            telemetry = report.get("telemetry")
            if telemetry is not None:
                line += f", {telemetry.get('samples', 0)} telemetry samples"
            print(line)
    return 1 if failed else 0


def _cmd_analyze(args) -> int:
    trace = report = None
    if args.trace:
        trace, load_error = _load_checked(args.trace)
        if load_error:
            print(f"{args.trace}: INVALID\n  - {load_error}")
            return 1
        errors = validate_trace(trace)
        if errors:
            print(f"{args.trace}: INVALID")
            for error in errors:
                print(f"  - {error}")
            return 1
    if args.metrics:
        report, load_error = _load_checked(args.metrics)
        if load_error:
            print(f"{args.metrics}: INVALID\n  - {load_error}")
            return 1
        errors = validate_run_report(report)
        if errors:
            print(f"{args.metrics}: INVALID")
            for error in errors:
                print(f"  - {error}")
            return 1
    try:
        doc = analyze(trace, report, top_n=args.top)
    except ValueError as exc:
        print(f"analyze: {exc}", file=sys.stderr)
        return 1
    if args.output:
        with open(args.output, "w") as f:
            json.dump(doc, f, indent=2)
            f.write("\n")
        print(f"bottleneck report -> {args.output}", file=sys.stderr)
    print(format_bottleneck(doc))
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate trace/report files")
    val.add_argument("--trace", help="Chrome trace JSON (or JSONL) to validate")
    val.add_argument("--metrics", help="run-report JSON to validate")
    ana = sub.add_parser(
        "analyze",
        help="critical-path bottleneck report from a trace (and run report)",
    )
    ana.add_argument("--trace", help="Chrome trace JSON (or JSONL) to analyze")
    ana.add_argument(
        "--metrics",
        help="run-report JSON; with no --trace, a counter-derived"
        " report-only analysis",
    )
    ana.add_argument(
        "-o", "--output", metavar="FILE",
        help="also write the bottleneck report as JSON",
    )
    ana.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="critical-path segments to keep (default 10)",
    )
    args = parser.parse_args(argv)

    if not args.trace and not args.metrics:
        parser.error("give --trace and/or --metrics")
    if args.command == "validate":
        return _cmd_validate(args)
    return _cmd_analyze(args)


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `... | head`); not an error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        sys.exit(0)
