"""``python -m repro.obs validate`` -- check exported artifacts.

Validates a Chrome trace (``--trace``) and/or a run report
(``--metrics``) against the schemas in :mod:`repro.obs.report`; CI runs
this over the files produced by the bench smoke job.  Exits 1 when any
file fails validation.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.report import trace_coverage, validate_run_report, validate_trace


def _load(path: str):
    if path.endswith(".jsonl"):
        with open(path) as f:
            return [json.loads(line) for line in f if line.strip()]
    with open(path) as f:
        return json.load(f)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.obs")
    sub = parser.add_subparsers(dest="command", required=True)
    val = sub.add_parser("validate", help="validate trace/report files")
    val.add_argument("--trace", help="Chrome trace JSON (or JSONL) to validate")
    val.add_argument("--metrics", help="run-report JSON to validate")
    args = parser.parse_args(argv)

    if not args.trace and not args.metrics:
        parser.error("give --trace and/or --metrics")

    failed = False
    if args.trace:
        trace = _load(args.trace)
        errors = validate_trace(trace)
        if errors:
            failed = True
            print(f"{args.trace}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            cov = trace_coverage(trace)
            print(
                f"{args.trace}: ok -- {cov['spans']} spans,"
                f" {len(cov['pids'])} process(es),"
                f" kinds: {', '.join(cov['known_spans_covered'])}"
            )
    if args.metrics:
        report = _load(args.metrics)
        errors = validate_run_report(report)
        if errors:
            failed = True
            print(f"{args.metrics}: INVALID")
            for error in errors:
                print(f"  - {error}")
        else:
            n_hist = len(report.get("histograms", {}))
            print(
                f"{args.metrics}: ok -- {len(report.get('counters', {}))}"
                f" counters, {n_hist} histograms"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
