"""Resource telemetry: a low-overhead background gauge sampler.

One :class:`ResourceSampler` runs a daemon thread that wakes at a fixed
cadence (the heartbeat's time scale, default 4 Hz) and records a row of
gauges: process RSS, cumulative GC pause time, and whatever *providers*
the engine has bound -- partition-cache occupancy, scheduler
eligible-count, published shared-memory bytes.  Rows are kept in memory
(bounded) and exported as a columnar timeseries inside the
``grapple/run-report`` document (schema version 2, ``telemetry``
section), so a run's memory/backlog trajectory rides in the same
artifact as its counters.

Parallel runs sample per process: each forked worker builds its *own*
sampler (a thread never survives ``fork``; the worker only reads the
coordinator sampler's interval) and ships drained rows back inside the
existing :class:`~repro.engine.parallel.WaveResult` tuple protocol;
the coordinator absorbs them keyed by pid, clock-rebased exactly like
trace spans.

The sampler is strictly opt-in (``--profile``): a run without one holds
``None`` and every call site guards on that, so the disabled path costs
nothing -- the zero-cost invariant the observability layer has kept
since it landed (a regression test pins both the absent thread and the
unchanged run-report key set).

Overhead budget: one row is one clock read, one ``/proc/self/statm``
read, and a handful of attribute calls -- single-digit microseconds --
at 4 Hz, i.e. well under 0.01% of one core.  The GC watch adds two
``perf_counter`` calls per collection.
"""

from __future__ import annotations

import gc
import os
import threading
import time

#: Default sampling cadence in seconds (4 Hz).
DEFAULT_INTERVAL = 0.25

#: Rows kept per sampler; a pathological run cannot swallow the heap
#: (at 4 Hz this is ~7 hours of samples).
MAX_SAMPLES = 100_000

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> int | None:
    """Current resident set size of this process in bytes.

    Reads ``/proc/self/statm`` (Linux); falls back to the *peak* RSS
    from ``getrusage`` where /proc is absent (macOS reports ru_maxrss
    in bytes, Linux in KiB -- the fallback only runs off-Linux).
    """
    try:
        with open("/proc/self/statm", "rb") as f:
            return int(f.read().split()[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    except Exception:  # pragma: no cover - platform without getrusage
        return None


class GcWatch:
    """Cumulative GC pause accounting via ``gc.callbacks``."""

    def __init__(self):
        self.pauses = 0
        self.pause_s = 0.0
        self.max_pause_s = 0.0
        self._start = None
        self._installed = False

    def _callback(self, phase, info) -> None:
        if phase == "start":
            self._start = time.perf_counter()
        elif phase == "stop" and self._start is not None:
            pause = time.perf_counter() - self._start
            self._start = None
            self.pauses += 1
            self.pause_s += pause
            if pause > self.max_pause_s:
                self.max_pause_s = pause

    def install(self) -> None:
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True

    def uninstall(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:  # pragma: no cover - external interference
                pass
            self._installed = False

    def summary(self) -> dict:
        return {
            "pauses": self.pauses,
            "pause_s": round(self.pause_s, 6),
            "max_pause_s": round(self.max_pause_s, 6),
        }


class ResourceSampler:
    """Samples gauge rows on a daemon thread at a fixed cadence.

    ``bind(name, fn)`` attaches a zero-argument provider whose return
    value (a number, or None when momentarily unavailable) is recorded
    under ``name`` in every subsequent row; ``unbind`` detaches it.
    Providers that raise are recorded as None for that row -- a dying
    provider must never take the sampler thread down with it.
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        role: str = "coordinator",
        max_samples: int = MAX_SAMPLES,
    ):
        self.interval = max(0.01, float(interval))
        self.role = role
        self.pid = os.getpid()
        # Wall-clock anchor, same scheme as TraceRecorder: rows are
        # perf_counter-relative to perf0; wall0 lets the coordinator
        # re-base absorbed worker rows onto its own anchor.
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.max_samples = max_samples
        self.dropped = 0
        self.gc_watch = GcWatch()
        self._rows: list[tuple[float, dict]] = []
        self._providers: dict = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        # Absorbed worker series, keyed by pid.
        self._workers: dict[int, dict] = {}

    # -- providers -------------------------------------------------------------

    def bind(self, name: str, fn) -> None:
        with self._lock:
            self._providers[name] = fn

    def unbind(self, name: str) -> None:
        with self._lock:
            self._providers.pop(name, None)

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the sampling thread (idempotent)."""
        if self.running:
            return
        self.gc_watch.install()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="grapple-sampler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread, taking one final sample first."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=5.0)
            self._thread = None
        self.gc_watch.uninstall()
        self.sample_once()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.sample_once()

    # -- sampling --------------------------------------------------------------

    def sample_once(self) -> None:
        """Record one row (also callable inline, e.g. from tests)."""
        if len(self._rows) >= self.max_samples:
            self.dropped += 1
            return
        now = time.perf_counter() - self.perf0
        row = {
            "rss_bytes": read_rss_bytes(),
            "gc_pause_s": round(self.gc_watch.pause_s, 6),
        }
        with self._lock:
            providers = list(self._providers.items())
        for name, fn in providers:
            try:
                value = fn()
            except Exception:
                value = None
            row[name] = value
        with self._lock:
            self._rows.append((round(now, 4), row))

    # -- cross-process shipping ------------------------------------------------

    def ship(self) -> dict | None:
        """Drain rows into a picklable payload for the coordinator."""
        with self._lock:
            rows, self._rows = self._rows, []
        if not rows and not self.gc_watch.pauses:
            return None
        return {
            "pid": self.pid,
            "wall0": self.wall0,
            "interval_s": self.interval,
            "rows": rows,
            "gc": self.gc_watch.summary(),
        }

    def absorb(self, shipped: dict | None) -> None:
        """Fold a worker's shipped rows in, re-basing timestamps."""
        if not shipped:
            return
        entry = self._workers.setdefault(
            shipped["pid"],
            {"interval_s": shipped.get("interval_s", self.interval),
             "rows": [], "gc": {}},
        )
        offset = shipped["wall0"] - self.wall0
        budget = self.max_samples - len(entry["rows"])
        for t, row in shipped["rows"][:max(0, budget)]:
            entry["rows"].append((round(t + offset, 4), row))
        self.dropped += max(0, len(shipped["rows"]) - budget)
        if shipped.get("gc"):
            entry["gc"] = shipped["gc"]

    # -- export ----------------------------------------------------------------

    @staticmethod
    def _columnar(rows: list) -> dict:
        """Row dicts -> aligned columns, padding gauges that appeared
        late (a provider bound mid-run) with None."""
        names: list[str] = []
        seen: set = set()
        for _t, row in rows:
            for name in row:
                if name not in seen:
                    seen.add(name)
                    names.append(name)
        return {
            "t_s": [t for t, _row in rows],
            "series": {
                name: [row.get(name) for _t, row in rows] for name in names
            },
        }

    def timeseries(self) -> dict:
        """The run-report ``telemetry`` section (JSON-ready)."""
        with self._lock:
            rows = list(self._rows)
        doc = {
            "interval_s": self.interval,
            "samples": len(rows),
            "dropped": self.dropped,
            "coordinator": self._columnar(rows),
            "gc": self.gc_watch.summary(),
        }
        if self._workers:
            doc["workers"] = {
                str(pid): {
                    "interval_s": entry["interval_s"],
                    "samples": len(entry["rows"]),
                    **self._columnar(entry["rows"]),
                    **({"gc": entry["gc"]} if entry["gc"] else {}),
                }
                for pid, entry in sorted(self._workers.items())
            }
        return doc
