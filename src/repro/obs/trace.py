"""Span recording in Chrome ``trace_event`` format.

One :class:`TraceRecorder` collects complete ("ph": "X") spans from the
engine thread, the I/O pipeline's prefetch/spill threads (``list.append``
is atomic under the GIL, so threads share the recorder directly), and --
in a parallel run -- from forked workers: each worker records into its
own process-local recorder, ships the drained spans back inside the
existing :class:`~repro.engine.parallel.WaveResult` tuple protocol, and
the coordinator :meth:`absorbs <TraceRecorder.absorb>` them, re-basing
their timestamps onto its own clock via the wall-clock anchor both
recorders capture at creation (``time.perf_counter`` spans rebased by the
``time.time`` delta -- robust even where the monotonic clock's epoch is
not shared across processes).  Worker spans keep their own pid, so
``chrome://tracing`` / Perfetto interleave coordinator and worker tracks
correctly.

When tracing is disabled the engine holds the :data:`NULL_RECORDER`
singleton, whose ``enabled`` flag lets every call site skip span
bookkeeping entirely -- a disabled run records nothing and pays only a
predicate check on the coarse-grained paths that bother to guard.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

#: Spans are dropped (and counted) past this, so a pathological run
#: cannot swallow the heap; absorbed worker spans obey the same cap.
MAX_EVENTS = 1_000_000


class _NullSpan:
    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op stand-in; ``enabled`` is False so call sites can skip work."""

    enabled = False

    def span(self, name, cat="engine", **args):
        return _NULL_SPAN

    def begin(self) -> float:
        return 0.0

    def end(self, name, start, cat="engine", **args) -> None:
        pass

    def instant(self, name, cat="engine", **args) -> None:
        pass

    def note_thread(self, name) -> None:
        pass

    def ship(self):
        return None

    def absorb(self, shipped, role="worker") -> None:
        pass


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects Chrome-trace spans for one run (and absorbed workers)."""

    enabled = True

    def __init__(self, role: str = "coordinator", max_events: int = MAX_EVENTS):
        self.pid = os.getpid()
        self.role = role
        # Clock anchor: perf0 and wall0 are captured back to back; a
        # span's ``ts`` is perf_counter-relative to perf0, and wall0 is
        # what lets another recorder re-base our spans onto its anchor.
        self.wall0 = time.time()
        self.perf0 = time.perf_counter()
        self.events: list[dict] = []
        self.dropped = 0
        self.max_events = max_events
        self._known_pids: set[int] = set()
        self._known_tids: set[int] = set()
        self._note_process(self.pid, role)

    # -- metadata -------------------------------------------------------------

    def _note_process(self, pid: int, role: str) -> None:
        if pid in self._known_pids:
            return
        self._known_pids.add(pid)
        self.events.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": f"{role} (pid {pid})"},
        })

    def note_thread(self, name: str) -> None:
        """Label the calling thread's track (prefetch/spill threads)."""
        tid = threading.get_native_id()
        if tid in self._known_tids:
            return
        self._known_tids.add(tid)
        self.events.append({
            "ph": "M", "pid": self.pid, "tid": tid, "name": "thread_name",
            "args": {"name": name},
        })

    # -- recording ------------------------------------------------------------

    def begin(self) -> float:
        """Start timestamp for a :meth:`end`-terminated span."""
        return time.perf_counter()

    def end(self, name: str, start: float, cat: str = "engine", **args) -> None:
        """Record a complete span begun at ``start`` (from :meth:`begin`)."""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        now = time.perf_counter()
        event = {
            "ph": "X", "name": name, "cat": cat,
            "pid": self.pid, "tid": threading.get_native_id(),
            "ts": (start - self.perf0) * 1e6,
            "dur": (now - start) * 1e6,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "engine", **args):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.end(name, start, cat, **args)

    def instant(self, name: str, cat: str = "engine", **args) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        event = {
            "ph": "i", "s": "t", "name": name, "cat": cat,
            "pid": self.pid, "tid": threading.get_native_id(),
            "ts": (time.perf_counter() - self.perf0) * 1e6,
        }
        if args:
            event["args"] = args
        self.events.append(event)

    # -- cross-process shipping -----------------------------------------------

    def ship(self) -> dict:
        """Drain recorded spans into a picklable payload for the
        coordinator (metadata events stay local; the absorber re-emits
        its own for our pid)."""
        events, self.events = self.events, []
        dropped, self.dropped = self.dropped, 0
        return {
            "pid": self.pid,
            "wall0": self.wall0,
            "events": [e for e in events if e["ph"] != "M"],
            "dropped": dropped,
        }

    def absorb(self, shipped: dict | None, role: str = "worker") -> None:
        """Fold a shipped payload in, re-basing timestamps onto our clock."""
        if not shipped:
            return
        self._note_process(shipped["pid"], role)
        offset = (shipped["wall0"] - self.wall0) * 1e6
        events = self.events
        for event in shipped["events"]:
            if len(events) >= self.max_events:
                self.dropped += 1
                continue
            event["ts"] += offset
            events.append(event)
        self.dropped += shipped.get("dropped", 0)

    # -- inspection / export --------------------------------------------------

    def span_names(self) -> set:
        return {e["name"] for e in self.events if e["ph"] == "X"}

    def pids(self) -> set:
        return {e["pid"] for e in self.events if e["ph"] == "X"}

    def chrome_trace(self) -> dict:
        return {
            "traceEvents": self.events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorder": "repro.obs.trace",
                "dropped_events": self.dropped,
            },
        }

    def export(self, path: str) -> None:
        """Write the trace: Chrome JSON, or one-event-per-line JSONL when
        the path ends in ``.jsonl`` (the compact fallback -- streamable,
        still loadable by Perfetto)."""
        if path.endswith(".jsonl"):
            with open(path, "w") as f:
                for event in self.events:
                    f.write(json.dumps(event, separators=(",", ":")))
                    f.write("\n")
            return
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f)
            f.write("\n")
