"""Critical-path analysis of an engine trace: where did the wall go?

The parallel data plane overlaps worker pair-compute with coordinator
work, so neither the Figure-9 component breakdown nor the busy/idle
counters answer the scaling question directly -- "what fraction of the
wall is serialized, which stage is it, and what speedup is achievable?"
This module answers it from the Chrome trace the engine already records.

The attribution model is a sweep over each ``closure`` window (the
engine emits one per phase).  Every instant inside a window gets exactly
one label, by precedence:

1. covered by at least one ``pair-compute`` span (any process) -->
   ``pair-compute``: useful work was in flight, parallelizable;
2. else covered by a serialized coordinator stage span (``absorb``,
   ``spill-merge``, ``checkpoint``, ``repartition`` -- innermost wins
   when they nest) --> that stage;
3. else --> ``idle``: nobody computing, no serialized stage running
   (steal-refill gaps, dispatch latency, GC).

Labels partition the window, so per-stage attributions sum *exactly* to
the wall by construction.  The serialized fraction is everything not
labelled ``pair-compute``; merged same-label runs, sorted by duration,
are the critical-path segments worth staring at.

The speedup projection is Amdahl over the measured split: with
``P`` = total pair-compute span time, ``C`` = wall time covered by any
pair-compute span, and ``S = wall - C`` the serialized remainder,
``T(N) = S + P/N`` and speedup is relative to ``T(1) = S + P``.  This
assumes the serialized stages do not grow with N -- exactly the
assumption the report exists to check.

Without a trace (bench runs that only kept the run-report), a degraded
``report-only`` mode bounds the same quantities from the busy/idle
counters; its serialized time is a lower bound (``wall - P``) and its
projection correspondingly optimistic.
"""

from __future__ import annotations

import time

from .metrics import LATENCY_BUCKETS_S, Histogram

BOTTLENECK_SCHEMA = "grapple/bottleneck-report"
BOTTLENECK_VERSION = 1

#: Coordinator span names that serialize the data plane: while one of
#: these runs with no pair-compute in flight, adding workers buys nothing.
SERIAL_STAGES = ("absorb", "spill-merge", "checkpoint", "repartition")

#: Worker-count points for the Amdahl projection.
PROJECTION_WORKERS = (2, 4, 8)

#: Critical-path segments kept in the report.
TOP_N_SEGMENTS = 10


def _spans(trace) -> list[dict]:
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else trace
    return [e for e in events if isinstance(e, dict) and e.get("ph") == "X"]


def _instants(trace, name: str) -> int:
    events = trace.get("traceEvents", []) if isinstance(trace, dict) else trace
    return sum(
        1 for e in events
        if isinstance(e, dict) and e.get("ph") == "i" and e.get("name") == name
    )


def _interval(event: dict) -> tuple[float, float]:
    start = event["ts"] / 1e6
    return start, start + event.get("dur", 0) / 1e6


def _clip(lo: float, hi: float, windows) -> float:
    """Length of [lo, hi] that falls inside the window list."""
    total = 0.0
    for w_lo, w_hi in windows:
        total += max(0.0, min(hi, w_hi) - max(lo, w_lo))
    return total


def _sweep(window: tuple[float, float], pair_ivs, stage_ivs) -> list[dict]:
    """Label every instant of one closure window (see module docstring).

    ``pair_ivs`` are (lo, hi) pair-compute intervals; ``stage_ivs`` are
    (lo, hi, stage) serialized-stage intervals on the coordinator.
    Returns merged same-label segments covering the window exactly.
    """
    w_lo, w_hi = window
    bounds = {w_lo, w_hi}
    for lo, hi in pair_ivs:
        if hi > w_lo and lo < w_hi:
            bounds.add(max(lo, w_lo))
            bounds.add(min(hi, w_hi))
    for lo, hi, _stage in stage_ivs:
        if hi > w_lo and lo < w_hi:
            bounds.add(max(lo, w_lo))
            bounds.add(min(hi, w_hi))
    cuts = sorted(bounds)
    segments: list[dict] = []
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2
        if any(p_lo <= mid < p_hi for p_lo, p_hi in pair_ivs):
            label = "pair-compute"
        else:
            # Innermost serialized stage covering this instant: the one
            # that started latest (ties broken by earliest end).
            best = None
            for s_lo, s_hi, stage in stage_ivs:
                if s_lo <= mid < s_hi:
                    key = (s_lo, -s_hi)
                    if best is None or key > best[0]:
                        best = (key, stage)
            label = best[1] if best else "idle"
        if segments and segments[-1]["stage"] == label:
            segments[-1]["end_s"] = hi
        else:
            segments.append({"stage": label, "start_s": lo, "end_s": hi})
    return segments


def analyze_trace(trace, report: dict | None = None, top_n: int = TOP_N_SEGMENTS) -> dict:
    """Bottleneck report from a Chrome trace (plus optional run-report)."""
    spans = _spans(trace)
    if not spans:
        raise ValueError("trace contains no complete ('ph': 'X') spans")

    closures = [e for e in spans if e["name"] == "closure"]
    if closures:
        windows = sorted(_interval(e) for e in closures)
    else:
        # Degenerate trace (e.g. a bare worker shipment): analyze its
        # full extent as one window.
        ivs = [_interval(e) for e in spans]
        windows = [(min(lo for lo, _ in ivs), max(hi for _, hi in ivs))]
    coord_pids = {e["pid"] for e in closures} or {s["pid"] for s in spans}

    pair_ivs = [_interval(e) for e in spans if e["name"] == "pair-compute"]
    stage_ivs = [
        (*_interval(e), e["name"])
        for e in spans
        if e["name"] in SERIAL_STAGES and e["pid"] in coord_pids
    ]

    segments: list[dict] = []
    for window in windows:
        segments.extend(_sweep(window, pair_ivs, stage_ivs))

    wall = sum(hi - lo for lo, hi in windows)
    stages: dict[str, float] = {}
    for seg in segments:
        stages[seg["stage"]] = (
            stages.get(seg["stage"], 0.0) + seg["end_s"] - seg["start_s"]
        )
    covered = stages.get("pair-compute", 0.0)
    pair_total = sum(_clip(lo, hi, windows) for lo, hi in pair_ivs)
    serialized = wall - covered

    idle_hist = Histogram("steal_idle_gap_s", LATENCY_BUCKETS_S)
    for seg in segments:
        if seg["stage"] == "idle":
            idle_hist.observe(seg["end_s"] - seg["start_s"])

    top = sorted(
        segments, key=lambda s: s["end_s"] - s["start_s"], reverse=True
    )[:top_n]

    serial_only = {k: v for k, v in stages.items() if k != "pair-compute"}
    top_stage = max(serial_only, key=serial_only.get) if serial_only else None

    report_doc = {
        "schema": BOTTLENECK_SCHEMA,
        "version": BOTTLENECK_VERSION,
        "mode": "trace",
        "generated_unix": round(time.time(), 3),
        "wall_s": round(wall, 6),
        "windows": len(windows),
        "stages_s": {k: round(v, 6) for k, v in sorted(stages.items())},
        "stage_fractions": {
            k: round(v / wall, 4) for k, v in sorted(stages.items())
        } if wall else {},
        "serialized_s": round(serialized, 6),
        "serialized_fraction": round(serialized / wall, 4) if wall else 0.0,
        "top_serialized_stage": top_stage,
        "pair_compute_s": round(pair_total, 6),
        "covered_s": round(covered, 6),
        "concurrency": round(pair_total / covered, 4) if covered else 0.0,
        "critical_path": [
            {
                "stage": s["stage"],
                "start_s": round(s["start_s"], 6),
                "end_s": round(s["end_s"], 6),
                "dur_s": round(s["end_s"] - s["start_s"], 6),
            }
            for s in top
        ],
        "steal": {
            "events": _instants(trace, "steal"),
            "idle_gap_histogram": idle_hist.snapshot(),
        },
        "projection": _project(serialized, pair_total),
    }
    if report:
        report_doc["subject"] = report.get("subject")
        report_doc["run_wall_s"] = report.get("timing", {}).get("computation_s")
    return report_doc


def _project(serial_s: float, pair_s: float) -> dict:
    """Amdahl projection: T(N) = S + P/N, speedup vs T(1) = S + P."""
    t1 = serial_s + pair_s
    out = {
        "model": "T(N) = serialized_s + pair_compute_s / N",
        "t1_s": round(t1, 6),
    }
    for n in PROJECTION_WORKERS:
        tn = serial_s + pair_s / n
        out[str(n)] = {
            "t_s": round(tn, 6),
            "speedup": round(t1 / tn, 4) if tn else 0.0,
        }
    return out


def analyze_report(report: dict) -> dict:
    """Degraded bottleneck report from a run-report alone (no trace).

    Busy/idle counters bound what the sweep would measure: the covered
    time ``C`` satisfies ``C <= min(wall, P)``, so ``wall - P`` is a
    lower bound on serialized time and the projection (which uses it) an
    upper bound on achievable speedup.
    """
    wall = report.get("timing", {}).get("computation_s")
    numbers = dict(report.get("gauges", {}))
    numbers.update(report.get("counters", {}))
    busy = numbers.get("worker_busy_s")
    doc = {
        "schema": BOTTLENECK_SCHEMA,
        "version": BOTTLENECK_VERSION,
        "mode": "report-only",
        "generated_unix": round(time.time(), 3),
        "wall_s": wall,
        "subject": report.get("subject"),
    }
    if wall is None or not busy:
        doc["note"] = (
            "no trace and no worker busy counters; run with --profile"
            " for a full critical-path report"
        )
        return doc
    covered = min(wall, busy)
    serial_lb = max(0.0, wall - busy)
    doc.update({
        "pair_compute_s": round(busy, 6),
        "worker_idle_s": numbers.get("worker_idle_s"),
        "serialized_s_lower_bound": round(serial_lb, 6),
        "serialized_fraction_lower_bound": round(serial_lb / wall, 4),
        "concurrency": round(busy / covered, 4) if covered else 0.0,
        "projection": _project(serial_lb, busy),
        "note": "counter-derived bounds; serialized time is a lower bound",
    })
    return doc


def analyze(trace=None, report: dict | None = None, top_n: int = TOP_N_SEGMENTS) -> dict:
    """Dispatch: full trace analysis when a trace is given, else the
    counter-derived degraded mode from the run-report."""
    if trace is not None:
        return analyze_trace(trace, report, top_n=top_n)
    if report is not None:
        return analyze_report(report)
    raise ValueError("analyze() needs a trace or a run-report")


def format_bottleneck(doc: dict) -> str:
    """Human-readable rendering of a bottleneck report."""
    lines = [f"bottleneck report ({doc.get('mode', 'trace')} mode)"]
    wall = doc.get("wall_s")
    if wall is not None:
        lines.append(f"  wall            {wall:.3f}s")
    if doc.get("mode") == "report-only":
        frac = doc.get("serialized_fraction_lower_bound")
        if frac is not None:
            lines.append(f"  serialized      >= {frac:.1%} (lower bound)")
    else:
        lines.append(
            f"  serialized      {doc['serialized_fraction']:.1%}"
            f" ({doc['serialized_s']:.3f}s)"
        )
        lines.append(
            f"  top stage       {doc['top_serialized_stage']}"
        )
        lines.append(f"  concurrency     {doc['concurrency']:.2f}x")
        for stage, secs in doc.get("stages_s", {}).items():
            frac = doc["stage_fractions"].get(stage, 0.0)
            lines.append(f"    {stage:<14} {secs:9.3f}s  {frac:6.1%}")
        steal = doc.get("steal", {})
        if steal:
            lines.append(f"  steals          {steal.get('events', 0)}")
    projection = doc.get("projection")
    if projection:
        for n in PROJECTION_WORKERS:
            entry = projection.get(str(n))
            if entry:
                lines.append(
                    f"  @{n} workers      {entry['t_s']:.3f}s"
                    f"  ({entry['speedup']:.2f}x)"
                )
    note = doc.get("note")
    if note:
        lines.append(f"  note: {note}")
    return "\n".join(lines)
