"""Edge-pair-centric, constraint-guided transitive closure (paper §4.2-4.3).

The engine repeatedly loads a pair of partitions, joins consecutive edges
``x -> y`` and ``y -> z`` whose labels compose under the grammar, merges
their interval-sequence path encodings, checks the merged constraint's
satisfiability (through the memoisation caches), and inserts the
transitive edge.  New edges owned by unloaded partitions are spilled to
delta files; oversized partitions are split eagerly.  A pair becomes
re-eligible whenever either partition gained edges since the pair was last
processed, and the computation stops when no pair is eligible -- the
fixpoint "no new edges can be found".

Since the columnar-store rewrite the inner loop runs entirely on interned
integer ids: partitions are :class:`~repro.engine.columnar.EdgeColumns`
(sorted ``array('q')`` columns plus an insert overlay), every path
encoding is hash-consed to a dense id by the engine's
:class:`~repro.engine.columnar.EncodingTable`, and the frontier drain is
a merge-join -- each round sorts the pending left operands by their join
vertex and probes the right-hand sorted source runs once per distinct
vertex instead of once per edge.  Encoding merges, reversals, label
compositions, and feasibility verdicts are all memoised by id, so the
hot path compares machine ints where it used to hash variable-length
tuples.  Ids never leave the process; anything that crosses a process or
disk boundary is converted back to encoding tuples at the edge.
"""

from __future__ import annotations

import os
import shutil
import sys
import tempfile
import time
from dataclasses import dataclass, field

from repro.cfet import encoding as enc_mod
from repro.cfet.icfet import Icfet
from repro.engine import checkpoint as ckpt
from repro.engine import kernel as kernel_mod
from repro.engine import serialize
from repro.engine.cache import FeasibilityMemo, LRUCache
from repro.engine.columnar import EncodingTable
from repro.engine.io_pipeline import PrefetchReader, SpillWriter
from repro.engine.partition import Partition, PartitionStore
from repro.engine.scheduling import PairScheduler
from repro.engine.stats import EngineStats
from repro.faults import resolve_plan
from repro.obs.trace import NULL_RECORDER
from repro.grammar.cfg_grammar import ComposeContext, Grammar
from repro.graph.model import ProgramGraph
from repro.smt import Result, Solver
from repro.smt import expr as E

#: Caps on the per-engine id-keyed memo tables (plain dicts; entries are
#: a few machine words each, so these allow tens of MB at most).
MERGE_MEMO_CAP = 500_000
DECODE_CACHE_CAP = 500_000


@dataclass
class EngineOptions:
    """Engine tuning knobs; defaults suit test-sized workloads."""

    workdir: str | None = None  # temp dir when None
    memory_budget: int = 64 * 1024 * 1024
    min_partitions: int = 2
    witness_cap: int = 3  # max distinct encodings kept per (src, dst, label)
    cache_capacity: int = 200_000
    enable_cache: bool = True
    max_pairs: int | None = None  # safety cap on processed pairs
    keep_workdir: bool = False
    # Ablation switch: with path sensitivity off, every composition is
    # considered feasible (no constraint decoding or solving), matching a
    # purely grammar-guided Graspan-style closure.
    path_sensitive: bool = True
    # "interval" is Grapple's encoding; "string" is the naive baseline of
    # Table 5 where each edge carries its whole constraint as a string.
    constraint_mode: str = "interval"
    # String-mode edges whose constraint text exceeds this are dropped
    # (the equivalent of MAX_ELEMENTS for interval encodings).
    max_string_bytes: int = 1 << 20
    # Wall-clock budget in seconds; None = unlimited.  The paper's naive
    # baseline did not terminate in 200 hours on HBase -- the budget lets
    # the benchmark report "timeout" instead of hanging.
    time_budget: float | None = None
    # Number of worker processes for the partition-pair computation.
    # 1 keeps the serial in-process path (the correctness oracle); >1
    # dispatches waves of disjoint pairs to a multiprocessing pool (see
    # repro.engine.parallel).
    workers: int = 1
    # How the parallel path runs pair tasks: "auto" forks a pool only
    # when the machine has more than one CPU (otherwise every task runs
    # in the coordinator process -- same wave protocol, no IPC); "fork"
    # always forks `workers` processes; "inline" never forks.
    parallel_dispatch: str = "auto"
    # Partition floor for the parallel path: more partitions widen the
    # waves (up to P // 2 disjoint pairs in flight).  None derives
    # 2 * effective workers; the serial path ignores this and uses
    # min_partitions.
    parallel_min_partitions: int | None = None
    # Background I/O pipeline (engine/io_pipeline.py): prefetch upcoming
    # partitions on a reader thread, and zlib-compress buffered spill
    # frames on the writer thread.
    prefetch: bool = True
    compress_spills: bool = False
    # Observability (repro.obs) -- all three default off and cost nothing
    # when disabled.  ``trace`` is a TraceRecorder (forked workers inherit
    # it through _FORK_STATE and ship their spans back in WaveResults);
    # ``metrics`` attaches the standard histogram registry to the stats;
    # ``heartbeat`` prints a progress line on stderr every N seconds.
    trace: object = None
    metrics: bool = False
    heartbeat: float | None = None
    # Resource telemetry (repro.obs.profile): a ResourceSampler whose
    # background thread records gauge timeseries (RSS, cache occupancy,
    # eligible pairs, shm bytes, GC pauses).  The engine binds its
    # providers during a run; forked workers see the object through
    # _FORK_STATE copy-on-write and build their *own* sampler from its
    # interval (a thread never survives fork).  None = profiling off,
    # and -- like the rest of the observability stack -- off costs
    # nothing and adds nothing to the run report.
    sampler: object = None
    # Fault tolerance (DESIGN.md §11).  Checkpoint manifests are written
    # after every wave (serial: every pair) when ``workdir`` is explicit
    # -- a temp workdir cannot be pointed at again, so checkpointing is
    # skipped (and costs nothing) there.  ``resume`` restarts a killed
    # run from ``workdir``'s last manifest; ``max_retries`` bounds how
    # often a pair whose worker died or whose partition load raised
    # CorruptPartition is requeued before it degrades to a warning;
    # ``fault_plan`` is a repro.faults.FaultPlan (or its spec string)
    # injecting deterministic failures for tests and smoke runs.
    resume: bool = False
    max_retries: int = 2
    fault_plan: object = None
    # Batched closure kernel (engine/kernel.py).  ``kernel`` selects the
    # backend: "auto" uses numpy when installed and the pure-stdlib
    # fallback otherwise (both bit-identical), "numpy"/"stdlib" force
    # one, "off" keeps the scalar drain.  ``batch_size`` bounds how many
    # composed candidates one grouped-feasibility chunk holds.
    kernel: str = "auto"
    batch_size: int = 2048
    # How many upcoming scheduled pairs the serial loop hands to the
    # background prefetcher each iteration (deeper lookahead keeps the
    # reader busy across pairs whose partitions were already resident).
    prefetch_depth: int = 4
    # Parallel data plane (engine/shm.py, DESIGN.md §13).  ``shm``
    # publishes pooled pairs' partitions as named shared-memory column
    # segments that workers map zero-copy (--no-shm falls back to the
    # materialise-to-disk protocol; also the automatic fallback wherever
    # POSIX shared memory is unavailable).  ``shard_by_source`` orders
    # waves by contiguous source strata ("auto" = one stratum per pool
    # slot, an int fixes the count, 0/"off" keeps the serial pair
    # order).  ``steal`` lets the coordinator refill freed pool slots
    # with further eligible pairs while a wave's results stream back
    # (deterministic: steal decisions are keyed to absorb order, never
    # wall-clock); it is disabled automatically under --max-pairs.
    shm: bool = True
    shard_by_source: object = "auto"
    steal: bool = True


@dataclass
class EngineResult:
    """Outcome of one engine run; edges stream from disk on demand."""

    stats: EngineStats
    store: PartitionStore
    graph: ProgramGraph  # provides the vertex/label tables and meta
    _finalizer: object = None

    def own_workdir(self, workdir: str) -> None:
        """Delete ``workdir`` when this result is garbage-collected (or
        :meth:`cleanup` is called)."""
        import weakref

        self._finalizer = weakref.finalize(
            self, shutil.rmtree, workdir, ignore_errors=True
        )

    def cleanup(self) -> None:
        if self._finalizer is not None:
            self._finalizer()

    def iter_edges(self):
        """Yield ``(src, dst, label_tuple, encoding)`` for all final edges."""
        labels = self.graph.labels
        for src, dst, label_id, encoding in self.store.iter_all_edges():
            yield src, dst, labels.lookup(label_id), encoding

    def edges_with_label(self, label: tuple):
        label_id = self.graph.labels.get(label)
        if label_id is None:
            return
        for src, dst, lid, encoding in self.store.iter_all_edges():
            if lid == label_id:
                yield src, dst, encoding

    def collect_by_label(self, predicate):
        """``{(src, dst, label): set[encoding]}`` for labels passing the
        predicate.  Loads matching edges into memory."""
        out: dict = {}
        labels = self.graph.labels
        for src, dst, label_id, encoding in self.store.iter_all_edges():
            label = labels.lookup(label_id)
            if predicate(label):
                out.setdefault((src, dst, label), set()).add(encoding)
        return out


class GraphEngine:
    """Runs one analysis (one grammar) over one program graph."""

    def __init__(
        self,
        icfet: Icfet,
        grammar: Grammar,
        options: EngineOptions | None = None,
        solver: Solver | None = None,
        phase: str = "",
    ):
        self.icfet = icfet
        self.grammar = grammar
        self.options = options or EngineOptions()
        self.solver = solver or Solver()
        # Pipeline phase label ("alias", "dataflow"); with an explicit
        # workdir each phase runs in its own subdirectory so partition
        # files and checkpoint manifests never collide across phases.
        self.phase = phase
        # Normalise the fault plan once and write it back, so the two
        # pipeline phases (which share one EngineOptions) and forked
        # workers (which inherit it through _FORK_STATE) all hold the
        # same armed plan with its once-per-run latches.
        self.faults = resolve_plan(self.options.fault_plan)
        self.options.fault_plan = self.faults
        self.stats = EngineStats()
        self.trace = (
            self.options.trace if self.options.trace is not None
            else NULL_RECORDER
        )
        if self.options.metrics:
            self.stats.ensure_metrics()
        self._heartbeat = None
        self.cache = LRUCache(self.options.cache_capacity)
        # All id-keyed memo tables below are process-local, like the
        # EncodingTable that defines the ids.
        self._enc = EncodingTable()
        self._decode_cache: dict = {}  # enc id -> constraint expr
        self._compose_memo: dict = {}  # (label id, label id) -> label ids
        self._merge_memo: dict = {}  # (enc id, enc id) -> enc id | None
        self._reverse_memo: dict = {}  # enc id -> enc id
        self._feasible_memo = FeasibilityMemo()
        self._rel_src_memo: dict = {}  # label id -> bool
        self._rel_tgt_memo: dict = {}  # label id -> bool
        self._derived_memo: dict = {}  # label id -> ((label id, rev), ...)
        self._table_driven = getattr(grammar, "table_driven", False)
        # Batched kernel state (engine/kernel.py): the resolved backend
        # (None = scalar drain), the canonical-form verdict memo shared
        # by the lazy and grouped feasibility paths, per-id serialised
        # constraint / form-key caches, and verdicts the kernel solved
        # ahead of their insert-time query.
        self._kernel = kernel_mod.resolve_backend(self.options.kernel)
        self._form_memo: dict = {}  # canonical form text -> verdict
        self._sexpr_cache: dict = {}  # enc id -> serialised constraint
        self._form_key_cache: dict = {}  # enc id -> canonical form text
        self._presolved: dict = {}  # enc id -> pre-solved verdict
        self._derived_closure: dict = {}  # label id -> ((label id, flip), ...)
        # True when tuple-keyed LRU entries were seeded from outside this
        # process (parallel workers): then an id unknown to the feasible
        # memo can still hit the LRU, and the kernel's pre-solve
        # eligibility must peek the LRU before claiming a certain miss.
        self._lru_external = False
        self._split_epoch = 0
        # Optional callback ``(owner_index, src, dst, label_id, enc_id)``
        # invoked for every new edge inserted into a *loaded* partition;
        # the parallel worker uses it to report delta edges back to the
        # coordinator.
        self._new_edge_sink = None
        # Fault-tolerance state: where checkpoint manifests go (None =
        # checkpointing off), the manifest being resumed from, the live
        # scheduler (its frontier rides in every manifest), and the
        # partitions declared unrecoverable.
        self._ckpt_dir: str | None = None
        self._resume_manifest: dict | None = None
        self._scheduler_seed: dict | None = None
        self._scheduler = None
        self._quarantined_parts: set = set()

    # -- public API ----------------------------------------------------------

    def run(self, graph: ProgramGraph) -> EngineResult:
        workdir = self.options.workdir
        cleanup = False
        if workdir is None:
            workdir = tempfile.mkdtemp(prefix="grapple_")
            cleanup = not self.options.keep_workdir
        else:
            if self.phase:
                workdir = os.path.join(workdir, self.phase)
            os.makedirs(workdir, exist_ok=True)
        try:
            result = self._run(graph, workdir)
        except BaseException:
            if cleanup:
                shutil.rmtree(workdir, ignore_errors=True)
            raise
        if cleanup:
            # The result streams edges from disk; tie the directory's
            # lifetime to the result object.
            result.own_workdir(workdir)
        return result

    # -- internals -------------------------------------------------------------

    def _run(self, graph: ProgramGraph, workdir: str) -> EngineResult:
        stats = self.stats
        self._deadline = None
        if self.options.time_budget is not None:
            self._deadline = time.perf_counter() + self.options.time_budget
        self.timed_out = False
        parallel = self.options.workers > 1
        min_partitions = self.options.min_partitions
        if parallel:
            from repro.engine.parallel import effective_workers

            floor = self.options.parallel_min_partitions
            if floor is None:
                floor = 2 * effective_workers(self.options)
            min_partitions = max(min_partitions, floor)
        trace = self.trace
        if self.options.heartbeat:
            from repro.obs.report import Heartbeat

            self._heartbeat = Heartbeat(self.options.heartbeat)
        # Once-per-run fault latches live beside the *base* workdir so
        # one plan spans both pipeline phases; a fresh run re-arms them,
        # --resume keeps the faults that crashed the original tripped.
        latch_base = self.options.workdir or workdir
        self.faults.arm(
            os.path.join(latch_base, ".faults"),
            reset=not self.options.resume,
        )
        # Checkpointing is tied to an explicit workdir: a temp dir can't
        # be pointed at again, so manifests there would be dead weight.
        self._ckpt_dir = workdir if self.options.workdir is not None else None
        manifest = None
        if self._ckpt_dir is not None and self.options.resume:
            manifest = ckpt.load_manifest(self._ckpt_dir)
        prefetch = (
            PrefetchReader(trace=trace) if self.options.prefetch else None
        )
        spill_writer = SpillWriter(
            compress=self.options.compress_spills, trace=trace,
            faults=self.faults,
        )
        with stats.timing("preprocess_time"):
            self._seed_derived(graph)
            if self.options.constraint_mode == "string":
                self._stringify_graph(graph)
            store = PartitionStore(
                workdir, self.options.memory_budget, stats,
                table=self._enc, prefetch=prefetch,
                spill_writer=spill_writer, trace=trace,
                faults=self.faults,
            )
            if manifest is not None:
                # Refuse a resume that would not continue the original
                # run, then adopt its partitions, frontier, and stats.
                ckpt.validate(manifest, self.options, graph)
                ckpt.restore_store(manifest, store)
                ckpt.restore_stats(manifest, stats)
                self._scheduler_seed = ckpt.restored_last_seen(manifest)
            else:
                if self._ckpt_dir is not None:
                    # Fresh run in a reused directory: stale partition,
                    # delta, temp, or manifest files from an earlier run
                    # must not leak into this one.
                    for name in os.listdir(workdir):
                        if (
                            name.endswith((".bin", ".tmp"))
                            or name == ckpt.MANIFEST
                        ):
                            try:
                                os.remove(os.path.join(workdir, name))
                            except OSError:
                                pass
                stats.edges_before = graph.edge_count()
                stats.vertices = len(graph.vertices)
                store.initialize(
                    graph.edges, len(graph.vertices), min_partitions
                )
        self._graph = graph
        self._store = store
        # Telemetry providers for this phase: the sampler thread (one per
        # process, started idempotently) polls these at its cadence; they
        # are unbound below before the store is torn down.
        sampler = self.options.sampler
        if sampler is not None:
            sampler.bind("partition_cache_occupancy", store.cache_occupancy)
            sampler.bind(
                "eligible_pairs",
                lambda: (
                    self._scheduler.eligible_count()
                    if self._scheduler is not None else None
                ),
            )
            sampler.start()
        self._resume_manifest = manifest
        self._ctx = ComposeContext(
            feasible=self._feasible, vertex=graph.vertices.lookup
        )

        resumed_complete = manifest is not None and manifest["complete"]
        try:
            with trace.span(
                "closure", workers=self.options.workers,
                partitions=len(store.partitions),
            ):
                if resumed_complete:
                    pass  # the manifest says this phase already finished
                elif parallel:
                    from repro.engine.parallel import ParallelCoordinator

                    ParallelCoordinator(self).run()
                else:
                    self._serial_loop()
        finally:
            if sampler is not None:
                # Capture the phase's final state, then detach providers
                # before the store they close over is torn down (the CLI
                # owns the thread's lifetime across both phases).
                sampler.sample_once()
                sampler.unbind("partition_cache_occupancy")
                sampler.unbind("eligible_pairs")
            # Post-run edge iteration must not count prefetch misses or
            # race the writer thread: tear the pipeline down here.
            store.drop_pipeline()
            spill_writer.close()
            stats.spill_frames += spill_writer.frames_written
            stats.spill_bytes += spill_writer.bytes_written

        store.flush()
        stats.edges_after = store.total_edges()
        stats.final_partitions = len(store.partitions)
        if not resumed_complete:
            self._write_checkpoint(complete=True)
        result = EngineResult(stats=stats, store=store, graph=graph)
        return result

    def _write_checkpoint(self, complete: bool = False) -> None:
        """Flush the store and write the resume manifest (no-op when
        checkpointing is off).  The manifest goes last and atomically,
        so it never describes state that is not yet durable."""
        if self._ckpt_dir is None:
            return
        store = self._store
        if store.spill_writer is not None:
            store.spill_writer.flush()
        store.flush()
        trace = self.trace
        tick = trace.begin() if trace.enabled else 0.0
        last_seen = (
            self._scheduler.last_seen if self._scheduler is not None else {}
        )
        manifest = ckpt.write_manifest(
            self._ckpt_dir, phase=self.phase or "closure",
            options=self.options, store=store, last_seen=last_seen,
            stats=self.stats, graph=self._graph, complete=complete,
            steal_frontier=getattr(self, "_steal_frontier", None),
        )
        # With the manifest durable, anything it does not reference is
        # superseded garbage (folded delta logs, torn-write temps); a
        # long-running workdir would otherwise grow monotonically.
        self.stats.checkpoint_files_pruned += ckpt.prune_workdir(
            self._ckpt_dir, manifest
        )
        if tick:
            trace.end("checkpoint", tick, cat="fault", complete=complete)
        self.stats.checkpoints_written += 1
        spec = self.faults.fire("checkpoint")
        if spec is not None and spec.mode == "kill_run":
            # Injected whole-run crash, *after* the manifest is durable:
            # a --resume of this workdir must pick up right here.
            self.faults.kill_self()

    def _serial_loop(self) -> None:
        stats = self.stats
        store = self._store
        trace = self.trace
        heartbeat = self._heartbeat
        scheduler = PairScheduler(store)
        self._scheduler = scheduler
        if self._scheduler_seed:
            scheduler.restore(self._scheduler_seed)
        while True:
            pair = scheduler.next_pair()
            if pair is None:
                break
            if (
                self.options.max_pairs is not None
                and stats.pairs_processed >= self.options.max_pairs
            ):
                break
            if self._deadline is not None and time.perf_counter() > self._deadline:
                self.timed_out = True
                stats.timed_out = True
                break
            captured = scheduler.captured_versions(pair)
            scheduler.pop_pair(pair)
            # Overlap the next pair's disk reads with this pair's compute:
            # the lookahead is a prediction (processing this pair may
            # change eligibility), so stale prefetches simply miss.
            if store.prefetch is not None:
                busy = set(pair)
                depth = max(1, self.options.prefetch_depth)
                for upcoming in scheduler.peek_pairs(depth):
                    for index in set(upcoming) - busy:
                        store.prefetch_schedule(store.partitions[index])
            if trace.enabled:
                with trace.span(
                    "iteration", iteration=stats.pairs_processed + 1,
                    pair=f"{pair[0]},{pair[1]}",
                ):
                    self._attempt_pair(pair)
            else:
                self._attempt_pair(pair)
            scheduler.mark_processed(pair, captured)
            stats.pairs_processed += 1
            stats.iterations = stats.pairs_processed
            self._write_checkpoint()
            if heartbeat is not None:
                heartbeat.maybe_beat(stats, store, scheduler)

    # -- retry / quarantine ------------------------------------------------------

    def _attempt_pair(self, pair) -> None:
        """Process one pair, retrying across :class:`CorruptPartition`
        (rebuilding damaged partitions from their best surviving copy)
        and degrading to a per-pair warning when retries run out."""
        if self._quarantined_parts and (
            pair[0] in self._quarantined_parts
            or pair[1] in self._quarantined_parts
        ):
            return  # already warned at the partition level
        attempt = 0
        while True:
            try:
                self._process_pair(*pair)
                return
            except serialize.CorruptPartition as exc:
                if attempt >= self.options.max_retries:
                    self._quarantine_pair(pair, exc)
                    return
                attempt += 1
                self._recover_pair(pair, exc, attempt)

    def _recover_pair(self, pair, exc, attempt: int) -> None:
        """Before a retry: probe the pair's partitions and rewrite any
        whose file is unreadable from the resident cached copy or the
        torn rename's temp file (:meth:`PartitionStore.rebuild`)."""
        stats = self.stats
        store = self._store
        stats.retries += 1
        tick = self.trace.begin() if self.trace.enabled else 0.0
        for index in set(pair):
            part = store.partitions[index]
            if store.prefetch is not None:
                store.prefetch.invalidate(index)
            try:
                store.load(part)
            except serialize.CorruptPartition:
                if not store.rebuild(part):
                    self._quarantine_partition(part, exc)
        if tick:
            self.trace.end(
                "retry", tick, cat="fault",
                pair=f"{pair[0]},{pair[1]}", attempt=attempt,
            )

    def _quarantine_partition(self, part, exc) -> None:
        if part.index in self._quarantined_parts:
            return
        self._quarantined_parts.add(part.index)
        self.stats.partitions_quarantined += 1
        print(
            f"grapple: partition {part.index} is unrecoverable and was"
            f" quarantined (its pairs are skipped): {exc}",
            file=sys.stderr,
        )

    def _quarantine_pair(self, pair, exc) -> None:
        self.stats.pairs_quarantined += 1
        print(
            f"grapple: giving up on partition pair {pair[0]},{pair[1]}"
            f" after {self.options.max_retries} retries: {exc}",
            file=sys.stderr,
        )

    def _seed_derived(self, graph: ProgramGraph) -> None:
        """Apply grammar derivations to the initial edges (e.g. flowsTo
        from new, and its reversal)."""
        pending = list(graph.iter_edges())
        while pending:
            src, dst, label_id, encoding = pending.pop()
            label = graph.labels.lookup(label_id)
            for derived_label, rev in self.grammar.derived(label):
                if rev:
                    new_edge = (dst, src, derived_label, enc_mod.reverse(encoding))
                else:
                    new_edge = (src, dst, derived_label, encoding)
                if graph.add_edge(*new_edge):
                    pending.append(
                        (
                            new_edge[0],
                            new_edge[1],
                            graph.labels.intern(new_edge[2]),
                            new_edge[3],
                        )
                    )

    # -- label/encoding id helpers ---------------------------------------------

    def _rel_src_id(self, label_id: int) -> bool:
        memo = self._rel_src_memo
        value = memo.get(label_id)
        if value is None:
            value = memo[label_id] = self.grammar.relevant_source(
                self._graph.labels.lookup(label_id)
            )
        return value

    def _rel_tgt_id(self, label_id: int) -> bool:
        memo = self._rel_tgt_memo
        value = memo.get(label_id)
        if value is None:
            value = memo[label_id] = self.grammar.relevant_target(
                self._graph.labels.lookup(label_id)
            )
        return value

    def _derived_ids(self, label_id: int):
        memo = self._derived_memo
        value = memo.get(label_id)
        if value is None:
            labels = self._graph.labels
            value = memo[label_id] = tuple(
                (labels.intern(derived_label), rev)
                for derived_label, rev in self.grammar.derived(
                    labels.lookup(label_id)
                )
            )
        return value

    def _merge_ids(self, e1: int, e2: int):
        """Memoised encoding merge by id; None = overflow (dropped)."""
        key = (e1, e2)
        memo = self._merge_memo
        if key in memo:
            return memo[key]
        table = self._enc
        with self.stats.timing("encode_time"):
            merged = self._merge_encodings(table.decode(e1), table.decode(e2))
        result = None if merged is None else table.intern(merged)
        if len(memo) < MERGE_MEMO_CAP:
            memo[key] = result
        return result

    def _reverse_id(self, eid: int) -> int:
        memo = self._reverse_memo
        result = memo.get(eid)
        if result is None:
            with self.stats.timing("encode_time"):
                reversed_enc = self._reverse_encoding(self._enc.decode(eid))
            result = memo[eid] = self._enc.intern(reversed_enc)
        return result

    # -- pair processing ---------------------------------------------------------

    def _process_pair(self, i: int, j: int) -> None:
        """Run one pair's drain, attributing its self-time to compute.

        The reentrant ``timing`` span means the I/O, encoding, and SMT
        time accrued *inside* the body lands in its own components and is
        subtracted from ``compute_time`` automatically -- this replaced a
        hand-maintained "already accounted" delta.  With observability on,
        the wrapper also emits a ``pair-compute`` trace span and feeds the
        pair latency / edge-yield histograms.
        """
        stats = self.stats
        trace = self.trace
        metrics = stats.metrics
        if not trace.enabled and metrics is None:
            with stats.timing("compute_time"):
                self._pair_body(i, j)
            return
        edges_before = stats.new_edges
        start = time.perf_counter()
        with stats.timing("compute_time"):
            self._pair_body(i, j)
        elapsed = time.perf_counter() - start
        yielded = stats.new_edges - edges_before
        if trace.enabled:
            trace.end(
                "pair-compute", start, cat="pair",
                pair=f"{i},{j}", new_edges=yielded,
            )
        if metrics is not None:
            metrics.observe("pair_compute_s", elapsed)
            metrics.observe("pair_new_edges", yielded)

    def _pair_body(self, i: int, j: int) -> None:
        """Merge-join frontier drain over one partition pair.

        Each round takes the whole pending frontier, sorts it by the join
        vertex (the left operand's destination), and walks the distinct
        join vertices in order -- one sorted-run probe of the right-hand
        columns per vertex, shared by every left operand joining there,
        instead of one dict probe per edge.  Edges produced by a round
        join the next round's frontier; convergence is unchanged because
        pair re-eligibility (version counters) already covers any
        composition a snapshot probe misses.
        """
        store = self._store
        parts = {i: store.partitions[i]}
        loaded = {i: store.load(store.partitions[i])}
        if j != i:
            parts[j] = store.partitions[j]
            loaded[j] = store.load(store.partitions[j])
        dirty: set = set()
        spills: dict = {}

        def out_rows(v: int):
            for index, part in parts.items():
                if part.owns(v):
                    return loaded[index].out_rows(v)
            return None

        frontier: list = []
        self._seed_pair((i, j), loaded, parts, spills, dirty, frontier)

        if self._kernel is not None:
            kernel_mod.drain(self, loaded, parts, spills, dirty, frontier)
            self._flush_spills(spills)
            self._finalize_pair(loaded, parts, dirty)
            return

        stats = self.stats
        rel_tgt = self._rel_tgt_id
        while frontier:
            batch = frontier
            frontier = []
            batch.sort(key=lambda edge: edge[1])
            stats.join_batches += 1
            at, n = 0, len(batch)
            while at < n:
                dst = batch[at][1]
                end = at + 1
                while end < n and batch[end][1] == dst:
                    end += 1
                rows = out_rows(dst)
                if rows:
                    stats.join_probes += 1
                    rows = [row for row in rows if rel_tgt(row[1])]
                if rows:
                    for k in range(at, end):
                        src, _, label1_id, enc1 = batch[k]
                        for dst2, label2_id, enc2 in rows:
                            self._compose_edges(
                                src, dst, label1_id, enc1,
                                dst2, label2_id, enc2,
                                loaded, parts, spills, dirty, frontier,
                            )
                at = end

        self._flush_spills(spills)
        self._finalize_pair(loaded, parts, dirty)

    def _seed_pair(self, pair, loaded, parts, spills, dirty, frontier) -> None:
        """Build the initial frontier for one pair processing.

        The serial engine reseeds with *every* relevant-source edge of the
        loaded partitions and recomposes from scratch; the parallel
        engine's workers override this with delta seeding (only edges new
        since the pair was last processed).
        """
        rel_src = self._rel_src_id
        for cols in loaded.values():
            for row in cols.iter_rows():
                if rel_src(row[2]):
                    frontier.append(row)

    def _finalize_pair(self, loaded, parts, dirty) -> None:
        """Persist the pair's loaded partitions (splitting any
        still-oversized ones; split() persists both halves itself)."""
        store = self._store
        for index in list(loaded):
            part, cols = parts[index], loaded[index]
            was_split = False
            while store.needs_split(part):
                part, cols, new_part, _new_cols = store.split(part, cols)
                if new_part is None:
                    break
                was_split = True
            parts[index], loaded[index] = part, cols
            if index in dirty and not was_split:
                store.save(part, cols)

    def _compose_edges(
        self, src, dst, label1_id, enc1, dst2, label2_id, enc2,
        loaded, parts, spills, dirty, frontier,
    ) -> None:
        stats = self.stats
        stats.compositions_tried += 1
        new_label_ids = self._compose_labels(
            src, dst, label1_id, enc1, dst2, label2_id, enc2
        )
        if not new_label_ids:
            return
        merged = self._merge_ids(enc1, enc2)
        if merged is None:
            stats.encoding_overflow_dropped += 1
            return
        for new_label_id in new_label_ids:
            self._insert(
                src, dst2, new_label_id, merged, loaded, parts, spills, dirty,
                frontier, check=True,
            )

    def _compose_labels(
        self, src, dst, label1_id, enc1, dst2, label2_id, enc2
    ):
        """Label ids produced by composing the two edges' labels.

        Table-driven grammars compose on labels alone, so the result is
        memoised on the interned label-id pair -- an int-tuple identity
        probe instead of nested tuple hashing.  Encoding-sensitive
        grammars (the dataflow grammar consults edge feasibility) are
        called per composition with the decoded edges.
        """
        labels = self._graph.labels
        if self._table_driven:
            key = (label1_id, label2_id)
            memo = self._compose_memo.get(key)
            if memo is None:
                table = self._enc
                edge1 = (src, dst, labels.lookup(label1_id), table.decode(enc1))
                edge2 = (dst, dst2, labels.lookup(label2_id), table.decode(enc2))
                memo = tuple(
                    labels.intern(label)
                    for label in self.grammar.compose(edge1, edge2, self._ctx)
                )
                self._compose_memo[key] = memo
            return memo
        table = self._enc
        edge1 = (src, dst, labels.lookup(label1_id), table.decode(enc1))
        edge2 = (dst, dst2, labels.lookup(label2_id), table.decode(enc2))
        return tuple(
            labels.intern(label)
            for label in self.grammar.compose(edge1, edge2, self._ctx)
        )

    def _insert(
        self, src, dst, label_id, eid, loaded, parts, spills, dirty,
        frontier, check: bool,
    ) -> None:
        stats = self.stats
        # Find where the edge lives: a loaded partition or a spill buffer.
        cols = None
        owner_index = None
        for index, part in parts.items():
            if part.owns(src):
                owner_index = index
                cols = loaded[index]
                break
        if cols is None:
            target = self._store.partition_of(src)
            slot = (
                spills.setdefault(target.index, {})
                .setdefault(src, {})
                .setdefault((dst, label_id), set())
            )
            if eid in slot:
                return
            if len(slot) >= self.options.witness_cap:
                return
            if check and not self._feasible_id(eid):
                stats.infeasible_dropped += 1
                return
            slot.add(eid)
            stats.new_edges += 1
        else:
            if cols.contains(src, dst, label_id, eid):
                return
            if cols.witness_count(src, dst, label_id) >= self.options.witness_cap:
                return
            if check and not self._feasible_id(eid):
                stats.infeasible_dropped += 1
                return
            cols.insert(src, dst, label_id, eid)
            stats.new_edges += 1
            if self._new_edge_sink is not None:
                self._new_edge_sink(owner_index, src, dst, label_id, eid)
            owner = parts[owner_index]
            dirty.add(owner_index)
            owner.version += 1
            owner.edge_count += 1
            owner.byte_estimate += self._enc.row_bytes(eid)
            if self._rel_src_id(label_id):
                frontier.append((src, dst, label_id, eid))
            # Eager repartitioning (§4.3): split as soon as the loaded
            # partition's edge data exceeds the threshold, not at the end
            # of the iteration.
            if self._store.needs_split(owner):
                self._split_loaded(owner_index, loaded, parts, spills, dirty)
        # Derived edges (e.g. flowsToBar from flowsTo).
        for derived_label_id, rev in self._derived_ids(label_id):
            if rev:
                self._insert(
                    dst, src, derived_label_id, self._reverse_id(eid),
                    loaded, parts, spills, dirty, frontier, check=False,
                )
            else:
                self._insert(
                    src, dst, derived_label_id, eid, loaded, parts, spills,
                    dirty, frontier, check=False,
                )

    # -- encoding mode dispatch -----------------------------------------------

    def _stringify_graph(self, graph: ProgramGraph) -> None:
        """Convert every payload to a string constraint (naive baseline)."""
        from repro.smt.sexpr import serialize_expr

        for src, targets in graph.edges.items():
            for key, encodings in targets.items():
                converted = set()
                for encoding in encodings:
                    constraint = enc_mod.decode_constraint(encoding, self.icfet)
                    converted.add((("S", serialize_expr(constraint)),))
                targets[key] = converted

    def _merge_encodings(self, enc1, enc2):
        if self.options.constraint_mode != "string":
            return enc_mod.merge(enc1, enc2, self.icfet)
        text = f"(and {enc1[0][1]} {enc2[0][1]})"
        if len(text) > self.options.max_string_bytes:
            return None
        return (("S", text),)

    def _reverse_encoding(self, encoding):
        if self.options.constraint_mode != "string":
            return enc_mod.reverse(encoding)
        return encoding  # constraints are direction-independent

    def _decode(self, encoding):
        if self.options.constraint_mode != "string":
            return enc_mod.decode_constraint(encoding, self.icfet)
        from repro.smt.sexpr import parse_expr

        return parse_expr(encoding[0][1])

    def _split_loaded(self, index, loaded, parts, spills, dirty) -> None:
        """Mid-iteration split of a loaded partition that outgrew the
        budget: the left half stays loaded, the right half goes to disk
        (its pairs become re-eligible via the version bump)."""
        # Pending spills may be routed by stale boundaries; flush first.
        self._flush_spills(spills)
        spills.clear()
        self._split_epoch += 1  # invalidates the kernel's round plan
        part, cols = parts[index], loaded[index]
        left, left_cols, right, _right_cols = self._store.split(part, cols)
        if right is None:
            return
        parts[index] = left
        loaded[index] = left_cols
        dirty.discard(index)  # split() persisted the left half already

    def _flush_spills(self, spills) -> None:
        """Write buffered edges for unloaded partitions, re-routing each
        source by the *current* partition boundaries (splits may have
        moved them since the edge was buffered).  Spill buffers hold
        encoding ids; the delta files speak tuples, so decode here."""
        store = self._store
        decode = self._enc.decode
        rerouted: dict = {}
        for chunk in spills.values():
            for src, targets in chunk.items():
                owner = store.partition_of(src)
                bucket = rerouted.setdefault(owner.index, {})
                mine = bucket.setdefault(src, {})
                for key, eids in targets.items():
                    slot = mine.setdefault(key, set())
                    for eid in eids:
                        slot.add(decode(eid))
        for index, chunk in rerouted.items():
            store.append_delta(store.partitions[index], chunk)

    # -- constraint feasibility --------------------------------------------------

    def _feasible(self, encodings: tuple) -> bool:
        """Satisfiability of the conjunction of the encodings' constraints.

        Entry point for grammar callbacks (``ComposeContext.feasible``),
        which pass encoding tuples; interning them here keys the verdict
        memo by hash-consed id.
        """
        if not self.options.path_sensitive:
            return True
        intern = self._enc.intern
        if len(encodings) == 1:
            return self._feasible_id(intern(encodings[0]))
        ids = tuple(sorted(intern(encoding) for encoding in encodings))
        stats = self.stats
        stats.constraint_queries += 1
        if self.options.enable_cache:
            cached = self._feasible_memo.get(ids)
            if cached is not None:
                stats.cache_hits += 1
                self.solver.stats.memo_hits += 1
                return cached
        return self._feasible_solve(ids, tuple(sorted(encodings)))

    def _feasible_id(self, eid: int) -> bool:
        """Single-encoding feasibility, memoised by hash-consed id."""
        if not self.options.path_sensitive:
            return True
        stats = self.stats
        stats.constraint_queries += 1
        if self.options.enable_cache:
            cached = self._feasible_memo.get(eid)
            if cached is not None:
                stats.cache_hits += 1
                self.solver.stats.memo_hits += 1
                return cached
        return self._feasible_solve((eid,), (self._enc.decode(eid),))

    def _feasible_solve(self, ids: tuple, encodings: tuple) -> bool:
        """Memo-miss path: consult the tuple-keyed LRU (shareable across
        processes), then the kernel's pre-solved verdicts and the
        canonical-form memo, then decode and solve."""
        stats = self.stats
        self.solver.stats.memo_misses += 1
        memo_key = ids[0] if len(ids) == 1 else ids
        lru_key = encodings if len(encodings) == 1 else tuple(sorted(encodings))
        enable_cache = self.options.enable_cache
        if enable_cache:
            cached = self.cache.get(lru_key)
            if cached is not None:
                stats.cache_hits += 1
                self._feasible_memo.put(memo_key, cached)
                return cached
            if len(ids) == 1:
                presolved = self._presolved.pop(memo_key, None)
                if presolved is not None:
                    # The batched kernel already decoded and solved this
                    # constraint (charging the decode/solve counters);
                    # only the cache writes are left.
                    self.cache.put(lru_key, presolved)
                    self._feasible_memo.put(memo_key, presolved)
                    return presolved
        start = time.perf_counter()
        with stats.timing("encode_time"):
            constraints = [self._constraint_for(eid) for eid in ids]
            form = self._form_key(ids, constraints) if enable_cache else None
        if form is not None and form in self._form_memo:
            # Alpha-equivalent constraint already solved: edges in
            # different scopes share constraint shapes, so this is the
            # common case once the closure warms up.
            stats.group_hits += 1
            result = self._form_memo[form]
        else:
            gave_up = self.solver.stats.gave_up
            result = self._solve_formula(E.and_(*constraints))
            if form is not None and self.solver.stats.gave_up == gave_up:
                # A gave-up verdict is a conservative SAT, not a theorem
                # about the form; memoising it could flip an
                # alpha-equivalent query's answer.
                stats.feasibility_groups += 1
                self._form_memo[form] = result
        stats.feasibility_time += time.perf_counter() - start
        if enable_cache:
            self.cache.put(lru_key, result)
            self._feasible_memo.put(memo_key, result)
        return result

    def _constraint_for(self, eid: int):
        """Decoded constraint of one encoding id, through the decode memo.

        The decode memo is part of the same memoisation story as the
        solve cache: Table 4's "without caching" runs redo the full
        lookup + solve on every query.
        """
        enable_cache = self.options.enable_cache
        constraint = self._decode_cache.get(eid) if enable_cache else None
        if constraint is None:
            constraint = self._decode(self._enc.decode(eid))
            if enable_cache and len(self._decode_cache) < DECODE_CACHE_CAP:
                self._decode_cache[eid] = constraint
        return constraint

    def _sexpr_for(self, eid: int, constraint) -> str:
        text = self._sexpr_cache.get(eid)
        if text is None:
            from repro.smt.sexpr import serialize_expr

            text = serialize_expr(constraint)
            if len(self._sexpr_cache) < DECODE_CACHE_CAP:
                self._sexpr_cache[eid] = text
        return text

    def _form_key(self, ids: tuple, constraints: list) -> str:
        """Alpha-normalised canonical text of the ids' conjunction.

        Keyed per id for the single-encoding hot path; multi-encoding
        queries join the per-id serialisations and normalise jointly
        (the renaming must be one bijection across the conjunction).
        """
        if len(ids) == 1:
            eid = ids[0]
            key = self._form_key_cache.get(eid)
            if key is None:
                key = kernel_mod.alpha_normalize(
                    self._sexpr_for(eid, constraints[0])
                )
                if len(self._form_key_cache) < DECODE_CACHE_CAP:
                    self._form_key_cache[eid] = key
            return key
        return kernel_mod.alpha_normalize(
            " ".join(
                self._sexpr_for(eid, constraint)
                for eid, constraint in zip(ids, constraints)
            )
        )

    def _solve_formula(self, formula) -> bool:
        """One instrumented solver call (smt timing, trace span, latency
        histogram) -- shared by the lazy path and the kernel's groups."""
        stats = self.stats
        trace = self.trace
        metrics = stats.metrics
        with stats.timing("smt_time"):
            stats.constraints_solved += 1
            solve_start = (
                time.perf_counter()
                if (trace.enabled or metrics is not None)
                else 0.0
            )
            result = self.solver.check(formula) is Result.SAT
            if solve_start:
                if trace.enabled:
                    trace.end("smt-solve", solve_start, cat="smt", sat=result)
                if metrics is not None:
                    metrics.observe(
                        "solve_latency_s", time.perf_counter() - solve_start
                    )
        return result
