"""Columnar in-memory edge store with hash-consed encodings.

The engine used to hold a loaded partition as nested dicts of tuples:
``{src: {(dst, label_id): set[encoding]}}``.  Every partition load
rebuilt millions of small tuples and sets, every compose probe hashed
full interval-sequence tuples, and every spill re-serialised them edge
by edge.  Grapple's C++ engine instead stores edges as flat arrays with
inlined constraint payloads (paper §4.3); this module is the Python
analogue:

* :class:`EncodingTable` hash-conses path encodings (interval-sequence
  tuples) into dense integer ids, so the closure kernel compares and
  hashes machine ints instead of variable-length tuples.  Ids are
  process-local: anything crossing a process boundary is converted back
  to tuples at the edge (see ``engine/parallel.py``).
* :class:`EdgeColumns` keeps a partition as four parallel ``array('q')``
  columns -- ``src``/``dst``/``label``/``enc`` -- sorted by source, plus
  a small dict overlay for edges inserted since the last compaction.
  Source runs are found by bisect on the sorted ``src`` column (the
  CSR-style index is implicit in the sort order), membership probes go
  through a lazy per-source cache, and serialisation is a bulk
  ``tobytes`` of the columns (``serialize.encode_columnar``).

Byte accounting is columnar: 32 bytes per row (four int64 slots plus
set/dict overhead amortised) plus the raw text of any string-constraint
payloads, which dominate row size in ``constraint_mode="string"``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right

from repro.engine import serialize

ROW_BYTES = 32


class EncodingTable:
    """Hash-consing of encoding tuples to dense, process-local int ids."""

    __slots__ = ("_ids", "_tuples", "_extras")

    def __init__(self) -> None:
        self._ids: dict[tuple, int] = {}
        self._tuples: list[tuple] = []
        self._extras: list[int] = []  # string payload bytes per encoding

    def __len__(self) -> int:
        return len(self._tuples)

    def intern(self, encoding: tuple) -> int:
        eid = self._ids.get(encoding)
        if eid is None:
            eid = len(self._tuples)
            self._ids[encoding] = eid
            self._tuples.append(encoding)
            extra = 0
            for elem in encoding:
                if elem[0] == "S":
                    extra += 64 + len(elem[1])
            self._extras.append(extra)
        return eid

    def decode(self, eid: int) -> tuple:
        return self._tuples[eid]

    def row_bytes(self, eid: int) -> int:
        return ROW_BYTES + self._extras[eid]

    def has_extras(self) -> bool:
        """True when any interned encoding carries string payload bytes."""
        return any(self._extras)


class EdgeColumns:
    """One partition's edges: sorted base columns + an insert overlay.

    The base columns are immutable between :meth:`compact` calls and
    sorted by ``(src, dst, label)`` (the encoding order within a group
    is unspecified).  Inserts land in ``extra``, a
    ``{src: {(dst, label): set[enc_id]}}`` dict that mirrors the old
    representation but holds interned ids; :meth:`compact` merges it
    into the base.  All encodings are ids into the shared ``table``.
    """

    __slots__ = (
        "table", "src", "dst", "label", "enc",
        "extra", "_extra_rows", "_probe", "_bytes", "_kcache",
    )

    def __init__(self, table: EncodingTable) -> None:
        self.table = table
        self.src = array("q")
        self.dst = array("q")
        self.label = array("q")
        self.enc = array("q")
        self.extra: dict[int, dict[tuple, set[int]]] = {}
        self._extra_rows = 0
        self._probe: dict[int, dict[tuple, set[int]]] = {}
        self._bytes = 0
        # Batched-kernel views of the base columns (engine/kernel.py);
        # validated against the ``src`` array's identity, so compaction
        # and splits -- which replace the arrays -- invalidate it.
        self._kcache = None

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dict(cls, edges: dict, table: EncodingTable) -> "EdgeColumns":
        """Build from the tuple-keyed dict shape (sorted, deterministic)."""
        cols = cls(table)
        src, dst, label, enc = cols.src, cols.dst, cols.label, cols.enc
        intern = table.intern
        total = 0
        for s in sorted(edges):
            targets = edges[s]
            for (d, l) in sorted(targets):
                for encoding in sorted(targets[(d, l)]):
                    eid = intern(encoding)
                    src.append(s)
                    dst.append(d)
                    label.append(l)
                    enc.append(eid)
                    total += table.row_bytes(eid)
        cols._bytes = total
        return cols

    @classmethod
    def from_file(
        cls, parsed: serialize.ColumnarFile, table: EncodingTable
    ) -> "EdgeColumns":
        """Adopt a parsed columnar file, remapping its file-local encoding
        ids into ``table``.  The only per-row work is one C-speed ``map``
        over the ``enc`` column; the other three columns are adopted
        as-is (already src-sorted on disk)."""
        remap = [table.intern(t) for t in parsed.encodings]
        cols = cls(table)
        cols.src = parsed.src
        cols.dst = parsed.dst
        cols.label = parsed.label
        cols.enc = array("q", map(remap.__getitem__, parsed.enc))
        n = len(cols.src)
        if table.has_extras():
            cols._bytes = sum(map(table.row_bytes, cols.enc))
        else:
            cols._bytes = ROW_BYTES * n
        return cols

    # -- probes and mutation --------------------------------------------------

    def _src_run(self, s: int) -> tuple[int, int]:
        lo = bisect_left(self.src, s)
        hi = bisect_right(self.src, s, lo)
        return lo, hi

    def _probe_src(self, s: int) -> dict:
        probe = self._probe.get(s)
        if probe is None:
            lo, hi = self._src_run(s)
            probe = {}
            dst, label, enc = self.dst, self.label, self.enc
            for i in range(lo, hi):
                key = (dst[i], label[i])
                slot = probe.get(key)
                if slot is None:
                    slot = probe[key] = set()
                slot.add(enc[i])
            self._probe[s] = probe
        return probe

    def insert(self, s: int, d: int, l: int, eid: int) -> bool:
        """Add one edge; returns False when it is already present."""
        key = (d, l)
        base = self._probe_src(s).get(key)
        if base is not None and eid in base:
            return False
        targets = self.extra.get(s)
        if targets is None:
            targets = self.extra[s] = {}
            slot = targets[key] = set()
        else:
            slot = targets.get(key)
            if slot is None:
                slot = targets[key] = set()
            elif eid in slot:
                return False
        slot.add(eid)
        self._extra_rows += 1
        self._bytes += self.table.row_bytes(eid)
        return True

    def contains(self, s: int, d: int, l: int, eid: int) -> bool:
        key = (d, l)
        base = self._probe_src(s).get(key)
        if base is not None and eid in base:
            return True
        targets = self.extra.get(s)
        if targets is None:
            return False
        slot = targets.get(key)
        return slot is not None and eid in slot

    def witness_count(self, s: int, d: int, l: int) -> int:
        key = (d, l)
        base = self._probe_src(s).get(key)
        count = len(base) if base is not None else 0
        targets = self.extra.get(s)
        if targets is not None:
            slot = targets.get(key)
            if slot is not None:
                count += len(slot)
        return count

    def out_rows(self, s: int) -> list:
        """All ``(dst, label, enc_id)`` rows with source ``s`` (a fresh
        list -- callers may treat it as a snapshot)."""
        lo, hi = self._src_run(s)
        rows = list(zip(self.dst[lo:hi], self.label[lo:hi], self.enc[lo:hi]))
        targets = self.extra.get(s)
        if targets is not None:
            append = rows.append
            for (d, l), eids in targets.items():
                for eid in eids:
                    append((d, l, eid))
        return rows

    # -- whole-store views ----------------------------------------------------

    @property
    def edge_count(self) -> int:
        return len(self.src) + self._extra_rows

    def columnar_bytes(self) -> int:
        return self._bytes

    def iter_rows(self):
        """Yield every ``(src, dst, label, enc_id)`` row (base + overlay)."""
        yield from zip(self.src, self.dst, self.label, self.enc)
        for s, targets in self.extra.items():
            for (d, l), eids in targets.items():
                for eid in eids:
                    yield s, d, l, eid

    def iter_sources(self):
        """Distinct source vertices present (unordered)."""
        seen = set(self.extra)
        src = self.src
        i, n = 0, len(src)
        while i < n:
            s = src[i]
            seen.add(s)
            i = bisect_right(src, s, i)
        return seen

    def to_dict(self) -> dict:
        """Back to the tuple-keyed dict shape (cross-process / legacy)."""
        decode = self.table.decode
        edges: dict = {}
        for s, d, l, eid in zip(self.src, self.dst, self.label, self.enc):
            targets = edges.get(s)
            if targets is None:
                targets = edges[s] = {}
            key = (d, l)
            slot = targets.get(key)
            if slot is None:
                slot = targets[key] = set()
            slot.add(decode(eid))
        for s, targets in self.extra.items():
            mine = edges.setdefault(s, {})
            for key, eids in targets.items():
                slot = mine.setdefault(key, set())
                for eid in eids:
                    slot.add(decode(eid))
        return edges

    def merge_dict(self, chunk: dict, collect: list | None = None) -> int:
        """Union a tuple-keyed dict chunk; returns the number of new rows.
        With ``collect``, appends new ``(src, dst, label_id, encoding)``
        tuples (for the parallel coordinator's delta logs)."""
        intern = self.table.intern
        added = 0
        for s, targets in chunk.items():
            for (d, l), encodings in targets.items():
                for encoding in encodings:
                    if self.insert(s, d, l, intern(encoding)):
                        added += 1
                        if collect is not None:
                            collect.append((s, d, l, encoding))
        return added

    # -- compaction / splitting / serialisation -------------------------------

    def compact(self) -> None:
        """Merge the overlay into the sorted base columns."""
        if not self._extra_rows:
            return
        over = []
        for s, targets in self.extra.items():
            for (d, l), eids in targets.items():
                for eid in eids:
                    over.append((s, d, l, eid))
        over.sort()
        src, dst, label, enc = self.src, self.dst, self.label, self.enc
        nsrc = array("q")
        ndst = array("q")
        nlabel = array("q")
        nenc = array("q")
        i, n = 0, len(src)
        for row in over:
            s, d, l, eid = row
            while i < n and (src[i], dst[i], label[i], enc[i]) <= row:
                nsrc.append(src[i])
                ndst.append(dst[i])
                nlabel.append(label[i])
                nenc.append(enc[i])
                i += 1
            nsrc.append(s)
            ndst.append(d)
            nlabel.append(l)
            nenc.append(eid)
        nsrc.extend(src[i:])
        ndst.extend(dst[i:])
        nlabel.extend(label[i:])
        nenc.extend(enc[i:])
        self.src, self.dst, self.label, self.enc = nsrc, ndst, nlabel, nenc
        self.extra = {}
        self._extra_rows = 0
        self._probe = {}
        self._kcache = None

    def split_at(self, mid: int) -> tuple["EdgeColumns", "EdgeColumns"]:
        """Split into (sources < mid, sources >= mid) after compacting."""
        self.compact()
        cut = bisect_left(self.src, mid)
        left = EdgeColumns(self.table)
        right = EdgeColumns(self.table)
        left.src, right.src = self.src[:cut], self.src[cut:]
        left.dst, right.dst = self.dst[:cut], self.dst[cut:]
        left.label, right.label = self.label[:cut], self.label[cut:]
        left.enc, right.enc = self.enc[:cut], self.enc[cut:]
        if self.table.has_extras():
            left._bytes = sum(map(self.table.row_bytes, left.enc))
        else:
            left._bytes = ROW_BYTES * len(left.src)
        right._bytes = self._bytes - left._bytes
        return left, right

    def src_weights(self) -> dict[int, int]:
        """Per-source byte weights (for choosing a split boundary)."""
        weights: dict[int, int] = {}
        row_bytes = self.table.row_bytes
        for s, eid in zip(self.src, self.enc):
            weights[s] = weights.get(s, 0) + row_bytes(eid)
        for s, targets in self.extra.items():
            w = weights.get(s, 0)
            for eids in targets.values():
                for eid in eids:
                    w += row_bytes(eid)
            weights[s] = w
        return weights

    def encode(self) -> bytes:
        """Compact and serialise to the v2 columnar wire format."""
        self.compact()
        decode = self.table.decode
        local: dict[int, int] = {}
        encodings: list[tuple] = []
        enc_local = array("q")
        for eid in self.enc:
            lid = local.get(eid)
            if lid is None:
                lid = len(encodings)
                local[eid] = lid
                encodings.append(decode(eid))
            enc_local.append(lid)
        return serialize.encode_columnar(
            self.src, self.dst, self.label, enc_local, encodings
        )


class SharedEdgeColumns(EdgeColumns):
    """Partition columns backed by a coordinator-published shm segment.

    The ``src``/``dst``/``label`` base columns are zero-copy
    ``memoryview`` casts over the attached segment; only ``enc`` is a
    private ``array('q')`` because coordinator encoding ids must be
    remapped to the worker's local :class:`EncodingTable` ids.  Every
    read path (bisect runs, probes, kernel batches) works on the views
    unchanged; mutation goes through the ``extra`` overlay as usual,
    and :meth:`~EdgeColumns.compact` replaces the views with private
    arrays, at which point the instance quietly stops being shared.

    ``segment`` keeps the mapping alive exactly as long as the columns;
    the attach cache (``engine/shm.py``) closes retired segments only
    once their views are gone.
    """

    __slots__ = ("segment",)

    @classmethod
    def attach(cls, segment, header_size: int, rows: int, remap,
               table: EncodingTable) -> "SharedEdgeColumns":
        cols = cls(table)
        cols.segment = segment
        width = rows * 8
        view = memoryview(segment.buf)
        offset = header_size
        cols.src = view[offset:offset + width].cast("q")
        offset += width
        cols.dst = view[offset:offset + width].cast("q")
        offset += width
        cols.label = view[offset:offset + width].cast("q")
        offset += width
        coord_enc = view[offset:offset + width].cast("q")
        cols.enc = array("q", map(remap.__getitem__, coord_enc))
        coord_enc.release()
        if table.has_extras():
            cols._bytes = sum(map(table.row_bytes, cols.enc))
        else:
            cols._bytes = ROW_BYTES * rows
        return cols
