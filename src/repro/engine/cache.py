"""LRU constraint-memoisation cache (paper §4.3, Table 4).

Edges in the same program scope share path constraints, so memoising the
result of constraint solving -- keyed by the encoded path -- converts most
feasibility checks into hash-map lookups.  The implementation keeps an
``OrderedDict`` of encoding keys, moving hits to the back and evicting from
the front when capacity is exceeded ("least used keys are moved away").
"""

from __future__ import annotations

from collections import OrderedDict


class LRUCache:
    """A bounded least-recently-used map."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key):
        """The cached value, or None.  Counts hit/miss statistics."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
