"""LRU constraint-memoisation cache (paper §4.3, Table 4).

Edges in the same program scope share path constraints, so memoising the
result of constraint solving -- keyed by the encoded path -- converts most
feasibility checks into hash-map lookups.  The implementation keeps an
``OrderedDict`` of encoding keys, moving hits to the back and evicting from
the front when capacity is exceeded ("least used keys are moved away").
"""

from __future__ import annotations

from collections import OrderedDict


class LRUCache:
    """A bounded least-recently-used map."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        """The cached value, or None.  Counts hit/miss statistics."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def peek(self, key):
        """The cached value, or None -- without recency promotion or
        hit/miss accounting.  The batched kernel uses this to predict
        whether a future query will miss, which must not disturb the
        state that query will observe."""
        return self._data.get(key)

    def put(self, key, value):
        """Insert/refresh an entry.  Returns the evicted ``(key, value)``
        pair when capacity was exceeded, else None -- callers owning
        resources behind entries (e.g. on-disk artifacts) use it to
        release them."""
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self.evictions += 1
            return self._data.popitem(last=False)
        return None

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0


class FeasibilityMemo:
    """Verdict memo keyed by hash-consed encoding id.

    Sits in front of the tuple-keyed :class:`LRUCache` and the SMT
    solver: once an encoding (or sorted id combination) has a verdict,
    the next query is a single int-keyed dict probe -- no tuple hashing,
    no LRU reordering.  Ids are process-local, so the memo never crosses
    a process boundary (the LRU's tuple entries do instead).

    The memo is insertion-bounded rather than LRU: verdicts are tiny
    (int -> bool) and the id space is already bounded by the encoding
    table, so eviction machinery would cost more than it saves.
    """

    __slots__ = ("capacity", "_data")

    def __init__(self, capacity: int = 1_000_000):
        self.capacity = capacity
        self._data: dict = {}

    def get(self, key):
        return self._data.get(key)

    def put(self, key, value) -> None:
        if len(self._data) < self.capacity:
            self._data[key] = value

    def __len__(self) -> int:
        return len(self._data)
