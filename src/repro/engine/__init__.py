"""Grapple's single-machine, disk-based graph engine (paper §4.3).

The engine performs edge-pair-centric dynamic transitive closure over a
partitioned, on-disk program graph:

1. *preprocessing* partitions the input graph by source-vertex intervals,
2. each iteration loads two partitions, joins consecutive edge pairs under
   the grammar and the path-constraint satisfiability check, and flushes
   new edges to the partitions owning their source vertices,
3. oversized partitions are eagerly repartitioned so that any two
   partitions fit in the configured memory budget.

Constraint solving results are memoised in an LRU cache (§4.3), and all
work is accounted into the four cost components of the paper's Figure 9:
I/O, constraint encoding/decoding, SMT solving, and edge computation.
"""

from repro.engine.computation import GraphEngine, EngineOptions, EngineResult
from repro.engine.cache import LRUCache
from repro.engine.stats import EngineStats

__all__ = [
    "GraphEngine",
    "EngineOptions",
    "EngineResult",
    "LRUCache",
    "EngineStats",
]
