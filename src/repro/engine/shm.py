"""Shared-memory zero-copy partition columns for the parallel engine.

The fork-pool data plane used to ship every partition a worker touched
through the tuple protocol: the coordinator pickled nested dicts into
the task, the worker rebuilt columns from them, and new edges came back
the same way.  Grapple's C++ engine instead gives every worker a view
of the same partitioned edge arrays (paper §5); this module is the
Python analogue on one host:

* the coordinator (:class:`ShmHub`) publishes each partition's four
  sorted ``array('q')`` columns into a named
  ``multiprocessing.shared_memory`` segment, generation-stamped so a
  republished partition never aliases a stale mapping;
* the interned :class:`~repro.engine.columnar.EncodingTable` is shared
  through one append-only segment of self-describing entries, so the
  ``enc`` column can carry *coordinator* ids and workers remap them to
  local ids incrementally (:class:`ShmTableReader`) instead of decoding
  every row's tuple payload;
* workers (:class:`ShmAttachCache`) attach segments and wrap them in
  zero-copy ``memoryview`` columns
  (:class:`~repro.engine.columnar.SharedEdgeColumns`); only *new*
  edges return over the wire, as compact columnar slices.

Lifetime rules (satellite: guaranteed cleanup):

* the plane only engages on Linux with ``/dev/shm`` mounted
  (:func:`available`): the last-resort reclaim below works by listing
  that tmpfs, so platforms whose named segments have no filesystem
  presence stay on the file data plane;
* every segment name starts with ``grpl_<tag>_`` where ``tag`` hashes
  the phase workdir, so a fresh coordinator can scrub leftovers from a
  crashed predecessor (:func:`scrub`);
* the hub unlinks every live segment in a ``finally`` and via
  ``atexit`` (pid-guarded: forked workers inherit the handler but must
  never unlink the coordinator's segments);
* ``multiprocessing.resource_tracker`` registration happens on create
  *and* attach with a fork-shared tracker process, so even a SIGKILLed
  coordinator leaves the tracker behind to unlink its segments.

Segment layouts (all little-endian, offsets in bytes):

``partition`` -- header ``<8sQQQQ``: magic ``GRPLSHM1``, generation,
partition version, row count, encoding watermark (how many coordinator
encodings existed at publish time, i.e. how far the reader must have
parsed the table stream before remapping ``enc``); then the four raw
int64 columns ``src``/``dst``/``label``/``enc`` back to back.  ``enc``
holds *coordinator-global* encoding ids, making the publish a straight
``memcpy`` of the compacted columns.

``table`` -- header ``<8sQQQ``: magic ``GRPLENC1``, generation,
encoding count, payload length; then an append-only entry stream.
Entry ``0x01 <varint len> <utf-8>`` defines the next string id; entry
``0x02 <encoding>`` (the ``serialize`` wire codec, interval functions
as string ids) defines the next encoding id.  The payload bytes of an
entry are written *before* the header's count/length advance, so a
reader never parses a half-written entry.  Growth copies the stream
prefix-identically into a bigger segment, so a reader's parse offset
survives generations.
"""

from __future__ import annotations

import atexit
import hashlib
import os
import struct
import sys

from repro.engine import serialize
from repro.engine.columnar import SharedEdgeColumns
from repro.engine.serialize import CorruptPartition

try:  # pragma: no cover - absent on some minimal builds
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

PART_MAGIC = b"GRPLSHM1"
TABLE_MAGIC = b"GRPLENC1"
PART_HEADER = struct.Struct("<8sQQQQ")
TABLE_HEADER = struct.Struct("<8sQQQ")
ENTRY_STRING = 0x01
ENTRY_ENCODING = 0x02
NAME_PREFIX = "grpl_"
TABLE_MIN_BYTES = 1 << 14
#: Where Linux backs POSIX named shared memory.  Crash hygiene (scrub
#: of a dead predecessor's leftovers) and the shm_unlink fault site
#: both work by filesystem name, so the plane is gated on this
#: directory existing -- see :func:`available`.
SHM_DIR = "/dev/shm"


class ShmAttachLost(CorruptPartition):
    """A worker could not attach (or validate) a published segment.

    Subclasses :class:`CorruptPartition` so the coordinator's existing
    retry/recover machinery handles it: the partitions are
    re-materialised to disk, republished, and the pair retried.
    """


def available() -> bool:
    """True when named shared memory is usable on this platform.

    Restricted to Linux with :data:`SHM_DIR` mounted: the cleanup
    guarantees include scrubbing leftovers from a predecessor that lost
    both its coordinator *and* its resource tracker to SIGKILL, and
    :func:`scrub` can only find those by listing the tmpfs that backs
    the segments.  On platforms where named segments have no
    filesystem presence (e.g. macOS) that last-resort reclaim is
    impossible, so the engine keeps its file data plane there.
    """
    return (
        _shared_memory is not None
        and sys.platform == "linux"
        and os.path.isdir(SHM_DIR)
    )


def workdir_tag(workdir: str) -> str:
    """Stable short tag for segment names, derived from the workdir."""
    digest = hashlib.sha1(os.path.abspath(workdir).encode("utf-8"))
    return digest.hexdigest()[:10]


def scrub(tag: str) -> list[str]:
    """Unlink leftover segments for ``tag`` from a crashed run."""
    removed = []
    prefix = NAME_PREFIX + tag + "_"
    try:
        names = os.listdir(SHM_DIR)
    except OSError:
        return removed
    for name in names:
        if name.startswith(prefix):
            try:
                os.unlink(os.path.join(SHM_DIR, name))
            except OSError:
                continue
            removed.append(name)
    return removed


class _Segment(_shared_memory.SharedMemory if _shared_memory else object):
    """SharedMemory whose teardown tolerates live buffer exports.

    ``SharedMemory.close`` raises ``BufferError`` while memoryviews
    over the mapping are alive; during interpreter shutdown or cache
    eviction that ordering is not under our control, so :meth:`try_close`
    reports failure instead of raising and ``__del__`` never warns.
    """

    def try_close(self) -> bool:
        try:
            super().close()
        except BufferError:
            return False
        except OSError:
            pass
        return True

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            super().close()
        except Exception:
            pass


class ShmHub:
    """Coordinator side: publish partitions + the encoding table."""

    def __init__(self, tag: str, stats=None):
        self.tag = tag
        self.stats = stats
        self._parts: dict[int, tuple] = {}  # index -> (ref_dict, segment)
        self._table_seg: _Segment | None = None
        self._table_ref: dict | None = None
        self._table_cap = 0
        self._strings: dict[str, int] = {}
        self._synced = 0       # encodings appended so far
        self._length = 0       # payload bytes appended so far
        self._gen = 0          # generation stamp, shared by all segments
        self._pid = os.getpid()
        self._closed = False
        self.broken = False
        scrub(tag)
        atexit.register(self.close)

    # -- encoding table -------------------------------------------------------

    def _append_entries(self, out: bytearray, tuples) -> None:
        strings = self._strings
        for encoding in tuples:
            body = bytearray()
            fresh: list[str] = []

            def intern(name: str) -> int:
                idx = strings.get(name)
                if idx is None:
                    idx = len(strings)
                    strings[name] = idx
                    fresh.append(name)
                return idx

            serialize._append_encoding(body, encoding, intern)
            for name in fresh:
                raw = name.encode("utf-8")
                out.append(ENTRY_STRING)
                serialize._append_varint(out, len(raw))
                out += raw
            out.append(ENTRY_ENCODING)
            out += body

    def sync_table(self, table) -> dict:
        """Publish any encodings interned since the last sync."""
        count = len(table)
        if self._table_seg is not None and count == self._synced:
            return self._table_ref
        payload = bytearray()
        self._append_entries(payload, table._tuples[self._synced:])
        need = TABLE_HEADER.size + self._length + len(payload)
        seg = self._table_seg
        if seg is None or need > self._table_cap:
            cap = max(TABLE_MIN_BYTES, 2 * need)
            self._gen += 1
            name = f"{NAME_PREFIX}{self.tag}_enc_g{self._gen}"
            fresh = _Segment(name=name, create=True, size=cap)
            try:
                if seg is not None:  # prefix-identical copy keeps readers valid
                    end = TABLE_HEADER.size + self._length
                    fresh.buf[TABLE_HEADER.size:end] = \
                        seg.buf[TABLE_HEADER.size:end]
            except OSError:
                # ``fresh`` is not yet self._table_seg: unlink it before
                # surfacing the failure or close() never reclaims it.
                self._unlink(fresh)
                raise
            if seg is not None:
                self._unlink(seg)
            seg = fresh
            self._table_seg = seg
            self._table_cap = cap
        start = TABLE_HEADER.size + self._length
        seg.buf[start:start + len(payload)] = payload
        self._length += len(payload)
        self._synced = count
        # Header written after the payload: readers racing the append
        # see the previous count and a fully-written prefix.
        TABLE_HEADER.pack_into(seg.buf, 0, TABLE_MAGIC, self._gen,
                               count, self._length)
        self._table_ref = {
            "name": seg.name, "generation": self._gen,
            "count": count, "nbytes": seg.size,
        }
        return self._table_ref

    @property
    def table_ref(self) -> dict | None:
        return self._table_ref

    # -- partitions -----------------------------------------------------------

    def publish(self, part, table, loader) -> dict | None:
        """Publish a partition's compacted columns; None on failure.

        ``loader()`` supplies the current columns and is only invoked
        on a cache miss: republishing the same partition version
        returns the existing segment, a newer version retires the old
        generation (unlinked; attached workers keep their mapping).
        """
        if self._closed or self.broken:
            return None
        entry = self._parts.get(part.index)
        if entry is not None and entry[0]["version"] == part.version:
            return entry[0]
        seg = None
        try:
            cols = loader()
            cols.compact()
            self.sync_table(table)
            rows = len(cols.src)
            width = rows * 8
            nbytes = PART_HEADER.size + 4 * width
            self._gen += 1
            name = f"{NAME_PREFIX}{self.tag}_p{part.index}g{self._gen}"
            seg = _Segment(name=name, create=True, size=nbytes)
            offset = PART_HEADER.size
            for column in (cols.src, cols.dst, cols.label, cols.enc):
                seg.buf[offset:offset + width] = memoryview(column).cast("B")
                offset += width
            PART_HEADER.pack_into(seg.buf, 0, PART_MAGIC, self._gen,
                                  part.version, rows, self._synced)
        except OSError:
            # e.g. /dev/shm full: fall back to files.  A segment created
            # before the failure is not yet in self._parts, so close()
            # would never reclaim it -- unlink it here.
            if seg is not None:
                self._unlink(seg)
            self.broken = True
            return None
        ref = {
            "index": part.index, "name": name, "generation": self._gen,
            "version": part.version, "rows": rows, "nbytes": seg.size,
        }
        if entry is not None:
            self._unlink(entry[1])
        self._parts[part.index] = (ref, seg)
        if self.stats is not None:
            self.stats.shm_publishes += 1
        return ref

    def invalidate(self, index: int) -> None:
        """Retire a partition's segment (e.g. after a split)."""
        entry = self._parts.pop(index, None)
        if entry is not None:
            self._unlink(entry[1])

    def mapped_bytes(self) -> int:
        """Total bytes of live published segments (partition columns plus
        the shared encoding-table stream) -- the hub's /dev/shm footprint,
        polled by the resource sampler."""
        total = sum(seg.size for _, seg in self._parts.values())
        if self._table_seg is not None:
            total += self._table_seg.size
        return total

    @staticmethod
    def _unlink(seg) -> None:
        try:
            seg.unlink()
        except OSError:
            pass
        seg.try_close()

    def close(self) -> None:
        """Unlink every live segment (idempotent, coordinator-only)."""
        if self._closed or os.getpid() != self._pid:
            return
        self._closed = True
        for _, seg in self._parts.values():
            self._unlink(seg)
        self._parts.clear()
        if self._table_seg is not None:
            self._unlink(self._table_seg)
            self._table_seg = None
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass


class ShmTableReader:
    """Worker side: incremental coordinator-id -> local-id remap."""

    def __init__(self, table):
        self.table = table           # the worker's local EncodingTable
        self._seg: _Segment | None = None
        self._strings: list[str] = []
        self.remap = []              # coordinator eid -> local eid
        self._offset = 0             # payload bytes parsed so far

    def sync(self, ref: dict, watermark: int) -> bool:
        """Parse table entries until ``watermark`` encodings are mapped."""
        if len(self.remap) >= watermark:
            return True
        seg = self._seg
        if seg is not None:
            magic, _gen, count, length = TABLE_HEADER.unpack_from(seg.buf, 0)
            if magic != TABLE_MAGIC or count < watermark:
                seg.try_close()
                seg = self._seg = None
        if seg is None:
            if ref is None:
                return False
            try:
                seg = _Segment(name=ref["name"])
            except (OSError, ValueError):
                return False
            magic, _gen, count, length = TABLE_HEADER.unpack_from(seg.buf, 0)
            if magic != TABLE_MAGIC or count < watermark:
                seg.try_close()
                return False
            self._seg = seg
        start = TABLE_HEADER.size + self._offset
        data = bytes(seg.buf[start:TABLE_HEADER.size + length])
        pos = 0
        strings = self._strings
        remap = self.remap
        intern = self.table.intern
        try:
            while len(remap) < count and pos < len(data):
                tag = data[pos]
                pos += 1
                if tag == ENTRY_STRING:
                    n, pos = serialize.read_varint(data, pos)
                    strings.append(data[pos:pos + n].decode("utf-8"))
                    pos += n
                elif tag == ENTRY_ENCODING:
                    encoding, pos = serialize._read_encoding(data, pos, strings)
                    remap.append(intern(encoding))
                else:
                    return False
        except (CorruptPartition, IndexError, UnicodeDecodeError):
            return False
        self._offset += pos
        return len(remap) >= watermark

    def close(self) -> None:
        if self._seg is not None:
            self._seg.try_close()
            self._seg = None


class ShmAttachCache:
    """Worker side: attach partition segments, cache by generation."""

    def __init__(self, table, stats=None, faults=None):
        self.reader = ShmTableReader(table)
        self.table = table
        self.stats = stats
        self.faults = faults
        self._cols: dict[int, tuple] = {}   # index -> (ref, cols)
        self._retired: list = []            # segments awaiting close

    def sweep(self) -> None:
        """Close retired segments whose views have been dropped."""
        self._retired = [seg for seg in self._retired if not seg.try_close()]

    def attach(self, ref: dict, table_ref: dict | None):
        """Return :class:`SharedEdgeColumns` for ``ref``.

        Raises :class:`ShmAttachLost` when the segment is gone or
        stale -- the caller must *not* fall back to the partition file
        (the coordinator skips materialising published partitions, so
        the file may be behind the shared snapshot).
        """
        index = ref["index"]
        entry = self._cols.get(index)
        if entry is not None:
            if entry[0]["name"] == ref["name"] \
                    and entry[0]["version"] == ref["version"]:
                return entry[1]
            self._retire(index)
        if self.faults is not None:
            spec = self.faults.fire("attach")
            if spec is not None and spec.mode == "shm_unlink":
                try:  # simulate the coordinator dying mid-republish
                    os.unlink(os.path.join(SHM_DIR, ref["name"]))
                except OSError:
                    pass
        try:
            seg = _Segment(name=ref["name"])
        except (OSError, ValueError) as exc:
            raise ShmAttachLost(
                f"shared segment {ref['name']} unavailable: {exc}"
            ) from None
        magic, gen, version, rows, watermark = PART_HEADER.unpack_from(seg.buf, 0)
        if magic != PART_MAGIC or gen != ref["generation"] \
                or version != ref["version"] or rows != ref["rows"]:
            seg.try_close()
            raise ShmAttachLost(
                f"shared segment {ref['name']} stale "
                f"(v{version} g{gen}, want v{ref['version']} g{ref['generation']})"
            )
        if not self.reader.sync(table_ref, watermark):
            seg.try_close()
            raise ShmAttachLost(
                f"encoding table behind watermark {watermark} "
                f"for segment {ref['name']}"
            )
        cols = SharedEdgeColumns.attach(
            seg, PART_HEADER.size, rows, self.reader.remap, self.table,
        )
        self._cols[index] = (ref, cols)
        if self.stats is not None:
            self.stats.shm_attaches += 1
            self.stats.shm_bytes_mapped += seg.size
        return cols

    def _retire(self, index: int) -> None:
        # The evicted columns may still be cached by version elsewhere
        # (``_WorkerStore``), so never mutate them -- just queue the
        # segment; :meth:`sweep` closes it once the views are gone.
        entry = self._cols.pop(index, None)
        if entry is not None:
            seg = entry[1].segment
            if seg is not None and not seg.try_close():
                self._retired.append(seg)

    def close(self) -> None:
        for index in list(self._cols):
            self._retire(index)
        self.sweep()
        self.reader.close()
