"""Checkpoint manifests: resumable closure runs (DESIGN.md §11).

After every completed wave (serial: every processed pair) the
coordinator flushes the store and writes a small JSON manifest beside
the partition files.  The manifest is everything the closure needs to
restart from that point -- partition descriptors and versions, the
scheduler's processed-pair frontier, a scalar snapshot of
:class:`~repro.engine.stats.EngineStats`, and the full label table -- it
is RNG-free by design: the engine derives everything else (encoding
ids, caches, join indexes) deterministically from the partition files.

``--resume`` re-runs the front end (deterministic), then validates the
manifest before adopting it:

* a **config digest** over the correctness-relevant engine options must
  match -- resuming a run under different closure semantics would
  silently compute a different fixpoint;
* the **label table** is re-interned in manifest order and every id must
  land where the original run put it (edge rows reference label ids);
* a sampled **vertex digest** must match (vertex ids are positional).

Partition descriptors record each delta file's size at checkpoint time.
Frames appended after the manifest was written (but before the crash)
would otherwise be invisible to the restored scheduler frontier, so a
size mismatch bumps the partition's version -- every pair touching it
becomes eligible again and the extra edges are folded and reprocessed.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.engine import serialize
from repro.engine.partition import Partition

#: Manifest file name inside the engine's (phase) workdir.
MANIFEST = "checkpoint.json"
FORMAT = 1

#: EngineOptions fields that change *what* the closure computes (not how
#: fast); a resume under a different value of any of these is refused.
CONFIG_FIELDS = (
    "memory_budget",
    "min_partitions",
    "parallel_min_partitions",
    "witness_cap",
    "path_sensitive",
    "constraint_mode",
    "max_string_bytes",
)


class CheckpointMismatch(RuntimeError):
    """A manifest does not match the run trying to resume from it."""


def config_digest(options) -> str:
    payload = {name: getattr(options, name) for name in CONFIG_FIELDS}
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def vertex_digest(vertices) -> str:
    """Sampled digest of the vertex table (ids are positional, so a
    handful of spot checks catches any renumbering)."""
    n = len(vertices)
    h = hashlib.sha256(str(n).encode())
    step = max(1, n // 64)
    for i in range(0, n, step):
        h.update(b"\x00")
        h.update(repr(vertices.lookup(i)).encode())
    return h.hexdigest()


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def _untuple(value):
    if isinstance(value, list):
        return tuple(_untuple(v) for v in value)
    return value


def manifest_path(workdir: str) -> str:
    return os.path.join(workdir, MANIFEST)


def write_manifest(workdir: str, *, phase: str, options, store,
                   last_seen: dict, stats, graph,
                   complete: bool, steal_frontier: dict | None = None) -> str:
    """Atomically write the checkpoint manifest for one engine run."""
    parts = []
    for part in store.partitions:
        delta_size = None
        try:
            delta_size = os.path.getsize(part.delta_path)
        except OSError:
            pass
        parts.append({
            "index": part.index,
            "lo": part.lo,
            "hi": part.hi,
            "path": os.path.basename(part.path),
            "delta_path": os.path.basename(part.delta_path),
            "edge_count": part.edge_count,
            "byte_estimate": part.byte_estimate,
            "version": part.version,
            "delta_size": delta_size,
        })
    scalars = {}
    for name, value in stats.__dict__.items():
        if name.startswith("_"):
            continue
        if isinstance(value, (int, float, bool)):
            scalars[name] = value
    labels = graph.labels
    manifest = {
        "format": FORMAT,
        "phase": phase,
        "complete": bool(complete),
        "config": config_digest(options),
        "vertices": vertex_digest(graph.vertices),
        "next_file": store._next_file,
        "partitions": parts,
        "last_seen": [
            [pair[0], pair[1], seen[0], seen[1]]
            for pair, seen in sorted(last_seen.items())
        ],
        "stats": scalars,
        "labels": [_jsonable(label) for _i, label in labels.items()],
    }
    if steal_frontier is not None:
        # Informational: waves end only once every dispatched (stolen
        # included) pair is absorbed, so the frontier records how far
        # the steal schedule had run at this quiescent point; resume
        # correctness rests on last_seen alone.
        manifest["steal_frontier"] = steal_frontier
    path = manifest_path(workdir)
    data = json.dumps(manifest, indent=1).encode()
    serialize.atomic_write_bytes(path, data)
    return manifest


def _prunable(name: str) -> bool:
    """Whether a workdir entry is engine-owned garbage when unreferenced:
    partition/delta files (with atomic-write temps) and manifest temps.
    Anything else in the directory is not ours to delete."""
    base = name[:-4] if name.endswith(".tmp") else name
    if base == MANIFEST:
        return name != MANIFEST  # only the temp, never the manifest
    return (
        (base.startswith("part_") or base.startswith("delta_"))
        and base.endswith(".bin")
    )


def prune_workdir(workdir: str, manifest: dict) -> int:
    """Delete superseded partition/delta files the manifest no longer
    references (folded delta logs, torn-write temps, files orphaned by
    repartitioning).  Returns the number of files removed.

    Crash-safe by construction: only files *outside* the manifest's
    reference set are candidates, and the manifest itself is never
    touched, so a kill after any prefix of the deletions leaves the
    checkpointed state fully resumable -- the survivors are exactly the
    referenced files plus some garbage the next prune removes.
    """
    referenced = {MANIFEST}
    for desc in manifest.get("partitions", ()):
        referenced.add(desc["path"])
        referenced.add(desc["delta_path"])
    try:
        names = os.listdir(workdir)
    except OSError:
        return 0
    pruned = 0
    for name in sorted(names):
        if name in referenced or not _prunable(name):
            continue
        try:
            os.remove(os.path.join(workdir, name))
        except OSError:
            continue
        pruned += 1
    return pruned


def load_manifest(workdir: str) -> dict | None:
    """The manifest in ``workdir``, or None when none (or unreadable --
    an interrupted first checkpoint is indistinguishable from a fresh
    run, and the atomic write makes a *torn* manifest impossible)."""
    try:
        with open(manifest_path(workdir), "rb") as f:
            manifest = json.loads(f.read())
    except (OSError, ValueError):
        return None
    if manifest.get("format") != FORMAT:
        return None
    return manifest


def validate(manifest: dict, options, graph) -> None:
    """Refuse a resume whose run would not continue the original one."""
    digest = config_digest(options)
    if manifest["config"] != digest:
        raise CheckpointMismatch(
            "checkpoint was written under different engine options"
            f" (config digest {manifest['config'][:12]} != {digest[:12]});"
            " re-run without --resume"
        )
    if manifest["vertices"] != vertex_digest(graph.vertices):
        raise CheckpointMismatch(
            "vertex table does not match the checkpoint (the subject or"
            " front-end options changed); re-run without --resume"
        )
    labels = graph.labels
    for want_id, stored in enumerate(manifest["labels"]):
        got_id = labels.intern(_untuple(stored))
        if got_id != want_id:
            raise CheckpointMismatch(
                f"label table diverged at id {want_id}"
                f" ({_untuple(stored)!r} interned as {got_id});"
                " re-run without --resume"
            )


def restore_store(manifest: dict, store) -> None:
    """Adopt the manifest's partition layout into a fresh store.

    A partition whose delta file's current size differs from the
    checkpointed size gained (or lost) frames the manifest never saw:
    its version is bumped so the scheduler reprocesses its pairs.
    """
    store.partitions = []
    for desc in manifest["partitions"]:
        part = Partition(
            index=desc["index"],
            lo=desc["lo"],
            hi=desc["hi"],
            path=os.path.join(store.workdir, desc["path"]),
            delta_path=os.path.join(store.workdir, desc["delta_path"]),
            edge_count=desc["edge_count"],
            byte_estimate=desc["byte_estimate"],
            version=desc["version"],
        )
        delta_size = None
        try:
            delta_size = os.path.getsize(part.delta_path)
        except OSError:
            pass
        if delta_size != desc["delta_size"]:
            part.version += 1
        store.partitions.append(part)
    store.partitions.sort(key=lambda p: p.index)
    store._next_file = manifest["next_file"]
    store._bounds_stale = True


def restore_stats(manifest: dict, stats) -> None:
    for name, value in manifest["stats"].items():
        if hasattr(stats, name):
            setattr(stats, name, value)


def restored_last_seen(manifest: dict) -> dict:
    return {
        (i, j): (vi, vj) for i, j, vi, vj in manifest["last_seen"]
    }
