"""Background partition I/O: prefetched reads and double-buffered spills.

Grapple hides disk latency behind computation (paper §4.3): while one
partition pair is being composed, the next pair's partitions are already
being read and decoded.  The scheduler knows the upcoming pairs
(:meth:`PairScheduler.peek_pairs` / the coordinator's ``select_wave``),
so the engine hands them to a :class:`PrefetchReader` whose daemon
thread reads the partition file *and* any pending delta frames and
parses them into plain data (``serialize.parse_columnar`` is pure --
no shared interning state is touched off-thread).  The consumer
validates the partition's version at :meth:`PrefetchReader.take` time:
any write that happened after the prefetch was scheduled bumps the
version and turns the prefetch into a miss, so stale bytes can never be
adopted.

Spill (delta) writes go the other way: :class:`SpillWriter` queues
payloads and appends them as CRC-framed records from a writer thread,
optionally zlib-compressing each payload
(``EngineOptions.compress_spills``).  The store flushes the writer for a
path before any read of that path, which keeps the read side oblivious
to the buffering.
"""

from __future__ import annotations

import os
import queue
import threading

from repro.engine import serialize
from repro.faults import NULL_PLAN
from repro.obs.trace import NULL_RECORDER


class PrefetchReader:
    """Reads and parses upcoming partitions on a background thread."""

    def __init__(self, trace=None) -> None:
        self.trace = trace if trace is not None else NULL_RECORDER
        self._tasks: queue.Queue = queue.Queue()
        self._results: dict[int, dict] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None
        self._closed = False
        # Unexpected (non-I/O, non-corruption) reader failures.  Written
        # only by the reader thread; folded into EngineStats by the
        # consumer when take() re-raises.
        self.errors = 0

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="grapple-prefetch", daemon=True
            )
            self._thread.start()

    # -- producer side --------------------------------------------------------

    def schedule(self, index: int, version: int, path: str,
                 delta_path: str) -> None:
        """Ask the reader to parse partition ``index`` as of ``version``.

        Re-scheduling the same (index, version) is a no-op; scheduling a
        newer version supersedes the old entry.
        """
        if self._closed:
            return
        with self._lock:
            entry = self._results.get(index)
            if entry is not None and entry["version"] == version:
                return
            entry = {
                "version": version,
                "ready": threading.Event(),
                "parsed": None,
                "deltas": None,
                "dropped": 0,
                "error": None,
            }
            self._results[index] = entry
        self._ensure_thread()
        self._tasks.put((index, version, path, delta_path, entry))

    def _run(self) -> None:
        trace = self.trace
        trace.note_thread("prefetch-reader")
        while True:
            task = self._tasks.get()
            if task is None:
                return
            index, version, path, delta_path, entry = task
            span_start = trace.begin() if trace.enabled else 0.0
            try:
                with open(path, "rb") as f:
                    parsed = serialize.parse_columnar(f.read())
                deltas = []
                if os.path.exists(delta_path):
                    # Parse the delta frames but do NOT remove the file;
                    # the consumer owns its lifecycle.  Truncated tail
                    # frames are a benign crash artifact and are dropped;
                    # interior CRC/decode failures are real corruption
                    # and are surfaced through the entry's error slot so
                    # the store's retry layer (not this thread) decides
                    # how to recover.
                    with open(delta_path, "rb") as f:
                        data = f.read()
                    payloads, dropped, corrupt = serialize.split_frames(data)
                    if corrupt:
                        raise serialize.CorruptPartition(
                            f"{corrupt} corrupt delta frame(s) in"
                            f" {os.path.basename(delta_path)}"
                        )
                    entry["dropped"] = dropped
                    for payload in payloads:
                        deltas.append(serialize.decode_partition(payload))
                entry["parsed"] = parsed
                entry["deltas"] = deltas
            except serialize.CorruptPartition as exc:
                # Corrupt bytes are NOT a benign miss: record the error
                # so take() can distinguish "re-read synchronously" from
                # "this partition needs recovery".
                entry["parsed"] = None
                entry["deltas"] = None
                entry["error"] = exc
            except (OSError, EOFError):
                # Benign failures (file not yet written, version race,
                # transient OS error) leave the entry empty: take()
                # reports a miss and the caller falls back to a
                # synchronous load.
                entry["parsed"] = None
                entry["deltas"] = None
            except Exception as exc:
                # Anything else is a programming error, not an I/O race.
                # Swallowing it here would degrade every prefetch into a
                # silent eternal miss; surface it through the error slot
                # so take() re-raises on the engine thread, where it is
                # counted (``prefetch_errors``) and propagated.
                entry["parsed"] = None
                entry["deltas"] = None
                entry["error"] = exc
                self.errors += 1
            finally:
                entry["ready"].set()
                if span_start:
                    trace.end(
                        "prefetch", span_start, cat="io",
                        partition=index, version=version,
                        hit=entry["parsed"] is not None,
                    )

    # -- consumer side --------------------------------------------------------

    def take(self, index: int, version: int):
        """Claim a prefetched parse for (index, version).

        Returns ``(ColumnarFile, [delta_dict, ...], dropped_frames)`` on
        a hit, or ``None`` on a miss (never scheduled, version changed
        since, or the read failed benignly on ``OSError``/``EOFError``).
        A read that failed on *corrupt* bytes raises
        :class:`CorruptPartition` instead -- the caller counts it
        separately and routes it to the retry layer rather than silently
        re-reading the same damage forever.  Any other reader-thread
        exception (a programming error) is re-raised here too, counted
        as ``prefetch_errors`` by the consumer.  Blocks
        until an in-flight read finishes -- the wait is never longer
        than the synchronous read would be.
        """
        with self._lock:
            entry = self._results.pop(index, None)
        if entry is None:
            return None
        entry["ready"].wait()
        if entry["version"] != version:
            return None
        if entry["error"] is not None:
            raise entry["error"]
        if entry["parsed"] is None:
            return None
        return entry["parsed"], entry["deltas"], entry["dropped"]

    def invalidate(self, index: int) -> None:
        """Drop any pending/completed prefetch for a partition."""
        with self._lock:
            self._results.pop(index, None)

    def close(self) -> None:
        self._closed = True
        with self._lock:
            self._results.clear()
        if self._thread is not None and self._thread.is_alive():
            self._tasks.put(None)
            self._thread.join(timeout=5)


class SpillWriter:
    """Double-buffered append-only writer for partition delta frames.

    Frames are queued by the engine thread and written (optionally
    zlib-compressed) by a daemon writer thread; :meth:`flush` blocks
    until every queued frame for a path (or all paths) has hit disk.
    Each frame is CRC-framed (``serialize.encode_frame``) and appended
    in a *single* ``write`` call, so a crash mid-append leaves at most
    one truncated trailing frame, which the tolerant reader drops.
    Exceptions raised on the writer thread surface at the next flush or
    append, and :meth:`close` flushes, joins the thread, and re-raises
    any error still pending -- an error can no longer be lost because
    the run ended before the next flush.
    """

    def __init__(self, compress: bool = False, trace=None,
                 faults=NULL_PLAN) -> None:
        self.compress = compress
        self.trace = trace if trace is not None else NULL_RECORDER
        self.faults = faults
        # Mutated only by the writer thread; fold into EngineStats after
        # close() so no counter is written from two threads.
        self.frames_written = 0
        self.bytes_written = 0
        self._tasks: queue.Queue = queue.Queue()
        self._pending: dict[str, int] = {}
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._error: BaseException | None = None
        self._thread: threading.Thread | None = None
        self._closed = False

    def _ensure_thread(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="grapple-spill-writer", daemon=True
            )
            self._thread.start()

    def append(self, path: str, payload: bytes) -> None:
        """Queue one CRC-framed payload for append to ``path``."""
        if self._closed:
            raise RuntimeError("SpillWriter is closed")
        with self._lock:
            if self._error is not None:
                error, self._error = self._error, None
                raise error
            self._pending[path] = self._pending.get(path, 0) + 1
        self._ensure_thread()
        self._tasks.put((path, payload))

    def _run(self) -> None:
        trace = self.trace
        trace.note_thread("spill-writer")
        while True:
            task = self._tasks.get()
            if task is None:
                return
            path, payload = task
            span_start = trace.begin() if trace.enabled else 0.0
            try:
                if self.compress:
                    payload = serialize.compress_payload(payload)
                frame = serialize.encode_frame(payload)
                spec = self.faults.fire("delta-append")
                if spec is not None:
                    frame = self.faults.mutate_frame(spec, frame)
                # One write call per frame: a crash can truncate the
                # tail frame but never interleave two partial frames.
                with open(path, "ab") as f:
                    f.write(frame)
                self.frames_written += 1
                self.bytes_written += len(frame)
                if span_start:
                    trace.end(
                        "spill", span_start, cat="io", bytes=len(frame)
                    )
            except BaseException as exc:  # surfaced at next flush/append
                with self._lock:
                    self._error = exc
            finally:
                with self._lock:
                    left = self._pending.get(path, 1) - 1
                    if left:
                        self._pending[path] = left
                    else:
                        self._pending.pop(path, None)
                    self._idle.notify_all()

    def pending(self, path: str) -> bool:
        """True when frames for ``path`` are still queued or in flight."""
        with self._lock:
            return bool(self._pending.get(path))

    def flush(self, path: str | None = None) -> None:
        """Wait until queued frames (for ``path``, or all) are on disk."""
        with self._lock:
            if path is None:
                while self._pending:
                    self._idle.wait()
            else:
                while self._pending.get(path):
                    self._idle.wait()
            if self._error is not None:
                error, self._error = self._error, None
                raise error

    def close(self) -> None:
        """Flush, join the writer thread, and re-raise pending errors."""
        if self._closed:
            return
        self._closed = True
        error: BaseException | None = None
        try:
            self.flush()
        except BaseException as exc:
            error = exc
        if self._thread is not None and self._thread.is_alive():
            self._tasks.put(None)
            self._thread.join(timeout=5)
        with self._lock:
            if error is None and self._error is not None:
                error, self._error = self._error, None
        if error is not None:
            raise error
