"""Weighted-ZSet incremental transitive closure.

The batch engine recomputes the closure from scratch on every run.  This
module maintains it *incrementally*: edges are a ZSet (multiset with
integer weights, +1 insert / -1 retract) and each base-edge delta is
propagated semi-naively by joining the change against the delayed
integrals of the existing closure -- the ``join_lifted``-over-delayed-
integrals shape from leontrolski/stepping (SNIPPETS.md snippet 2),
iterated to fixpoint on the *change* only.

The fixpoint equation ``D = distinct(E + D . E)`` is maintained **per
iteration round**, not as one flat count.  A flat derivation count
(``paths = E + closure . E``) is not deletion-safe on cyclic graphs:
pairs on a cycle can support each other circularly, so retracting the
edge that connected a node to the cycle leaves phantom pairs whose
counts never reach zero.  Stratifying by round breaks the cycle: level
``k`` holds the pre-``distinct`` counts of

    P_k = E + D_{k-1} . E        (P_0 = E,  D_k = distinct(P_k))

so every derivation at level ``k`` is supported only by levels below it.
``D_k`` is monotone in ``k`` and the list of levels ends at the first
fixpoint ``D_K = D_{K-1}``, which is the transitive closure.  This is
exactly what stepping's per-iteration ``delay``/``integrate`` nodes
materialize; we keep those integrals across calls instead of rebuilding
them, so an edit propagates one small join per level instead of
re-running the whole iteration.

Per base delta ``dE``, level ``k`` receives

    dP_k = dE + dD_{k-1} . E_new - dD_{k-1} . dE + D_new_{k-1} . dE

(the exact product rule for ``Δ(D . E)`` written over the *current*
indexes), and emits ``dD_k`` as the pairs whose count crossed the zero
boundary.  Levels are appended while the frontier still changes
(diameter growth) and trimmed once trailing levels are equal.

The ``repro serve`` daemon applies this at *stratum* granularity: nodes
are source files, edges the file-dependency relation extracted from
scope artifacts, and ``components()``/``reachable()`` answer "which
strata does this edit touch".  The engine-level closure inside a
stratum is then re-derived by the ordinary batch kernel, so witness
selection and site numbering stay byte-identical to a cold run (see
DESIGN.md section 16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Set, Tuple

Node = Hashable
Edge = Tuple[Node, Node]


class ZSet:
    """A multiset with integer weights; zero-weight entries vanish.

    Supports the operations the incremental closure needs: weighted
    accumulation (``add``), iteration over support, and snapshot
    arithmetic (``plus``).  Deliberately minimal -- this is the stepping
    ``ZSet`` shrunk to what the fixpoint loop touches.
    """

    __slots__ = ("_weights",)

    def __init__(self, items: Iterable[Tuple[Hashable, int]] = ()) -> None:
        self._weights: Dict[Hashable, int] = {}
        for item, weight in items:
            self.add(item, weight)

    def add(self, item: Hashable, weight: int = 1) -> None:
        if weight == 0:
            return
        new = self._weights.get(item, 0) + weight
        if new == 0:
            self._weights.pop(item, None)
        else:
            self._weights[item] = new

    def weight(self, item: Hashable) -> int:
        return self._weights.get(item, 0)

    def items(self) -> Iterator[Tuple[Hashable, int]]:
        return iter(self._weights.items())

    def plus(self, other: "ZSet") -> "ZSet":
        out = ZSet()
        out._weights = dict(self._weights)
        for item, weight in other.items():
            out.add(item, weight)
        return out

    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._weights

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._weights)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSet):
            return NotImplemented
        return self._weights == other._weights

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"{k!r}: {w:+d}" for k, w in sorted(
            self._weights.items(), key=repr))
        return f"ZSet({{{inner}}})"


@dataclass
class ClosureDelta:
    """What one ``apply`` call changed, for observability."""

    added: list = field(default_factory=list)
    removed: list = field(default_factory=list)
    rounds: int = 0
    joins: int = 0

    @property
    def edges_rederived(self) -> int:
        return len(self.added) + len(self.removed)


class _Level:
    """One materialized iteration round: the integral of ``P_k``."""

    __slots__ = ("counts", "support", "pred")

    def __init__(self) -> None:
        self.counts: Dict[Edge, int] = {}
        self.support: Set[Edge] = set()
        # pred[y] = {x : (x, y) in distinct support} -- the join index
        # for extending paths on the right.
        self.pred: Dict[Node, Set[Node]] = {}

    def clone(self) -> "_Level":
        out = _Level()
        out.counts = dict(self.counts)
        out.support = set(self.support)
        out.pred = {key: set(val) for key, val in self.pred.items()}
        return out

    def integrate(self, d_paths: ZSet) -> ZSet:
        """Fold a pre-distinct delta in; return the distinct delta
        (zero-boundary crossings)."""
        d_distinct = ZSet()
        for pair, weight in d_paths.items():
            before = self.counts.get(pair, 0)
            after = before + weight
            if after == 0:
                self.counts.pop(pair, None)
            else:
                self.counts[pair] = after
            if before <= 0 < after:
                d_distinct.add(pair, 1)
                self.support.add(pair)
                self.pred.setdefault(pair[1], set()).add(pair[0])
            elif after <= 0 < before:
                d_distinct.add(pair, -1)
                self.support.discard(pair)
                bucket = self.pred.get(pair[1])
                if bucket is not None:
                    bucket.discard(pair[0])
                    if not bucket:
                        del self.pred[pair[1]]
        return d_distinct


class IncrementalClosure:
    """Transitive closure maintained under weighted edge deltas.

    ``edges`` holds base-edge multiplicities; ``levels`` the per-round
    integrals; ``closure`` mirrors the last (fixpoint) level as a ZSet.
    ``apply`` takes a base delta and returns the closure delta.
    """

    def __init__(self) -> None:
        self.edges = ZSet()
        self.closure = ZSet()
        self._levels: List[_Level] = []
        # succ/pred indexes over *positive* support only.
        self._edge_succ: Dict[Node, Set[Node]] = {}
        self._edge_pred: Dict[Node, Set[Node]] = {}
        self._closure_succ: Dict[Node, Set[Node]] = {}
        self._closure_pred: Dict[Node, Set[Node]] = {}

    # -- index upkeep ------------------------------------------------------

    @staticmethod
    def _index_add(index: Dict[Node, Set[Node]], key: Node, value: Node) -> None:
        index.setdefault(key, set()).add(value)

    @staticmethod
    def _index_drop(index: Dict[Node, Set[Node]], key: Node, value: Node) -> None:
        bucket = index.get(key)
        if bucket is not None:
            bucket.discard(value)
            if not bucket:
                del index[key]

    # -- the incremental step ---------------------------------------------

    def apply(self, delta: Iterable[Tuple[Edge, int]]) -> ClosureDelta:
        """Fold a base-edge delta in; return the distinct-closure delta.

        ``delta`` is an iterable of ``((src, dst), weight)`` pairs;
        weights sum per edge, and retracting below zero multiplicity is
        the caller's bug (monotonicity of the levels assumes counts stay
        non-negative).
        """
        out = ClosureDelta()
        d_edges = ZSet(delta)
        if not d_edges:
            return out

        # Fold the base delta and refresh the base succ/pred indexes.
        for (src, dst), weight in d_edges.items():
            before = self.edges.weight((src, dst))
            self.edges.add((src, dst), weight)
            after = self.edges.weight((src, dst))
            if before <= 0 < after:
                self._index_add(self._edge_succ, src, dst)
                self._index_add(self._edge_pred, dst, src)
            elif after <= 0 < before:
                self._index_drop(self._edge_succ, src, dst)
                self._index_drop(self._edge_pred, dst, src)

        if not self._levels:
            self._levels.append(_Level())

        # Propagate dE through every materialized round: each level's
        # integral contains E directly, so every level sees dE, and the
        # distinct deltas chain level to level through the join.
        d_distinct_prev = ZSet()
        for k, level in enumerate(self._levels):
            d_paths = ZSet()
            for pair, weight in d_edges.items():
                d_paths.add(pair, weight)
            if k > 0:
                prev = self._levels[k - 1]
                # dP_k = dE + dD . E_new - dD . dE + D_new . dE
                # (exact product rule for Delta(D_{k-1} . E) over the
                # *current* indexes: E_old = E_new - dE and
                # D_new = D_old + dD).
                for (x, y), weight in d_distinct_prev.items():
                    for z in self._edge_succ.get(y, ()):
                        d_paths.add((x, z),
                                    weight * self.edges.weight((y, z)))
                        out.joins += 1
                    for (y2, z), edge_weight in d_edges.items():
                        if y2 == y:
                            d_paths.add((x, z), -weight * edge_weight)
                for (src, dst), weight in d_edges.items():
                    for x in prev.pred.get(src, ()):
                        d_paths.add((x, dst), weight)
                        out.joins += 1
            d_distinct_prev = level.integrate(d_paths)
            out.rounds += 1

        # Extend while the frontier still moves at the last level (the
        # diameter grew).  The next round's integral differs from the
        # last one's by exactly (D_K - D_{K-1}) . E_new, so clone and
        # feed it that growth delta; the loop ends with the last two
        # levels equal -- the materialized fixpoint witness.
        while True:
            last = self._levels[-1]
            prev_support = (
                self._levels[-2].support if len(self._levels) >= 2 else set()
            )
            growth = last.support - prev_support
            if not growth:
                break
            d_ext = ZSet()
            for (x, y) in growth:
                for z in self._edge_succ.get(y, ()):
                    d_ext.add((x, z), self.edges.weight((y, z)))
                    out.joins += 1
            new_level = last.clone()
            new_level.integrate(d_ext)
            self._levels.append(new_level)
            out.rounds += 1
            if new_level.support == last.support:
                break

        # Trim stale converged rounds (diameter shrank), keeping one
        # duplicate pair as the fixpoint witness.
        while (len(self._levels) >= 3
               and self._levels[-1].support == self._levels[-2].support
               and self._levels[-2].support == self._levels[-3].support):
            self._levels.pop()

        # Refresh the closure ZSet + indexes from the fixpoint level.
        # The delta lists are sorted so callers see a hash-seed-free
        # deterministic order.
        final = self._levels[-1].support
        old = set(self.closure)
        for pair in sorted(final - old, key=repr):
            self.closure.add(pair, 1)
            out.added.append(pair)
            self._index_add(self._closure_succ, pair[0], pair[1])
            self._index_add(self._closure_pred, pair[1], pair[0])
        for pair in sorted(old - final, key=repr):
            self.closure.add(pair, -1)
            out.removed.append(pair)
            self._index_drop(self._closure_succ, pair[0], pair[1])
            self._index_drop(self._closure_pred, pair[1], pair[0])
        return out

    # -- queries -----------------------------------------------------------

    def reachable(self, node: Node) -> Set[Node]:
        """Nodes reachable from ``node`` (excluding itself unless on a
        cycle through itself)."""
        return set(self._closure_succ.get(node, ()))

    def reaching(self, node: Node) -> Set[Node]:
        """Nodes that reach ``node``."""
        return set(self._closure_pred.get(node, ()))

    def component(self, node: Node) -> Set[Node]:
        """The weakly-connected component of ``node`` under the base
        relation's symmetric closure -- the daemon's *stratum*."""
        seen = {node}
        frontier = [node]
        while frontier:
            cur = frontier.pop()
            for nxt in self._edge_succ.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
            for prev in self._edge_pred.get(cur, ()):
                if prev not in seen:
                    seen.add(prev)
                    frontier.append(prev)
        return seen

    def components(self, nodes: Iterable[Node]) -> List[Set[Node]]:
        """Partition ``nodes`` plus every node touched by the base
        relation into weakly-connected components, deterministically
        ordered by each component's smallest member repr."""
        pending = set(nodes)
        for src, dst in self.edges:
            pending.add(src)
            pending.add(dst)
        out: List[Set[Node]] = []
        while pending:
            comp = self.component(next(iter(pending)))
            pending -= comp
            out.append(comp)
        out.sort(key=lambda comp: sorted(map(repr, comp))[0])
        return out

    def check(self) -> None:
        """Invariant audit (tests only): every level satisfies
        ``P_k = E + D_{k-1} . E`` count-exactly, the last level is a
        fixpoint, and ``closure`` mirrors it."""
        prev_support: Set[Edge] = set()
        for k, level in enumerate(self._levels):
            expect = ZSet(self.edges.items())
            if k > 0:
                for (x, y) in self._levels[k - 1].support:
                    for z in self._edge_succ.get(y, ()):
                        expect.add((x, z), self.edges.weight((y, z)))
            got = ZSet((pair, cnt) for pair, cnt in level.counts.items())
            assert got == expect, f"level {k}: counts != E + D_{k-1}.E"
            assert level.support == {
                pair for pair, cnt in level.counts.items() if cnt > 0
            }, f"level {k}: support out of sync"
            assert level.support >= prev_support, f"level {k}: not monotone"
            prev_support = level.support
        if self._levels:
            last = self._levels[-1]
            fix = ZSet(self.edges.items())
            for (x, y) in last.support:
                for z in self._edge_succ.get(y, ()):
                    fix.add((x, z), self.edges.weight((y, z)))
            assert {p for p, c in fix.items() if c > 0} == last.support, \
                "last level is not a fixpoint"
            assert set(self.closure) == last.support, "closure out of sync"
