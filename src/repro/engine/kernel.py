"""Batched closure kernel: bulk run-intersection, vectorised probes,
and grouped feasibility (DESIGN.md §12).

The scalar frontier drain in ``engine/computation.py`` composes one
edge at a time: for every pending left operand it probes the right-hand
partition's sorted source run, walks the rows, composes labels, merges
encodings, and solves each merged constraint the moment the edge is
inserted.  This module replaces that inner loop with a three-pass
batched schedule while reproducing the scalar path *byte for byte* --
same edges in the same insertion order (the witness cap makes order
semantically significant), same counter totals, same memo contents:

1. **Bulk run-intersection** -- each round sorts the frontier by join
   vertex once (as before), but the ``[lo, hi)`` runs of *all* the
   round's distinct join vertices in the right-hand sorted ``src``
   column are located in one pass: a single vectorised ``searchsorted``
   per owner partition on the numpy backend, a monotonic low-anchored
   bisect walk on the stdlib backend.  Base columns are immutable
   between compactions (inserts land in the dict overlay), so the
   round's ranges stay valid across in-round inserts; a mid-round
   split replaces the column arrays and is detected by object identity,
   falling back to a fresh per-vertex bisect.
2. **Vectorised dedup/memo probes** -- the target-relevance filter over
   a run becomes one mask application (a numpy boolean gather, or a
   precomputed relevant-label set on the stdlib backend) instead of a
   per-row grammar-memo call, and the compose/merge memos are probed
   with plain dict lookups hoisted out of the engine's method-call
   plumbing.
3. **Grouped feasibility** -- composed candidates are cut into
   ``batch_size`` chunks; each chunk's *certainly-queried* constraints
   (see below) are alpha-normalised to canonical forms, distinct unseen
   forms are handed to :meth:`repro.smt.solver.Solver.check_batch` as
   one group, and the verdicts are parked in ``engine._presolved`` for
   the insert pass to consume.  Forms already proven are short-circuited
   (``group_hits``).

Both backends produce identical results: the numpy path exists purely
to move per-row Python work into C loops.  The backend is selected at
import time (``--kernel auto``) or forced (``--kernel numpy|stdlib``);
``--kernel off`` keeps the scalar drain.

**Counter-parity discipline.**  The scalar path interleaves composition
and insertion, so a batched schedule reorders feasibility queries.
Query *totals* still match because (a) grammar-callback queries key the
memo/LRU with multi-encoding tuples while insert-time queries use
single ids -- disjoint key spaces, so reordering cannot turn a hit into
a miss -- and (b) a chunk only pre-solves candidates whose insert-time
query is *certain* to happen and miss every cache: the owner partition
is loaded, the edge is new, its witness slot has room, no earlier
candidate in the chunk touches the same (or a derived) slot, and the
verdict is in neither the id-keyed memo, the tuple-keyed LRU, nor the
pending pre-solve set.  Everything else falls through to the unchanged
lazy path in ``GraphEngine._feasible_solve``.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left, bisect_right

from repro.smt import Result

try:  # the numpy fast path is optional (pyproject extra "fast")
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

BACKENDS = ("auto", "numpy", "stdlib", "off")

#: Minimum chunk size worth the grouped-feasibility bookkeeping: below
#: this the per-candidate eligibility scan costs more than one-by-one
#: lazy solving (which charges the exact same counter totals, so the
#: cutoff is invisible to differential tests).
PRESOLVE_MIN = 24

#: Below this many base rows the numpy gather (fancy indexing plus
#: .tolist()) loses to plain array slicing; both produce the same rows.
NUMPY_MIN_RUN = 48


def resolve_backend(choice: str) -> str | None:
    """Map an ``EngineOptions.kernel`` choice to a backend name.

    Returns ``"numpy"`` or ``"stdlib"`` (None for ``"off"``).  ``auto``
    prefers numpy when it is importable; forcing ``numpy`` without the
    library installed is an error rather than a silent fallback.
    """
    if choice == "off":
        return None
    if choice == "auto":
        return "numpy" if _np is not None else "stdlib"
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                "kernel backend 'numpy' requested but numpy is not"
                " installed (pip install repro[fast], or use"
                " --kernel auto/stdlib)"
            )
        return "numpy"
    if choice == "stdlib":
        return "stdlib"
    raise ValueError(f"unknown kernel backend {choice!r} (want one of {BACKENDS})")


# -- canonical constraint forms ------------------------------------------------

#: A serialised variable node: ``(var int x)`` / ``(var bool b)``.
_VAR_PATTERN = re.compile(r"\(var (int|bool) ([^)]*)\)")


def alpha_normalize(text: str) -> str:
    """Rename a serialised constraint's variables by first appearance.

    Two constraints with the same canonical text are alpha-equivalent
    (the renaming is a bijection per formula), hence equisatisfiable --
    edges in different program scopes share constraint *shapes* even
    though their variable names differ, so grouping by canonical form
    collapses thousands of solver calls into one per distinct form.
    """
    names: dict[str, str] = {}

    def rename(match: re.Match) -> str:
        key = match.group(0)
        canon = names.get(key)
        if canon is None:
            canon = names[key] = f"(var {match.group(1)} !{len(names)})"
        return canon

    return _VAR_PATTERN.sub(rename, text)


# -- per-columns kernel cache --------------------------------------------------


class _ColsCache:
    """Backend views of one :class:`EdgeColumns`' base arrays.

    Valid only while the columns' ``src`` array object is unchanged
    (compaction and splits replace all four arrays wholesale; inserts
    go to the overlay and never touch them) and for one grammar's
    target-relevance function.
    """

    __slots__ = ("src_ref", "grammar_ref", "nsrc", "ndst", "nlabel",
                 "nenc", "mask", "relevant")

    def __init__(self, cols, engine, backend: str) -> None:
        self.src_ref = cols.src
        self.grammar_ref = engine.grammar
        rel_tgt = engine._rel_tgt_id
        if backend == "numpy":
            self.nsrc = _np.frombuffer(cols.src, dtype=_np.int64)
            self.ndst = _np.frombuffer(cols.dst, dtype=_np.int64)
            self.nlabel = _np.frombuffer(cols.label, dtype=_np.int64)
            self.nenc = _np.frombuffer(cols.enc, dtype=_np.int64)
            if self.nlabel.size:
                uniq = _np.unique(self.nlabel).tolist()
                rel = [rel_tgt(label_id) for label_id in uniq]
                if all(rel):
                    self.mask = self.relevant = None
                else:
                    lut = _np.zeros(uniq[-1] + 1, dtype=bool)
                    for label_id, is_rel in zip(uniq, rel):
                        lut[label_id] = is_rel
                    self.mask = lut[self.nlabel]
                    self.relevant = {l for l, r in zip(uniq, rel) if r}
            else:
                self.mask = self.relevant = None
        else:
            self.nsrc = self.ndst = self.nlabel = self.nenc = None
            uniq = set(cols.label)
            relevant = {l for l in uniq if rel_tgt(l)}
            self.mask = None
            self.relevant = None if len(relevant) == len(uniq) else relevant


def _cache_for(engine, cols, backend: str) -> _ColsCache:
    kc = cols._kcache
    if (
        kc is None
        or kc.src_ref is not cols.src
        or kc.grammar_ref is not engine.grammar
    ):
        kc = cols._kcache = _ColsCache(cols, engine, backend)
    return kc


# -- the drain -----------------------------------------------------------------


def drain(engine, loaded, parts, spills, dirty, frontier) -> None:
    """Batched replacement for the scalar merge-join frontier drain.

    Mutates ``frontier`` in place (the engine's insert path appends the
    next round's left operands to it) and returns when it is empty.
    """
    stats = engine.stats
    backend = engine._kernel
    batch_size = max(1, engine.options.batch_size)
    while frontier:
        batch = sorted(frontier, key=_join_vertex)
        del frontier[:]
        stats.join_batches += 1
        plan = _round_plan(engine, loaded, parts, batch, backend)
        at, n = 0, len(batch)
        while at < n:
            dst = batch[at][1]
            end = at + 1
            while end < n and batch[end][1] == dst:
                end += 1
            rows = _group_rows(engine, loaded, parts, plan, dst, backend)
            if rows:
                candidates = _compose_group(engine, batch, at, end, dst, rows)
                if candidates:
                    _flush_group(
                        engine, candidates, loaded, parts, spills, dirty,
                        frontier, batch_size,
                    )
            at = end
    engine._presolved.clear()


def _join_vertex(edge) -> int:
    return edge[1]


def _round_plan(engine, loaded, parts, batch, backend: str) -> dict:
    """``dst -> (cols, src_array, lo, hi)`` base runs for the round.

    One vectorised ``searchsorted`` per owner partition (numpy) or a
    monotonic bisect walk (stdlib; the distinct join vertices arrive in
    ascending order, so each search starts where the last one ended).
    The captured ``cols``/``src`` objects validate the entry later: a
    mid-round split replaces both, invalidating the ranges.
    """
    dsts = []
    last = None
    for edge in batch:
        dst = edge[1]
        if dst != last:
            dsts.append(dst)
            last = dst
    plan: dict = {"epoch": engine._split_epoch}
    for index, part in parts.items():
        cols = loaded[index]
        mine = [d for d in dsts if part.owns(d)]
        if not mine:
            continue
        src = cols.src
        if backend == "numpy" and len(src):
            kc = _cache_for(engine, cols, backend)
            los = _np.searchsorted(kc.nsrc, mine, side="left").tolist()
            his = _np.searchsorted(kc.nsrc, mine, side="right").tolist()
            for d, lo, hi in zip(mine, los, his):
                plan[d] = (cols, src, lo, hi)
        else:
            lo = 0
            for d in mine:
                lo = bisect_left(src, d, lo)
                hi = bisect_right(src, d, lo)
                plan[d] = (cols, src, lo, hi)
                lo = hi
    return plan


def _group_rows(engine, loaded, parts, plan, dst, backend: str):
    """The join vertex's relevant-target rows, or None/[].

    Matches ``out_rows(dst)`` + the scalar relevance filter: base rows
    in column order first, then the insert overlay in dict/set
    iteration order -- the overlay is read *live* so edges inserted by
    earlier groups of the same round stay visible, exactly like the
    scalar path's just-in-time ``out_rows`` snapshot.
    """
    entry = plan.get(dst)
    if entry is not None and plan.get("epoch") == engine._split_epoch:
        cols = entry[0]
    else:
        cols = None
        for index, part in parts.items():
            if part.owns(dst):
                cols = loaded[index]
                break
        if cols is None:
            return None
    if entry is not None and entry[0] is cols and entry[1] is cols.src:
        lo, hi = entry[2], entry[3]
    else:  # split or compaction replaced the columns mid-round
        lo, hi = cols._src_run(dst)
    targets = cols.extra.get(dst)
    if hi <= lo and not targets:
        return None
    engine.stats.join_probes += 1
    if hi > lo:
        kc = _cache_for(engine, cols, backend)
        if backend == "numpy" and hi - lo >= NUMPY_MIN_RUN:
            mask = kc.mask
            if mask is None:
                rows = list(zip(
                    kc.ndst[lo:hi].tolist(),
                    kc.nlabel[lo:hi].tolist(),
                    kc.nenc[lo:hi].tolist(),
                ))
            else:
                idx = _np.flatnonzero(mask[lo:hi])
                if idx.size:
                    idx += lo
                    rows = list(zip(
                        kc.ndst[idx].tolist(),
                        kc.nlabel[idx].tolist(),
                        kc.nenc[idx].tolist(),
                    ))
                else:
                    rows = []
        else:
            pairs = zip(cols.dst[lo:hi], cols.label[lo:hi], cols.enc[lo:hi])
            relevant = kc.relevant
            if relevant is None:
                rows = list(pairs)
            else:
                rows = [row for row in pairs if row[1] in relevant]
    else:
        rows = []
    if targets:
        rel_tgt = engine._rel_tgt_id
        append = rows.append
        for (d, l), eids in targets.items():
            if rel_tgt(l):
                for eid in eids:
                    append((d, l, eid))
    return rows


def _compose_group(engine, batch, at, end, dst, rows) -> list:
    """Pass 1: compose every (left, row) pair of one join-vertex group.

    Returns surviving candidates ``(src, dst2, label_ids, merged_id)``
    in scalar order.  Label-composition and encoding-merge memos are
    probed as plain dict lookups; misses fall through to the engine's
    memoising helpers, so memo contents end up identical to a scalar
    run's.
    """
    stats = engine.stats
    table_driven = engine._table_driven
    compose_memo = engine._compose_memo
    merge_memo = engine._merge_memo
    compose_labels = engine._compose_labels
    merge_ids = engine._merge_ids
    nrows = len(rows)
    candidates: list = []
    append = candidates.append
    for k in range(at, end):
        src, _, label1_id, enc1 = batch[k]
        stats.compositions_tried += nrows
        for dst2, label2_id, enc2 in rows:
            if table_driven:
                comps = compose_memo.get((label1_id, label2_id))
                if comps is None:
                    comps = compose_labels(
                        src, dst, label1_id, enc1, dst2, label2_id, enc2
                    )
            else:
                comps = compose_labels(
                    src, dst, label1_id, enc1, dst2, label2_id, enc2
                )
            if not comps:
                continue
            mkey = (enc1, enc2)
            # The merge memo stores None for overflowed merges, so probe
            # with ``in`` rather than a None-sentinel get().
            if mkey in merge_memo:
                merged = merge_memo[mkey]
            else:
                merged = merge_ids(enc1, enc2)
            if merged is None:
                stats.encoding_overflow_dropped += 1
                continue
            append((src, dst2, comps, merged))
    return candidates


def _flush_group(
    engine, candidates, loaded, parts, spills, dirty, frontier,
    batch_size: int,
) -> None:
    """Passes 2+3: grouped feasibility, then in-order insertion."""
    stats = engine.stats
    insert = engine._insert
    options = engine.options
    presolve = options.path_sensitive and options.enable_cache
    for start in range(0, len(candidates), batch_size):
        chunk = candidates[start:start + batch_size]
        stats.kernel_batches += 1
        stats.batch_fill += len(chunk)
        if presolve and len(chunk) >= PRESOLVE_MIN:
            _presolve_chunk(engine, chunk, loaded, parts)
        for src, dst2, comps, merged in chunk:
            for label_id in comps:
                insert(
                    src, dst2, label_id, merged, loaded, parts, spills,
                    dirty, frontier, check=True,
                )


def _presolve_chunk(engine, chunk, loaded, parts) -> None:
    """Pass 2: solve one chunk's certainly-queried constraints as a group.

    Only candidates whose insert-time feasibility query is guaranteed to
    happen *and* miss every cache are pre-solved (see the module
    docstring); their verdicts are parked in ``engine._presolved`` and
    consumed by ``GraphEngine._feasible_solve``, which charges the
    query-side counters exactly as the lazy path would.
    """
    stats = engine.stats
    memo_probe = engine._feasible_memo.get
    presolved = engine._presolved
    form_memo = engine._form_memo
    witness_cap = engine.options.witness_cap
    # In a serial engine every LRU entry was written alongside a memo
    # entry for the same ids, so memo-unknown implies LRU-miss and the
    # decode + peek can be skipped; parallel workers get LRU entries
    # broadcast from other processes and must check (so must an engine
    # whose insertion-bounded memo stopped accepting writes).
    memo = engine._feasible_memo
    need_peek = engine._lru_external or len(memo) >= memo.capacity
    peek = engine.cache.peek
    decode = engine._enc.decode
    slot_seen: set = set()
    picked: list = []
    start = time.perf_counter()
    for cand in chunk:
        src, dst2, comps, merged = cand
        label0 = comps[0]
        slot = (src, dst2, label0)
        # ``presolved`` also bars re-collecting a merged id an earlier
        # chunk member already picked (under a different slot): its
        # first insert-time query consumes the verdict and memoises, so
        # the second query is a plain memo hit -- pre-solving it again
        # would overcount group hits relative to the scalar path.
        if (
            merged not in presolved
            and memo_probe(merged) is None
            and slot not in slot_seen
        ):
            cols = None
            for index, part in parts.items():
                if part.owns(src):
                    cols = loaded[index]
                    break
            if (
                cols is not None
                and not cols.contains(src, dst2, label0, merged)
                and cols.witness_count(src, dst2, label0) < witness_cap
                and (not need_peek or peek((decode(merged),)) is None)
            ):
                picked.append((merged, cand))
                presolved[merged] = None  # placeholder: bars duplicates
        # Conservatively mark every slot this candidate (and its derived
        # edges) may touch, so later chunk members whose dedup/witness
        # outcome could change are left to the lazy path.
        _mark_slots(engine, slot_seen, src, dst2, comps)
    forms: list = []
    by_form: dict = {}
    if picked:
        form_key = engine._form_key
        constraint_for = engine._constraint_for
        with stats.timing("encode_time"):
            keyed = [
                (merged, constraint_for(merged)) for merged, _cand in picked
            ]
            keys = [
                form_key((merged,), (constraint,))
                for merged, constraint in keyed
            ]
        for (merged, constraint), form in zip(keyed, keys):
            verdict = form_memo.get(form)
            if verdict is not None:
                stats.group_hits += 1
                presolved[merged] = verdict
            else:
                entry = by_form.get(form)
                if entry is None:
                    by_form[form] = (constraint, [merged])
                    forms.append(form)
                else:
                    entry[1].append(merged)
    if forms:
        _solve_group(engine, forms, by_form)
    stats.feasibility_time += time.perf_counter() - start


def _mark_slots(engine, slot_seen, src, dst2, comps) -> None:
    closure = _derived_closure
    add = slot_seen.add
    for label_id in comps:
        for derived_label_id, flipped in closure(engine, label_id):
            add(
                (dst2, src, derived_label_id) if flipped
                else (src, dst2, derived_label_id)
            )


def _derived_closure(engine, label_id):
    """Transitive closure of the grammar's derived-label relation for
    one label, as ``(label id, orientation flipped?)`` pairs including
    the label itself.  Pure function of the label, so memoised on the
    engine rather than re-walked per candidate."""
    memo = engine._derived_closure
    got = memo.get(label_id)
    if got is None:
        seen = {(label_id, False)}
        pending = [(label_id, False)]
        while pending:
            lab, parity = pending.pop()
            for derived_label_id, rev in engine._derived_ids(lab):
                item = (derived_label_id, parity ^ bool(rev))
                if item not in seen:
                    seen.add(item)
                    pending.append(item)
        got = memo[label_id] = tuple(seen)
    return got


def _solve_group(engine, forms, by_form) -> None:
    """Solve one chunk's distinct unseen canonical forms.

    With tracing and metrics off the whole group goes to the solver in
    one :meth:`check_batch` call; otherwise each form is solved through
    the engine's instrumented helper so per-solve spans and latency
    histograms match the lazy path.  A solve the DPLL(T) loop gave up on
    is not memoisable (the verdict is a conservative SAT, not a theorem
    about the form), so its verdict only covers the one candidate and
    the form's other members are re-solved -- the same per-query
    re-solving the lazy path does.
    """
    stats = engine.stats
    solver_stats = engine.solver.stats
    form_memo = engine._form_memo
    presolved = engine._presolved
    plain = not engine.trace.enabled and stats.metrics is None
    if plain:
        formulas = [by_form[form][0] for form in forms]
        flags: list = []
        with stats.timing("smt_time"):
            stats.constraints_solved += len(formulas)
            results = engine.solver.check_batch(formulas, gave_up_flags=flags)
        outcomes = [
            (result is Result.SAT, gave) for result, gave in zip(results, flags)
        ]
    else:
        outcomes = []
        for form in forms:
            before = solver_stats.gave_up
            verdict = engine._solve_formula(by_form[form][0])
            outcomes.append((verdict, solver_stats.gave_up != before))
    for form, (verdict, gave_up) in zip(forms, outcomes):
        constraint, mergeds = by_form[form]
        presolved[mergeds[0]] = verdict
        if not gave_up:
            stats.feasibility_groups += 1
            form_memo[form] = verdict
            for merged in mergeds[1:]:
                stats.group_hits += 1
                presolved[merged] = verdict
        else:  # rare: re-solve per member, as the lazy path would
            for merged in mergeds[1:]:
                if form in form_memo:  # an earlier re-solve stuck
                    stats.group_hits += 1
                    presolved[merged] = form_memo[form]
                    continue
                before = solver_stats.gave_up
                again = engine._solve_formula(constraint)
                if solver_stats.gave_up == before:
                    stats.feasibility_groups += 1
                    form_memo[form] = again
                presolved[merged] = again
