"""Multiprocess partition-pair computation (coordinator + workers).

The closure over partition pairs is embarrassingly partition-parallel:
two pairs that share no partition read and write disjoint data.  The
coordinator therefore repeatedly selects a *wave* of mutually disjoint
eligible pairs (:meth:`repro.engine.scheduling.PairScheduler.select_wave`)
and dispatches them to a persistent forked process pool (a
``ProcessPoolExecutor``, which -- unlike ``multiprocessing.Pool`` --
surfaces an abruptly killed worker as ``BrokenProcessPool`` instead of
hanging forever, so the coordinator can rebuild the pool and requeue the
task; DESIGN.md §11 describes the retry/quarantine protocol):

* each **worker** loads its two partitions from the on-disk store
  (through a version-validated, worker-local decoded-partition cache),
  runs the join/compose/feasibility loop with a worker-local LRU and
  decode cache, buffers edges owned by unloaded partitions as spill
  chunks, and returns (the new edges of its dirty partitions, spill
  chunks, an :class:`EngineStats` delta, hot constraint-cache entries);
* the **coordinator** merges the new edges and spills into the canonical
  store with deduplication (so pair re-eligibility stays tight and the
  fixpoint terminates), folds returned hot cache entries into a shared
  warm cache broadcast with the next wave, applies version bumps, and
  splits oversized partitions serially *between* waves.

Workers seed each pair's frontier *semi-naively*: only the edges that
arrived in either partition since this pair was last processed, plus the
compositions of old edges with those new right-hand edges (via a per-pair
reverse index).  The first processing of a pair -- and any processing
after a split invalidated a partition's delta log -- falls back to the
serial engine's full reseeding, so the computed fixpoint is the same.

Not every pair is worth a round trip: the first pair of every wave runs
in the coordinator process against the store's write-back cache (paying
no IPC and no file I/O) while the pool chews the rest.  When the machine
has a single CPU -- or ``parallel_dispatch`` is ``"inline"`` -- the pool
is skipped entirely: a worker process that can never run concurrently
with the coordinator is pure overhead, and the wave protocol's
semi-naive seeding already does strictly less work than the serial
engine's full recomposition.

Pool workers are forked, so they inherit the ICFET, grammar, and
vertex/label tables read-only by copy-on-write; only pair descriptors,
delta edges and results cross the process boundary.  Because edge chunks
reference label *ids*, the coordinator pre-interns every label the
grammar can ever produce (:meth:`Grammar.closure_labels`) before forking;
a worker that still allocates a new label id fails loudly rather than
corrupt the label table.  On platforms without ``fork`` everything runs
inline.

Encoding ids are a different story: each process hash-conses encodings
into its own :class:`~repro.engine.columnar.EncodingTable`, so ids are
never valid across the boundary.  Everything that crosses it -- delta
edges in :class:`WaveTask`, new edges and spill chunks in
:class:`WaveResult`, warm-cache entries -- stays tuple-encoded; workers
intern on receipt, the engine decodes on send.

Three layers rebuilt the data plane on top of that protocol
(DESIGN.md §13):

* **Shared-memory columns** (``engine/shm.py``): with ``--shm`` (the
  default, POSIX only) the coordinator publishes each pooled pair's
  partitions into named shared-memory segments instead of
  materialising them to disk; workers attach zero-copy ``memoryview``
  columns and remap the shared encoding stream incrementally, so the
  per-wave cost of handing a partition to a worker stops scaling with
  its size.  New edges return as one compact columnar slice per dirty
  partition (``WaveResult.columns``) rather than a tuple list.
* **Source-stratified sharding** (``--shard-by-source``): a
  :class:`~repro.engine.scheduling.StratumPlanner` orders each wave's
  eligible pairs by source stratum, clustering intra-stratum fan-out
  first, SSC-style.  Order never affects the fixpoint -- the planner
  only permutes which disjoint pairs fly together.
* **Work stealing across the wave boundary**: instead of a hard
  barrier, the coordinator absorbs results in *dispatch order* and,
  after each absorb, refills free pool slots with eligible pairs
  disjoint from everything still in flight (``pairs_stolen``).  Keying
  steal decisions to the absorb count -- never to wall-clock
  completion order -- keeps the schedule, and therefore the
  witness-capped output, bit-reproducible run over run; checkpoint
  manifests record the steal frontier at each (quiescent) wave end, so
  ``--resume`` replays identically.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import time
from array import array
from bisect import bisect_right
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.engine import serialize
from repro.engine import shm as shm_mod
from repro.engine.cache import LRUCache
from repro.engine.columnar import EdgeColumns, EncodingTable
from repro.engine.computation import GraphEngine
from repro.engine.partition import _merge_edges
from repro.engine.scheduling import PairScheduler, StratumPlanner
from repro.engine.stats import EngineStats
from repro.obs.trace import NULL_RECORDER

#: Caps on cross-process cache traffic per wave.
CACHE_LOG_CAP = 4096
CACHE_SEED_CAP = 8192
#: Decoded partitions kept per pool worker (version-validated).
WORKER_CACHE_SLOTS = 8
#: Steal refills dispatched past a wave's initial fill, per pool slot --
#: bounds how far a wave can run past its checkpoint cadence.
STEAL_FACTOR = 4


def effective_workers(options) -> int:
    """How many pair computations can actually proceed concurrently."""
    workers = options.workers
    if options.parallel_dispatch == "auto":
        workers = min(workers, os.cpu_count() or 1)
    return max(1, workers)


@dataclass
class _PartView:
    """Pickling-safe snapshot of one partition descriptor."""

    index: int
    lo: int
    hi: int
    path: str
    version: int
    edge_count: int = 0
    byte_estimate: int = 0

    def owns(self, src: int) -> bool:
        return self.lo <= src < self.hi


@dataclass
class WaveTask:
    """One partition pair dispatched to a worker."""

    pair: tuple
    #: Snapshot of *all* partitions (index -> :class:`_PartView`) --
    #: stable for the whole wave since splits only happen between waves.
    #: ``None`` for inline tasks, which see the real store directly.
    parts: dict | None
    #: Pair-partition index -> delta edges since the pair was last
    #: processed; ``None`` means "unknown / process fully".  Edges are
    #: tuple-encoded (ids are process-local).
    deltas: dict
    #: Warm constraint-cache entries to fold into the worker-local LRU.
    cache_seed: list = field(default_factory=list)
    #: Redelivery count: bumped by the coordinator each time the task is
    #: requeued after a worker death or a corrupt-partition load.
    attempt: int = 0
    #: Pair-partition index -> shared-memory segment ref (engine/shm.py).
    #: A partition listed here was *not* materialised to disk: the
    #: worker must attach or fail the task, never read the stale file.
    shm: dict = field(default_factory=dict)
    #: Segment ref of the coordinator's shared encoding-table stream.
    table_ref: dict | None = None
    #: Dispatch sequence within the wave; the coordinator absorbs
    #: results strictly in this order so steal refills are
    #: schedule-deterministic.
    seq: int = 0


@dataclass
class WaveResult:
    """Everything a worker sends back for one processed pair."""

    pair: tuple
    #: partition index -> list of new (src, dst, label_id, encoding)
    #: (inline tasks only; pooled tasks return ``columns`` instead)
    new_edges: dict = field(default_factory=dict)
    #: partition index -> new edges as one encoded columnar slice
    #: (``serialize.encode_columnar`` bytes, rows in insertion order) --
    #: the compact cross-process form of ``new_edges``.
    columns: dict = field(default_factory=dict)
    #: partition index -> spill chunk {src: {(dst, label_id): set}}
    spills: dict = field(default_factory=dict)
    stats: EngineStats = field(default_factory=EngineStats)
    cache_entries: list = field(default_factory=list)
    #: True when the task ran inline: its edges and version bumps are
    #: already in the real store and must not be merged a second time.
    applied: bool = False
    #: Spans shipped from an out-of-process worker's trace recorder
    #: (:meth:`repro.obs.trace.TraceRecorder.ship` payload); None when
    #: tracing is off or the task ran inline against the shared recorder.
    trace: dict | None = None
    #: Gauge rows shipped from an out-of-process worker's resource
    #: sampler (:meth:`repro.obs.profile.ResourceSampler.ship` payload);
    #: None when profiling is off or the task ran inline.
    telemetry: dict | None = None


def _encode_edge_rows(edges: list) -> bytes:
    """Pack ``(src, dst, label_id, encoding)`` tuples into one columnar
    slice (v2 wire format, rows kept in insertion order)."""
    src = array("q")
    dst = array("q")
    label = array("q")
    enc_local = array("q")
    local: dict = {}
    encodings: list = []
    for s, d, l, encoding in edges:
        lid = local.get(encoding)
        if lid is None:
            lid = local[encoding] = len(encodings)
            encodings.append(encoding)
        src.append(s)
        dst.append(d)
        label.append(l)
        enc_local.append(lid)
    return serialize.encode_columnar(src, dst, label, enc_local, encodings)


def _decode_edge_rows(data: bytes) -> dict:
    """Back to the ``{src: {(dst, label): set[encoding]}}`` chunk shape.

    ``ColumnarFile.to_dict`` groups rows in file order -- which
    :func:`_encode_edge_rows` made insertion order -- so the chunk's
    dict/set construction order (and therefore every downstream
    witness-capped merge) is identical to building it from the tuple
    list directly.
    """
    return serialize.parse_columnar(data).to_dict()


# -- worker side ---------------------------------------------------------------

#: Set in the parent immediately before the pool forks; inherited by the
#: children via copy-on-write, never pickled.
_FORK_STATE: dict | None = None

#: Per-process lazily built worker engine.
_WORKER: "_WorkerEngine | None" = None


class _LoggingLRU(LRUCache):
    """LRU that records entries added since the last drain, so the worker
    can ship its freshest feasibility verdicts back to the coordinator."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self.added: list = []

    def put(self, key, value) -> None:
        if key not in self._data:
            self.added.append((key, value))
        super().put(key, value)

    def seed(self, entries) -> None:
        """Fold coordinator-broadcast entries in without re-logging them."""
        for key, value in entries:
            if key not in self._data:
                super().put(key, value)

    def drain_added(self, cap: int) -> list:
        added, self.added = self.added, []
        return added[-cap:] if len(added) > cap else added


class _WorkerStore:
    """Duck-typed store view for one out-of-process task.

    Loads the pair's partitions from their files through a small
    version-validated cache of decoded :class:`EdgeColumns` (the
    persistent worker sees the same partitions wave after wave, interning
    into the worker-local encoding table), never splits, and records
    deltas for unloaded partitions as in-memory spill chunks.
    """

    def __init__(self, stats: EngineStats, table: EncodingTable):
        self.stats = stats
        self.table = table
        self.partitions: dict = {}
        self._los: list = []
        self._by_lo: list = []
        self._snapshot_versions: dict = {}
        self.spill_chunks: dict = {}
        self.dirty: set = set()
        # index -> (version the entry is valid for, decoded columns)
        self._decoded: dict = {}
        # Shared-memory plane (None when --no-shm / unsupported).
        self.shm_cache = None
        self.shm_refs: dict = {}
        self.table_ref: dict | None = None

    def set_snapshot(self, parts: dict, shm_refs: dict | None = None,
                     table_ref: dict | None = None) -> None:
        self.partitions = parts
        order = sorted(parts.values(), key=lambda p: p.lo)
        self._los = [p.lo for p in order]
        self._by_lo = order
        self._snapshot_versions = {p.index: p.version for p in order}
        self.spill_chunks = {}
        self.dirty = set()
        self.shm_refs = shm_refs or {}
        self.table_ref = table_ref
        if self.shm_cache is not None:
            self.shm_cache.stats = self.stats
            self.shm_cache.sweep()

    def load(self, part) -> EdgeColumns:
        entry = self._decoded.get(part.index)
        if entry is not None and entry[0] == part.version:
            return entry[1]
        ref = self.shm_refs.get(part.index)
        if ref is not None and self.shm_cache is not None:
            # The coordinator did NOT materialise this partition to
            # disk, so the file may be stale: attach or fail the task
            # (ShmAttachLost is a CorruptPartition; the coordinator
            # re-materialises, republishes, and retries the pair).
            with self.stats.timing("io_time"):
                try:
                    cols = self.shm_cache.attach(ref, self.table_ref)
                except shm_mod.ShmAttachLost:
                    self.stats.shm_attach_lost += 1
                    raise
            self._cache_decoded(part.index, part.version, cols)
            return cols
        with self.stats.timing("io_time"):
            try:
                with open(part.path, "rb") as f:
                    parsed = serialize.parse_columnar(f.read())
            except serialize.CorruptPartition:
                raise
            except Exception as exc:
                # Surface *any* unreadable file as CorruptPartition so the
                # coordinator's retry layer can rebuild it, rather than
                # letting an OSError abort the whole run.
                raise serialize.CorruptPartition(
                    "unreadable partition file"
                    f" {os.path.basename(part.path)}: {exc}"
                ) from exc
            cols = EdgeColumns.from_file(parsed, self.table)
        self._cache_decoded(part.index, part.version, cols)
        return cols

    def _cache_decoded(self, index: int, version: int, cols) -> None:
        self._decoded[index] = (version, cols)
        while len(self._decoded) > WORKER_CACHE_SLOTS:
            victim = next(iter(self._decoded))
            if victim == index:
                break
            del self._decoded[victim]

    def save(self, part, cols) -> None:
        part.edge_count = cols.edge_count
        part.byte_estimate = cols.columnar_bytes()
        self.dirty.add(part.index)
        # The coordinator bumps the canonical version by exactly one when
        # it merges this task's new edges; cache the decoded copy
        # optimistically under that version (NOT part.version, which the
        # engine bumped once per inserted edge during processing).  If
        # spill chunks from other pairs bump it further, the version
        # check forces a clean reload.
        self._cache_decoded(
            part.index, self._snapshot_versions[part.index] + 1, cols
        )

    def partition_of(self, src: int):
        at = bisect_right(self._los, src) - 1
        if at >= 0:
            part = self._by_lo[at]
            if part.owns(src):
                return part
        raise KeyError(f"no partition owns vertex {src}")

    def needs_split(self, part) -> bool:
        return False  # splits are the coordinator's job, between waves

    def append_delta(self, part, chunk: dict) -> None:
        target = self.spill_chunks.setdefault(part.index, {})
        _merge_edges(target, chunk)


class _WorkerEngine(GraphEngine):
    """Engine variant for pair tasks: delta seeding, no splits, and a
    logging LRU whose tuple-keyed entries ride back to the coordinator
    (the id-keyed memos of the base engine stay process-local)."""

    def __init__(self, icfet, grammar, options, graph, store=None):
        super().__init__(icfet, grammar, options)
        self.cache = _LoggingLRU(options.cache_capacity)
        # Wave broadcasts seed this LRU with coordinator entries whose
        # ids the local feasible memo has never seen.
        self._lru_external = True
        self._graph = graph
        self._inline_mode = store is not None
        if store is not None:
            # Inline task: share the real store's interning so ids in
            # its cached EdgeColumns stay meaningful.
            self._store = store
            self._enc = store.table
        else:
            self._store = _WorkerStore(self.stats, self._enc)
            if options.shm and shm_mod.available():
                self._store.shm_cache = shm_mod.ShmAttachCache(
                    self._enc, stats=self.stats, faults=self.faults
                )
        # Out-of-process workers record into their own recorder (the
        # coordinator's, inherited through fork, would be invisible to
        # the parent) and ship drained spans back in each WaveResult;
        # the inline engine shares the coordinator's recorder directly
        # and must not ship (ship() drains).
        self._ships_trace = False
        if store is None and self.trace.enabled:
            from repro.obs.trace import TraceRecorder

            self.trace = TraceRecorder(role="worker")
            self._ships_trace = True
        # Same scheme for telemetry: the coordinator's sampler object
        # crosses the fork, but its thread does not -- an out-of-process
        # worker builds a fresh sampler (reading only the cadence) and
        # ships drained rows back in each WaveResult.
        self._sampler = None
        if store is None and options.sampler is not None:
            from repro.obs.profile import ResourceSampler

            self._sampler = ResourceSampler(
                interval=options.sampler.interval, role="worker"
            )
            self._sampler.start()
        from repro.grammar.cfg_grammar import ComposeContext

        self._ctx = ComposeContext(
            feasible=self._feasible, vertex=graph.vertices.lookup
        )
        self._deadline = None
        self._task_deltas: dict = {}

    def _pair_body(self, i: int, j: int) -> None:
        """Semi-naive worklist over one pair.

        Unlike the serial drain -- which composes new edges only as
        *left* operands and relies on whole-pair reprocessing to catch
        old-left x new-right compositions -- this maintains a reverse
        index of relevant-source in-edges and composes every new edge as
        a right operand too.  One processing therefore reaches true
        in-pair closure, which is what lets the coordinator mark pairs
        with their post-processing versions (no quiescence re-runs), and
        a reprocessing seeds only from the pair's delta edges.
        """
        store = self._store
        parts = {i: store.partitions[i]}
        loaded = {i: store.load(store.partitions[i])}
        if j != i:
            parts[j] = store.partitions[j]
            loaded[j] = store.load(store.partitions[j])
        dirty: set = set()
        spills: dict = {}
        rel_src = self._rel_src_id
        rel_tgt = self._rel_tgt_id
        intern = self._enc.intern

        def out_rows(v: int):
            for index, part in parts.items():
                if part.owns(v):
                    return loaded[index].out_rows(v)
            return None

        def owned(v: int) -> bool:
            return any(part.owns(v) for part in parts.values())

        frontier: list = []
        rhs: list = []
        # A left operand is only ever joined through its destination, so
        # edges pointing outside the pair can't compose here; skipping
        # them (unlike the serial engine, which seeds and discards them)
        # removes the O(P) frontier churn of wide stores.
        in_index: dict = {}
        self._pair_owned = owned
        for cols in loaded.values():
            for src, dst, label_id, eid in cols.iter_rows():
                if owned(dst) and rel_src(label_id):
                    in_index.setdefault(dst, []).append((src, label_id, eid))
        # The new-edge sink (installed by run_task) keeps both live.
        self._pair_in_index = in_index
        self._pair_rhs = rhs

        seeded: set = set()
        deltas = [self._task_deltas.get(index) for index in parts]
        if any(delta is None for delta in deltas):
            # First processing (or delta log invalidated by a split):
            # seed with every relevant-source edge joinable in the pair.
            for cols in loaded.values():
                for row in cols.iter_rows():
                    if owned(row[1]) and rel_src(row[2]):
                        frontier.append(row)
        else:
            new_edges = [
                (src, dst, label_id, intern(encoding))
                for delta in deltas
                for src, dst, label_id, encoding in delta
            ]
            seeded = set(new_edges)
            for edge in new_edges:
                if owned(edge[1]) and rel_src(edge[2]):
                    frontier.append(edge)
                if rel_tgt(edge[2]):
                    rhs.append(edge)

        stats = self.stats
        from repro.engine import kernel as kernel_mod

        while frontier or rhs:
            if frontier and self._kernel is not None:
                # Same batched kernel as the serial engine, so serial
                # and parallel runs stay byte-identical per path.
                kernel_mod.drain(self, loaded, parts, spills, dirty, frontier)
            while frontier:
                # Same merge-join drain as the serial engine: sort the
                # round's left operands by join vertex, probe each
                # distinct vertex's sorted right-hand run once.
                batch = frontier
                frontier = []
                batch.sort(key=lambda edge: edge[1])
                stats.join_batches += 1
                at, n = 0, len(batch)
                while at < n:
                    dst = batch[at][1]
                    end = at + 1
                    while end < n and batch[end][1] == dst:
                        end += 1
                    rows = out_rows(dst)
                    if rows:
                        stats.join_probes += 1
                        rows = [row for row in rows if rel_tgt(row[1])]
                    if rows:
                        for k in range(at, end):
                            src, _, label1_id, enc1 = batch[k]
                            for dst2, label2_id, enc2 in rows:
                                self._compose_edges(
                                    src, dst, label1_id, enc1,
                                    dst2, label2_id, enc2,
                                    loaded, parts, spills, dirty, frontier,
                                )
                    at = end
            if rhs:
                src2, dst2, label2_id, enc2 = item = rhs.pop()
                # Seeded rights were already present when the seeded
                # lefts drained, so skipping seeded x seeded here loses
                # nothing; runtime-inserted edges get no such guarantee
                # (a left may have drained before this right appeared)
                # and duplicate attempts simply dedup away on insert.
                item_seeded = item in seeded
                for src1, label1_id, enc1 in list(in_index.get(src2, ())):
                    if item_seeded and (src1, src2, label1_id, enc1) in seeded:
                        continue
                    self._compose_edges(
                        src1, src2, label1_id, enc1, dst2, label2_id, enc2,
                        loaded, parts, spills, dirty, frontier,
                    )

        self._flush_spills(spills)
        self._finalize_pair(loaded, parts, dirty)

    def run_task(self, task: WaveTask) -> WaveResult:
        busy_start = time.perf_counter()
        self.stats = EngineStats()
        if self.options.metrics:
            self.stats.ensure_metrics()
        store = self._store
        store.stats = self.stats
        store.set_snapshot(task.parts, task.shm, task.table_ref)
        self._task_deltas = task.deltas
        self.cache.seed(task.cache_seed)
        labels = self._graph.labels
        labels_before = len(labels)

        new_edges: dict = {}
        rel_src = self._rel_src_id
        rel_tgt = self._rel_tgt_id
        decode = self._enc.decode

        def sink(owner, src, dst, label_id, eid):
            new_edges.setdefault(owner, []).append(
                (src, dst, label_id, decode(eid))
            )
            if rel_src(label_id) and self._pair_owned(dst):
                self._pair_in_index.setdefault(dst, []).append(
                    (src, label_id, eid)
                )
            if rel_tgt(label_id):
                self._pair_rhs.append((src, dst, label_id, eid))

        self._new_edge_sink = sink
        try:
            self._process_pair(*task.pair)
        finally:
            self._new_edge_sink = None
        if len(labels) != labels_before:
            fresh = [labels.lookup(i) for i in range(labels_before, len(labels))]
            raise RuntimeError(
                "parallel worker interned labels the coordinator never saw"
                f" ({fresh!r}); Grammar.closure_labels() is incomplete"
            )
        if self._inline_mode:
            edges_out = {i: new_edges.get(i, []) for i in store.dirty}
            columns_out = {}
        else:
            # Compact columnar slices over the wire instead of per-edge
            # tuples; the coordinator's decode rebuilds the identical
            # chunk (see _decode_edge_rows).
            edges_out = {}
            columns_out = {
                i: _encode_edge_rows(new_edges.get(i, []))
                for i in store.dirty
            }
        self.stats.worker_busy_s += time.perf_counter() - busy_start
        return WaveResult(
            pair=task.pair,
            new_edges=edges_out,
            columns=columns_out,
            spills=store.spill_chunks,
            stats=self.stats,
            cache_entries=self.cache.drain_added(CACHE_LOG_CAP),
            trace=self.trace.ship() if self._ships_trace else None,
            telemetry=(
                self._sampler.ship() if self._sampler is not None else None
            ),
        )


def _worker_init() -> None:
    global _WORKER
    if sys.platform.startswith("linux"):
        # If the coordinator is killed outright (e.g. the fault harness's
        # kill_run), idle workers would otherwise block forever on the
        # executor's call queue; ask the kernel to reap us with it.
        try:
            import ctypes
            import signal

            ctypes.CDLL(None).prctl(1, signal.SIGTERM)  # PR_SET_PDEATHSIG
        except Exception:
            pass
    state = _FORK_STATE
    _WORKER = _WorkerEngine(
        state["icfet"], state["grammar"], state["options"], state["graph"]
    )


def _worker_run(task: WaveTask) -> WaveResult:
    spec = _WORKER.faults.fire("worker-task")
    if spec is not None:
        _WORKER.faults.kill_self()
    return _WORKER.run_task(task)


# -- coordinator side ----------------------------------------------------------


class _InlineStore(_WorkerStore):
    """Worker-store facade over the coordinator's real store, used for
    pairs processed in the coordinator process: loads and saves go
    through the store's write-back cache (no IPC, no redundant decode,
    shared encoding table), spills are still collected for the
    coordinator's dedup merge, and the I/O the real store does on our
    behalf is accounted to the inline engine's stats so the pair's
    compute time stays truthful."""

    def __init__(self, real):
        super().__init__(real.stats, real.table)
        self._real = real

    def set_snapshot(self, parts, shm_refs=None, table_ref=None) -> None:
        # Real partitions, not views; shared memory never applies here.
        self.partitions = self._real.partitions
        self.spill_chunks = {}
        self.dirty = set()

    def load(self, part) -> EdgeColumns:
        real = self._real
        saved, real.stats = real.stats, self.stats
        try:
            return real.load(part)
        finally:
            real.stats = saved

    def save(self, part, cols) -> None:
        self.dirty.add(part.index)
        real = self._real
        saved, real.stats = real.stats, self.stats
        try:
            real.save(part, cols)
        finally:
            real.stats = saved

    def partition_of(self, src: int):
        return self._real.partition_of(src)


class _JoinIndex:
    """Per-partition set of destinations of relevant-source edges.

    A pair can only produce edges if some relevant-source edge in one of
    its partitions points *into* the pair, so a pair whose partitions'
    destination sets both miss both vertex intervals is provably inert
    and can be retired without even loading it -- this is what keeps the
    first-pass cost of a P-partition store from growing with P^2 on
    phases whose facts are localised.  Destinations are tracked as sets
    (over-approximations never skip wrongly: entries are only added,
    except on splits which rebuild both halves from their actual edges).
    """

    def __init__(self, relevant_source, lookup):
        self._relevant_source = relevant_source
        self._lookup = lookup
        self._rel_memo: dict = {}
        self._sets: dict = {}
        self._sorted: dict = {}  # index -> sorted snapshot (None = stale)

    def _relevant(self, label_id: int) -> bool:
        value = self._rel_memo.get(label_id)
        if value is None:
            value = self._rel_memo[label_id] = self._relevant_source(
                self._lookup(label_id)
            )
        return value

    def add(self, index: int, dst: int, label_id: int) -> None:
        if self._relevant(label_id):
            self._sets.setdefault(index, set()).add(dst)
            self._sorted[index] = None

    def rebuild(self, index: int, cols: EdgeColumns) -> None:
        dsts = set()
        for _src, dst, label_id, _eid in cols.iter_rows():
            if self._relevant(label_id):
                dsts.add(dst)
        self._sets[index] = dsts
        self._sorted[index] = None

    def _overlaps(self, index: int, lo: int, hi: int) -> bool:
        snapshot = self._sorted.get(index)
        if snapshot is None:
            snapshot = sorted(self._sets.get(index, ()))
            self._sorted[index] = snapshot
        at = bisect_right(snapshot, lo - 1)
        return at < len(snapshot) and snapshot[at] < hi

    def pair_has_join(self, partitions, pair) -> bool:
        for index in set(pair):
            for other in set(pair):
                part = partitions[other]
                if self._overlaps(index, part.lo, part.hi):
                    return True
        return False


class ParallelCoordinator:
    """Drives the wave loop over an already-initialised engine/store."""

    def __init__(self, engine: GraphEngine):
        self.engine = engine
        self.store = engine._store
        self.stats = engine.stats
        self.options = engine.options

    def run(self) -> None:
        engine = self.engine
        # Workers must never allocate label ids, so intern everything the
        # grammar can ever produce before forking.
        labels = engine._graph.labels
        initial = [label for _i, label in labels.items()]
        for label in engine.grammar.closure_labels(initial):
            labels.intern(label)

        self._pool = None
        self._ctx = None
        self._procs = effective_workers(self.options)
        if self._procs > 1 and self.options.parallel_dispatch != "inline":
            try:
                self._ctx = multiprocessing.get_context("fork")
            except ValueError:  # no fork on this platform: run inline
                self._ctx = None
            if self._ctx is not None:
                global _FORK_STATE
                _FORK_STATE = {
                    "icfet": engine.icfet,
                    "grammar": engine.grammar,
                    "options": engine.options,
                    "graph": engine._graph,
                }
                self._pool = self._make_pool()
        # Shared-memory hub: only worth anything with a real pool, and
        # only where POSIX named segments exist.  A broken hub (ENOSPC
        # on /dev/shm, say) degrades to the materialize-to-disk path.
        self._hub = None
        if self._pool is not None and self.options.shm and shm_mod.available():
            self._hub = shm_mod.ShmHub(
                shm_mod.workdir_tag(self.store.workdir), stats=self.stats
            )
        sampler = self.options.sampler
        if sampler is not None and self._hub is not None:
            sampler.bind("shm_bytes_mapped", self._hub.mapped_bytes)
        # Stratum planner: resolve --shard-by-source ("auto" = one
        # stratum per pool slot; the planner engages from 2 strata up,
        # since 1 stratum is definitionally the serial pair order).
        raw = self.options.shard_by_source
        if raw in (None, False, 0, "off"):
            strata = 0
        elif raw == "auto":
            strata = self._procs if self._pool is not None else 0
        else:
            strata = max(0, int(raw))
        self._planner = (
            StratumPlanner(self.store, strata) if strata > 1 else None
        )
        self.stats.strata = strata
        self._steal = (
            self.options.steal
            and self._pool is not None
            and self.options.max_pairs is None
        )
        self._inline = _WorkerEngine(
            engine.icfet, engine.grammar, engine.options, engine._graph,
            store=_InlineStore(self.store),
        )
        self._joins = _JoinIndex(engine.grammar.relevant_source, labels.lookup)
        if engine._resume_manifest is not None:
            # Resumed run: the restored partitions hold input *and*
            # derived edges (the graph's edge map only the former), so
            # rebuild the destination sets from the files themselves.
            for part in self.store.partitions:
                self._joins.rebuild(part.index, self.store.load(part))
        else:
            # Seed the join index from the initial graph (partition
            # contents at this point are exactly the post-derivation
            # input edges).
            for src, targets in engine._graph.edges.items():
                index = self.store.partition_of(src).index
                for dst, label_id in targets:
                    self._joins.add(index, dst, label_id)
        try:
            self._wave_loop()
        finally:
            _FORK_STATE = None
            if sampler is not None and self._hub is not None:
                sampler.unbind("shm_bytes_mapped")
            if self._pool is not None:
                self._pool.shutdown(wait=True, cancel_futures=True)
            if self._hub is not None:
                self._hub.close()

    def _make_pool(self) -> ProcessPoolExecutor:
        """A fresh fork-context executor; workers inherit ``_FORK_STATE``
        (set before the first submit forks them) copy-on-write."""
        return ProcessPoolExecutor(
            max_workers=self._procs,
            mp_context=self._ctx,
            initializer=_worker_init,
        )

    def _rebuild_pool(self) -> None:
        """Replace a broken executor (a worker died abruptly; the
        executor marks itself unusable) with a fresh one."""
        old, self._pool = self._pool, None
        try:
            old.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self._pool = self._make_pool()

    def _run_inline(self, task: WaveTask) -> WaveResult:
        result = self._inline.run_task(task)
        result.applied = True
        return result

    def _publish(self, index: int) -> dict | None:
        """Publish one partition to shared memory; None means the worker
        must fall back to the file (caller materialises it)."""
        hub = self._hub
        if hub is None:
            return None
        store = self.store
        part = store.partitions[index]
        return hub.publish(part, store.table, lambda: store.load(part))

    def _stage_pair(self, task: WaveTask) -> None:
        """Make a pooled pair's partitions reachable by a worker: publish
        each to shared memory, or materialise to disk those the hub
        could not take.  Refreshes ``task.shm``/``task.table_ref`` and
        the pair's own entries in ``task.parts`` -- a stolen pair's
        partitions may have advanced since the wave snapshot, and a
        stale view version would let the worker serve a stale decoded
        copy from its version cache (the delta seeds assume the base
        content contains them)."""
        store = self.store
        refs = {}
        for index in set(task.pair):
            ref = self._publish(index)
            if ref is None:
                store.materialize(store.partitions[index])
            else:
                refs[index] = ref
            if task.parts is not None:
                task.parts[index] = self._view(store.partitions[index])
        task.shm = refs
        task.table_ref = self._hub.table_ref if self._hub else None

    @staticmethod
    def _view(p) -> _PartView:
        return _PartView(
            index=p.index, lo=p.lo, hi=p.hi, path=p.path,
            version=p.version, edge_count=p.edge_count,
            byte_estimate=p.byte_estimate,
        )

    # -- retry / quarantine ------------------------------------------------------

    def _attempt_inline(self, task: WaveTask) -> WaveResult:
        """Run one task in-process, retrying across CorruptPartition the
        same way pooled tasks are requeued."""
        while True:
            try:
                return self._run_inline(task)
            except serialize.CorruptPartition as exc:
                if task.attempt >= self.options.max_retries:
                    return self._quarantine_task(task, exc)
                task.attempt += 1
                self._recover_task(task, exc)

    def _submit(self, task: WaveTask):
        """Submit one task, transparently replacing a just-broken pool."""
        try:
            return self._pool.submit(_worker_run, task)
        except BrokenProcessPool:
            self._rebuild_pool()
            return self._pool.submit(_worker_run, task)

    def _retire_if_dead(self, pair, logs, epochs, last_pos) -> bool:
        """Retire a quarantined or provably inert pair without loading
        it: nothing to seed means nothing to find, so mark it processed
        at its current versions and advance its delta positions.  True
        when the pair was retired."""
        engine = self.engine
        scheduler = engine._scheduler
        if engine._quarantined_parts and (
            pair[0] in engine._quarantined_parts
            or pair[1] in engine._quarantined_parts
        ):
            # Unrecoverable partition: retire the pair silently (the
            # quarantine already printed a warning) so it stops
            # re-entering wave selection.
            pass
        elif self._joins.pair_has_join(self.store.partitions, pair):
            return False
        else:
            self.stats.pairs_skipped += 1
        scheduler.mark_processed(pair, scheduler.captured_versions(pair))
        last_pos[pair] = (
            epochs[pair[0]], len(logs.setdefault(pair[0], [])),
            epochs[pair[1]], len(logs.setdefault(pair[1], [])),
        )
        return True

    def _stream_wave(
        self, tasks, absorb, build_task, seed_fn, logs, epochs, last_pos
    ) -> None:
        """Dispatch a wave's pooled tasks, absorb results strictly in
        dispatch (``seq``) order, and -- when stealing is on -- refill
        freed pool slots with further eligible pairs between absorbs.

        Determinism: absorption order is the dispatch order regardless
        of completion order, and every steal decision is keyed to the
        absorb count (never to wall-clock), so the schedule -- and with
        it the witness-capped output -- is reproducible run over run.
        Free slots are therefore counted against the *dispatched-but-
        unabsorbed* set, never against the live future set: a completed
        task waiting in the reorder buffer no longer occupies a real
        pool slot, but counting its slot as free would make refill
        points (and with them the busy set each steal selects under)
        depend on completion timing.
        The busy set handed to the scheduler claims the partitions of
        every dispatched-but-unabsorbed pair, *including* completed ones
        waiting in the reorder buffer; that preserves the merge
        invariant (only a task's own edges reach its partitions between
        its dispatch and its mark), because any task absorbed earlier
        either finished before this one's delta snapshot or was
        partition-disjoint from it while in flight.

        Failed tasks (dead worker, corrupt partition) are requeued up to
        ``--max-retries`` and still absorb at their original seq, so a
        faulted run replays the clean run's merge order exactly.
        """
        engine = self.engine
        scheduler = engine._scheduler
        trace = getattr(engine, "trace", NULL_RECORDER)
        inflight: dict = {}     # future -> task
        outstanding: dict = {}  # seq -> task (dispatched, unabsorbed)
        buffered: dict = {}     # seq -> result (reorder buffer)
        dispatched = len(tasks)
        steal_budget = STEAL_FACTOR * self._procs if self._steal else 0

        for task in tasks[1:]:
            self._stage_pair(task)
            outstanding[task.seq] = task
            inflight[self._submit(task)] = task
        outstanding[0] = tasks[0]
        buffered[0] = self._attempt_inline(tasks[0])

        def refill() -> None:
            nonlocal dispatched, steal_budget
            while steal_budget > 0 and len(outstanding) < self._procs:
                if engine._deadline is not None and (
                    time.perf_counter() > engine._deadline
                ):
                    steal_budget = 0
                    return
                busy: set = set()
                for t in outstanding.values():
                    busy.update(t.pair)
                got = scheduler.select_wave(1, self._planner, busy=busy)
                if not got:
                    return
                pair = got[0]
                if self._retire_if_dead(pair, logs, epochs, last_pos):
                    continue
                task = build_task(pair, dispatched, seed_fn())
                dispatched += 1
                steal_budget -= 1
                self.stats.pairs_stolen += 1
                trace.instant(
                    "steal", cat="steal",
                    pair=f"{pair[0]},{pair[1]}", seq=task.seq,
                )
                self._stage_pair(task)
                outstanding[task.seq] = task
                inflight[self._submit(task)] = task

        cursor = 0
        while True:
            while cursor in buffered:
                result = buffered.pop(cursor)
                del outstanding[cursor]
                absorb(result)
                cursor += 1
                refill()
            if not inflight:
                break
            done, _pending = futures_wait(
                list(inflight), return_when=FIRST_COMPLETED
            )
            failed = []
            broken = False
            for future in done:
                task = inflight.pop(future)
                try:
                    buffered[task.seq] = future.result()
                except BrokenProcessPool as exc:
                    broken = True
                    failed.append((task, exc, False))
                except serialize.CorruptPartition as exc:
                    failed.append((task, exc, True))
            if broken:
                # Every other future on the broken executor is doomed as
                # we reach it; harvest any that completed first, requeue
                # the rest onto the fresh pool.
                self._rebuild_pool()
                for future, task in list(inflight.items()):
                    del inflight[future]
                    try:
                        buffered[task.seq] = future.result(timeout=0)
                    except serialize.CorruptPartition as exc:
                        failed.append((task, exc, True))
                    except Exception as exc:
                        failed.append((task, exc, False))
            for task, exc, needs_recover in failed:
                if task.attempt >= self.options.max_retries:
                    buffered[task.seq] = self._quarantine_task(task, exc)
                    continue
                task.attempt += 1
                self.stats.retries += 1
                if needs_recover:
                    self._recover_task(task, exc, count_retry=False)
                inflight[self._submit(task)] = task

    def _recover_task(self, task: WaveTask, exc, count_retry=True) -> None:
        """Probe the pair's partition *files* (workers read them
        directly, so the coordinator's write-back cache must not mask
        the damage) and rewrite any unreadable one from its best
        surviving copy (:meth:`PartitionStore.rebuild`)."""
        engine = self.engine
        stats = self.stats
        store = self.store
        if count_retry:
            stats.retries += 1
        trace = engine.trace
        tick = trace.begin() if trace.enabled else 0.0
        for index in set(task.pair):
            part = store.partitions[index]
            if store.prefetch is not None:
                store.prefetch.invalidate(index)
            if self._hub is not None:
                # The published segment may be the casualty (unlinked or
                # torn): retire it so the republish below gets a fresh
                # generation instead of handing back a dead ref.
                self._hub.invalidate(index)
            try:
                with open(part.path, "rb") as f:
                    serialize.parse_columnar(f.read())
            except Exception:
                if not store.rebuild(part):
                    engine._quarantine_partition(part, exc)
        if task.parts is not None:
            # Pooled task: re-stage so the requeued attempt sees live
            # segments (or current files) rather than the refs that
            # just failed.
            self._stage_pair(task)
        if tick:
            trace.end(
                "retry", tick, cat="fault",
                pair=f"{task.pair[0]},{task.pair[1]}", attempt=task.attempt,
            )

    def _quarantine_task(self, task: WaveTask, exc) -> WaveResult:
        """Give up on one pair: warn, count, and return an empty applied
        result so the merge loop retires the pair normally."""
        self.stats.pairs_quarantined += 1
        print(
            f"grapple: giving up on partition pair {task.pair[0]},"
            f"{task.pair[1]} after {self.options.max_retries} retries:"
            f" {exc}",
            file=sys.stderr,
        )
        return WaveResult(pair=task.pair, applied=True)

    def _wave_loop(self) -> None:
        stats = self.stats
        store = self.store
        engine = self.engine
        trace = engine.trace
        heartbeat = engine._heartbeat
        sampler = self.options.sampler
        scheduler = PairScheduler(store)
        engine._scheduler = scheduler
        if engine._scheduler_seed:
            scheduler.restore(engine._scheduler_seed)
        # Per-partition delta logs: every edge added since initialisation,
        # in arrival order (tuple-encoded -- they cross into workers).
        # last_pos[pair] records (epoch_i, len_i, epoch_j, len_j) at
        # dispatch; an epoch mismatch (the partition split since) forces
        # full reprocessing of the pair.
        logs: dict = {i: [] for i in range(len(store.partitions))}
        epochs: dict = {i: 0 for i in range(len(store.partitions))}
        last_pos: dict = {}
        warm_cache: dict = {}
        fresh_entries: list = []

        while True:
            if engine._deadline is not None and (
                time.perf_counter() > engine._deadline
            ):
                engine.timed_out = True
                stats.timed_out = True
                break
            # Without a pool there is nothing to overlap: a wide wave
            # only disperses the store cache's locality and schedules
            # pairs on staler eligibility, so fall back to one pair at a
            # time (the serial order, still delta-seeded).
            width = self.options.workers if self._pool is not None else 1
            if self.options.max_pairs is not None:
                width = min(
                    width, self.options.max_pairs - stats.pairs_processed
                )
                if width <= 0:
                    break
            wave = scheduler.select_wave(width, self._planner)
            if not wave:
                break
            # Retire provably inert pairs without loading them: nothing
            # to seed means nothing to find, so mark them processed at
            # their current versions and delta positions.
            live = [
                pair for pair in wave
                if not self._retire_if_dead(pair, logs, epochs, last_pos)
            ]
            wave = live
            if not wave:
                continue
            stats.waves += 1
            # One timestamp anchors two nested spans: "wave" covers
            # dispatch + result collection (merges now interleave with
            # collection), "iteration" the whole cycle including spill
            # merges and between-wave splits.
            wave_start = trace.begin() if trace.enabled else 0.0
            cycle_start = time.perf_counter()
            # The first pair of every wave runs in-process (against the
            # write-back cache, no IPC) while the pool -- when there is
            # one -- chews the rest.
            pooled = wave[1:] if self._pool is not None else ()

            seed = fresh_entries[-CACHE_SEED_CAP:]
            fresh_entries = []
            snapshot = None
            if pooled:
                snapshot = {
                    p.index: self._view(p) for p in store.partitions
                }

            def build_task(pair, seq, cache_seed):
                deltas = {}
                positions = last_pos.get(pair)
                for slot, index in enumerate(dict.fromkeys(pair)):
                    if (
                        positions is not None
                        and positions[2 * slot] == epochs[index]
                    ):
                        deltas[index] = logs[index][positions[2 * slot + 1]:]
                    else:
                        deltas[index] = None
                task = WaveTask(
                    pair=pair,
                    parts=snapshot if seq > 0 and pooled else None,
                    deltas=deltas,
                    cache_seed=cache_seed,
                    seq=seq,
                )
                last_pos[pair] = (
                    epochs[pair[0]], len(logs[pair[0]]),
                    epochs[pair[1]], len(logs[pair[1]]),
                )
                return task

            tasks = [
                build_task(pair, seq, seed) for seq, pair in enumerate(wave)
            ]

            # -- streaming collection + steal refills -----------------------
            #
            # Results are absorbed strictly in dispatch (seq) order;
            # after each absorb the coordinator may dispatch a "stolen"
            # pair into a free pool slot.  Keying every steal decision
            # to the absorb count keeps the schedule deterministic, and
            # claiming the partitions of *all* dispatched-but-unabsorbed
            # tasks (not just unfinished ones) preserves the merge
            # invariant: between a task's dispatch and its mark, only
            # its own edges reach its partitions.
            touched: set = set()
            spill_results: list = []
            pool_busy = [0.0]

            def absorb(result):
                # The merge below is THE serialized stage the profiler
                # exists to attribute: span it so the critical-path
                # analyzer can tell absorb time from genuine idle.
                tick = trace.begin() if trace.enabled else 0.0
                trace.absorb(result.trace)
                if sampler is not None:
                    sampler.absorb(result.telemetry)
                stats.merge(result.stats)
                if not result.applied:
                    pool_busy[0] += result.stats.worker_busy_s
                stats.pairs_processed += 1
                stats.iterations = stats.pairs_processed
                merged = list(result.new_edges.items())
                merged.extend(result.columns.items())
                for index, payload in merged:
                    touched.add(index)
                    if result.applied:
                        # Inline task: its edges and version bumps
                        # already landed in the real store.
                        edges = payload
                    else:
                        if isinstance(payload, (bytes, bytearray)):
                            chunk = _decode_edge_rows(payload)
                        else:
                            chunk = {}
                            for src, dst, label_id, encoding in payload:
                                chunk.setdefault(src, {}).setdefault(
                                    (dst, label_id), set()
                                ).add(encoding)
                        edges = store.merge_chunk(
                            store.partitions[index], chunk
                        )
                    logs.setdefault(index, []).extend(edges)
                    for _src, dst, label_id, _enc in edges:
                        self._joins.add(index, dst, label_id)
                # The frontier drain reaches in-pair closure, so the
                # pair's own insertions cannot make it eligible again:
                # mark it with the *post-merge* versions and advance its
                # delta positions past its own edges.  (The serial loop
                # marks with pre-processing versions and pays one full
                # "quiescence check" recompose per dirty pair instead.)
                # Spill chunks from this wave merge below, after all
                # marks, so cross-pair edges still re-activate pairs.
                scheduler.mark_processed(
                    result.pair, scheduler.captured_versions(result.pair)
                )
                i, j = result.pair
                last_pos[result.pair] = (
                    epochs[i], len(logs.setdefault(i, [])),
                    epochs[j], len(logs.setdefault(j, [])),
                )
                for key, value in result.cache_entries:
                    if key not in warm_cache:
                        warm_cache[key] = value
                        fresh_entries.append((key, value))
                spill_results.append(result)
                if trace.enabled:
                    trace.end(
                        "absorb", tick, cat="merge",
                        pair=f"{i},{j}", inline=result.applied,
                    )

            if pooled:
                self._stream_wave(
                    tasks, absorb, build_task,
                    lambda: fresh_entries[-CACHE_SEED_CAP:],
                    logs, epochs, last_pos,
                )
            else:
                for task in tasks:
                    absorb(self._attempt_inline(task))
            if trace.enabled:
                trace.end(
                    "wave", wave_start, cat="wave",
                    wave=stats.waves, width=len(wave),
                )
            if pooled:
                elapsed = time.perf_counter() - cycle_start
                stats.worker_idle_s += max(
                    0.0, self._procs * elapsed - pool_busy[0]
                )

            # Spill chunks after the pairs' own edges so the dedup merge
            # sees each partition's freshest contents.  Chunks are
            # combined per partition first, and partitions not resident
            # in the write-back cache take the serial engine's cheap
            # delta-file append instead of a load-merge-save round trip;
            # their logs then over-approximate (duplicates are harmless
            # seeds -- they recompose into edges that dedup away).
            spill_tick = trace.begin() if trace.enabled else 0.0
            combined: dict = {}
            for result in spill_results:
                for index, chunk in result.spills.items():
                    _merge_edges(combined.setdefault(index, {}), chunk)
            for index, chunk in combined.items():
                part = store.partitions[index]
                if store.is_cached(part):
                    added = store.merge_chunk(part, chunk)
                else:
                    store.append_delta(part, chunk)
                    added = [
                        (src, dst, label_id, encoding)
                        for src, targets in chunk.items()
                        for (dst, label_id), encodings in targets.items()
                        for encoding in encodings
                    ]
                if added:
                    logs.setdefault(index, []).extend(added)
                    touched.add(index)
                    for _src, dst, label_id, _enc in added:
                        self._joins.add(index, dst, label_id)
            if trace.enabled and combined:
                trace.end(
                    "spill-merge", spill_tick, cat="merge",
                    partitions=len(combined),
                )
            self._split_oversized(touched, logs, epochs)
            # One manifest per completed wave: everything merged above is
            # flushed durable first, so a crash from here on resumes at
            # the *next* wave (no-op when checkpointing is off).  The
            # manifest records the steal frontier -- waves only end once
            # every dispatched (stolen included) pair is absorbed, so a
            # resume replays from a quiescent point and stays
            # byte-identical.
            engine._steal_frontier = {
                "wave": stats.waves,
                "pairs_stolen": stats.pairs_stolen,
            }
            engine._write_checkpoint()
            # Wave lookahead for the I/O pipeline: the predicted next
            # wave's first pair runs inline through store.load, so start
            # its reads now.  (Pooled pairs read the files in their own
            # processes; prefetching here would not reach them.)
            if store.prefetch is not None:
                predicted = scheduler.peek_wave(max(1, width), self._planner)
                if predicted:
                    for index in set(predicted[0]):
                        store.prefetch_schedule(store.partitions[index])
            if trace.enabled:
                trace.end(
                    "iteration", wave_start,
                    iteration=stats.waves, pairs=len(wave),
                )
            if heartbeat is not None:
                heartbeat.maybe_beat(stats, store, scheduler)

    def _split_oversized(self, touched, logs: dict, epochs: dict) -> None:
        """Serial between-wave repartitioning; a split moves edges between
        partitions, so both halves' delta logs restart from scratch."""
        store = self.store
        for index in sorted(touched):
            part = store.partitions[index]
            if not store.needs_split(part):
                continue
            cols = store.load(part)
            while store.needs_split(part):
                part, cols, new_part, new_cols = store.split(part, cols)
                if new_part is None:
                    break
                logs[part.index] = []
                epochs[part.index] = epochs.get(part.index, 0) + 1
                logs[new_part.index] = []
                epochs[new_part.index] = 0
                if self._hub is not None:
                    # Both halves changed identity; retire any published
                    # segment so the next stage republishes fresh.
                    self._hub.invalidate(part.index)
                    self._hub.invalidate(new_part.index)
                self._joins.rebuild(part.index, cols)
                self._joins.rebuild(new_part.index, new_cols)
