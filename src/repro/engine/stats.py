"""Performance accounting for the engine.

The paper's Figure 9 breaks an execution into four components -- I/O,
constraint encoding/decoding (lookup), SMT solving, and in-memory edge-pair
computation -- summed across all processing threads.  :class:`EngineStats`
collects exactly those, plus the counters behind Tables 3-5.

Every field carries metadata describing how it aggregates:

* ``kind``: ``counter`` (sums), ``gauge`` (point-in-time, last-set-wins),
  ``flag`` (ORs), or ``registry`` (a nested
  :class:`~repro.obs.metrics.MetricsRegistry` of histograms).
* ``scope``: ``worker`` fields are summed by :meth:`EngineStats.merge`
  when a worker's delta folds into the coordinator; ``coordinator``
  fields belong to the coordinating process only and are left alone.

:meth:`merge` is derived from this metadata rather than a hand-written
field list, so a newly added counter aggregates correctly by default --
a field with no explicit metadata is treated as a summed worker counter,
the fail-safe direction (the old hand-maintained tuple silently dropped
``preprocess_time``).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields


def stat_field(default=0, kind: str = "counter", scope: str = "worker"):
    """Dataclass field with aggregation metadata (see module docstring)."""
    return field(default=default, metadata={"kind": kind, "scope": scope})


@dataclass
class EngineStats:
    io_time: float = stat_field(0.0)
    encode_time: float = stat_field(0.0)
    smt_time: float = stat_field(0.0)
    compute_time: float = stat_field(0.0)
    preprocess_time: float = stat_field(0.0)
    # Total time inside feasibility queries (decode + solve); this is the
    # quantity Table 4 compares with and without memoisation.  It overlaps
    # encode_time/smt_time and is excluded from the Figure 9 breakdown.
    feasibility_time: float = stat_field(0.0)

    iterations: int = stat_field(scope="coordinator")
    pairs_processed: int = stat_field()
    edges_before: int = stat_field(kind="gauge", scope="coordinator")
    edges_after: int = stat_field(kind="gauge", scope="coordinator")
    vertices: int = stat_field(kind="gauge", scope="coordinator")
    new_edges: int = stat_field()
    compositions_tried: int = stat_field()
    constraints_solved: int = stat_field()  # solver invocations (cache misses)
    constraint_queries: int = stat_field()  # all feasibility queries
    cache_hits: int = stat_field()
    infeasible_dropped: int = stat_field()
    encoding_overflow_dropped: int = stat_field()
    repartitions: int = stat_field(scope="coordinator")
    final_partitions: int = stat_field(kind="gauge", scope="coordinator")
    timed_out: bool = stat_field(False, kind="flag")
    # Parallel engine: number of dispatched waves of disjoint pairs, and
    # number of eligible pairs retired without processing because the
    # coordinator's join index proved them empty (coordinator-side
    # counters; 0 for a serial run, not summed by merge()).
    waves: int = stat_field(scope="coordinator")
    pairs_skipped: int = stat_field(scope="coordinator")
    # I/O pipeline: partition loads served from the background reader's
    # parse vs. loads that fell back to a synchronous read, and delta
    # frames written through the background spill writer.
    prefetch_hits: int = stat_field()
    prefetch_misses: int = stat_field()
    # Prefetched reads that failed on *corrupt* bytes (CorruptPartition),
    # counted separately from benign misses (version races, cold starts)
    # so real damage is visible and reaches the retry layer.
    prefetch_corrupt: int = stat_field()
    # Prefetched reads that failed on an *unexpected* exception -- a
    # programming error, not an I/O race or corruption.  The error is
    # re-raised on the engine thread after counting; a nonzero value in
    # a completed run means the failure was survived by retry.
    prefetch_errors: int = stat_field()
    spill_frames: int = stat_field()
    spill_bytes: int = stat_field()
    # Fault tolerance: truncated trailing delta frames dropped on read
    # (benign crash artifacts), interior delta frames discarded on CRC or
    # decode failure (real corruption; the partition's pairs recompute),
    # pair-task retries, pairs degraded to a warning after retry
    # exhaustion, partitions rebuilt from their resident cached copy, and
    # checkpoint manifests written (coordinator-side).
    delta_frames_dropped: int = stat_field()
    delta_frames_corrupt: int = stat_field()
    retries: int = stat_field(scope="coordinator")
    pairs_quarantined: int = stat_field(scope="coordinator")
    partitions_rebuilt: int = stat_field(scope="coordinator")
    partitions_quarantined: int = stat_field(scope="coordinator")
    checkpoints_written: int = stat_field(scope="coordinator")
    # Superseded workdir files (folded delta logs, torn-write temps,
    # repartition orphans) garbage-collected after a durable manifest
    # write -- keeps a long-running serve workdir from growing forever.
    checkpoint_files_pruned: int = stat_field(scope="coordinator")
    # Incremental serve daemon (repro.serve): edits answered, closure
    # pairs added/removed by the incremental transitive-closure delta,
    # and accumulated warnings retracted when their stratum re-derived.
    edits_served: int = stat_field(scope="coordinator")
    edges_rederived: int = stat_field(scope="coordinator")
    warnings_retracted: int = stat_field(scope="coordinator")
    # Merge-join frontier drain: rounds processed and distinct join
    # vertices probed against the right-hand sorted runs.
    join_batches: int = stat_field()
    join_probes: int = stat_field()
    # Batched closure kernel (engine/kernel.py): candidate chunks cut
    # for grouped feasibility, total candidates across those chunks
    # (average fill = batch_fill / kernel_batches), distinct canonical
    # constraint forms actually solved, and queries answered by an
    # already-solved form (kernel groups and lazy-path form-memo hits
    # both count here).
    kernel_batches: int = stat_field()
    batch_fill: int = stat_field()
    feasibility_groups: int = stat_field()
    group_hits: int = stat_field()
    # Shared-memory data plane (engine/shm.py): worker-side segment
    # attaches and bytes mapped, attaches that had to be abandoned
    # (segment vanished / stale -> pair retried), coordinator-side
    # partition publishes, and wall-clock a worker spent computing
    # tasks (summed exactly across processes by merge()).
    shm_attaches: int = stat_field()
    shm_bytes_mapped: int = stat_field()
    shm_attach_lost: int = stat_field()
    shm_publishes: int = stat_field(scope="coordinator")
    worker_busy_s: float = stat_field(0.0)
    # Steal/stratum scheduling (coordinator-side): pairs dispatched
    # past a wave's initial fill while results streamed back, estimated
    # pool idle seconds (slots x wall - busy), and the stratum count the
    # planner sharded sources into (0 = planner off).
    pairs_stolen: int = stat_field(scope="coordinator")
    worker_idle_s: float = stat_field(0.0, scope="coordinator")
    strata: int = stat_field(kind="gauge", scope="coordinator")
    # Optional histogram registry (solve latency, per-pair compute time and
    # edge yield, prefetch waits).  None unless metrics collection is on --
    # hot paths guard on ``is not None`` so a disabled run pays nothing.
    metrics: object = stat_field(None, kind="registry")

    def __post_init__(self) -> None:
        # Self-time stack for reentrant timing(); not a dataclass field so
        # keyword construction and equality keep their historical shape.
        self._tstack: list[float] = []

    # -- field classification --------------------------------------------------

    @classmethod
    def _meta(cls, f) -> tuple[str, str]:
        return (
            f.metadata.get("kind", "counter"),
            f.metadata.get("scope", "worker"),
        )

    @classmethod
    def summed_fields(cls) -> tuple[str, ...]:
        """Worker-scope counters: summed across processes by merge()."""
        return tuple(
            f.name
            for f in fields(cls)
            if cls._meta(f) == ("counter", "worker")
        )

    @classmethod
    def coordinator_fields(cls) -> tuple[str, ...]:
        """Fields merge() leaves alone (coordinator-only bookkeeping)."""
        return tuple(
            f.name for f in fields(cls) if f.metadata.get("scope") == "coordinator"
        )

    # -- timing ----------------------------------------------------------------

    @contextmanager
    def timing(self, component: str):
        """Attribute the block's *self-time* to ``component``.

        Reentrancy-safe: a nested timing() span's elapsed time is
        subtracted from the enclosing component, so e.g. encode_time
        accrued inside a compute_time block is not double-counted.
        """
        stack = self._tstack
        stack.append(0.0)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            child = stack.pop()
            setattr(
                self, component, getattr(self, component) + elapsed - child
            )
            if stack:
                stack[-1] += elapsed

    # -- metrics ---------------------------------------------------------------

    def ensure_metrics(self):
        """Attach (and return) the engine's standard histogram registry."""
        if self.metrics is None:
            from repro.obs.metrics import engine_metrics

            self.metrics = engine_metrics()
        return self.metrics

    def registry_view(self):
        """The full stats as a :class:`~repro.obs.metrics.MetricsRegistry`.

        Scalar fields become counters/gauges by their declared kind,
        derived rates are exported as gauges, and any attached histogram
        registry is folded in.  This is the export surface for
        ``--metrics-json`` and the benchmark reports.
        """
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        for f in fields(self):
            kind, _scope = self._meta(f)
            value = getattr(self, f.name)
            if kind == "counter":
                registry.counter(f.name).inc(value)
            elif kind == "gauge":
                registry.gauge(f.name).set(value)
            elif kind == "flag":
                registry.gauge(f.name).set(int(value))
        registry.gauge("cache_hit_rate").set(self.cache_hit_rate)
        registry.gauge("prefetch_hit_rate").set(self.prefetch_hit_rate)
        if self.metrics is not None:
            registry.merge(self.metrics)
        return registry

    # -- derived quantities ----------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        if self.constraint_queries == 0:
            return 0.0
        return self.cache_hits / self.constraint_queries

    @property
    def prefetch_hit_rate(self) -> float:
        total = self.prefetch_hits + self.prefetch_misses
        if total == 0:
            return 0.0
        return self.prefetch_hits / total

    @property
    def total_time(self) -> float:
        return (
            self.io_time + self.encode_time + self.smt_time + self.compute_time
        )

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time per component (Figure 9's series)."""
        total = self.total_time
        if total == 0:
            return {"io": 0.0, "encode": 0.0, "smt": 0.0, "compute": 0.0}
        return {
            "io": self.io_time / total,
            "encode": self.encode_time / total,
            "smt": self.smt_time / total,
            "compute": self.compute_time / total,
        }

    # -- aggregation -----------------------------------------------------------

    def merge_phase(self, other: "EngineStats") -> None:
        """Fold a *completed phase's* stats into a cross-phase total.

        Unlike :meth:`merge` (worker delta -> coordinator, which must
        leave coordinator bookkeeping alone), both sides here are final
        per-phase results, so every numeric field aggregates: counters
        sum regardless of scope, gauges sum (a whole-run edge/vertex
        total is the sum of per-phase totals), flags OR, registries
        merge.  Derived from field metadata -- a newly added field
        aggregates correctly without touching any hand-written list.
        """
        for f in fields(self):
            kind, _scope = self._meta(f)
            if kind in ("counter", "gauge"):
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )
            elif kind == "flag":
                setattr(
                    self, f.name, getattr(self, f.name) or getattr(other, f.name)
                )
            elif kind == "registry":
                theirs = getattr(other, f.name)
                if theirs is None:
                    continue
                mine = getattr(self, f.name)
                if mine is None:
                    setattr(self, f.name, theirs.clone())
                else:
                    mine.merge(theirs)

    def merge(self, other: "EngineStats") -> None:
        """Fold a worker's stats into this one (times sum across threads).

        Driven by field metadata: worker counters sum, flags OR,
        registries merge histogram-by-histogram, and coordinator-scope
        fields are left untouched.
        """
        for f in fields(self):
            kind, scope = self._meta(f)
            if scope == "coordinator":
                continue
            if kind == "counter":
                setattr(
                    self, f.name, getattr(self, f.name) + getattr(other, f.name)
                )
            elif kind == "flag":
                setattr(
                    self, f.name, getattr(self, f.name) or getattr(other, f.name)
                )
            elif kind == "registry":
                theirs = getattr(other, f.name)
                if theirs is None:
                    continue
                mine = getattr(self, f.name)
                if mine is None:
                    setattr(self, f.name, theirs.clone())
                else:
                    mine.merge(theirs)
