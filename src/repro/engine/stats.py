"""Performance accounting for the engine.

The paper's Figure 9 breaks an execution into four components -- I/O,
constraint encoding/decoding (lookup), SMT solving, and in-memory edge-pair
computation -- summed across all processing threads.  :class:`EngineStats`
collects exactly those, plus the counters behind Tables 3-5.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class EngineStats:
    io_time: float = 0.0
    encode_time: float = 0.0
    smt_time: float = 0.0
    compute_time: float = 0.0
    preprocess_time: float = 0.0
    # Total time inside feasibility queries (decode + solve); this is the
    # quantity Table 4 compares with and without memoisation.  It overlaps
    # encode_time/smt_time and is excluded from the Figure 9 breakdown.
    feasibility_time: float = 0.0

    iterations: int = 0
    pairs_processed: int = 0
    edges_before: int = 0
    edges_after: int = 0
    vertices: int = 0
    new_edges: int = 0
    compositions_tried: int = 0
    constraints_solved: int = 0  # actual solver invocations (cache misses)
    constraint_queries: int = 0  # all feasibility queries
    cache_hits: int = 0
    infeasible_dropped: int = 0
    encoding_overflow_dropped: int = 0
    repartitions: int = 0
    final_partitions: int = 0
    timed_out: bool = False
    # Parallel engine: number of dispatched waves of disjoint pairs, and
    # number of eligible pairs retired without processing because the
    # coordinator's join index proved them empty (coordinator-side
    # counters; 0 for a serial run, not summed by merge()).
    waves: int = 0
    pairs_skipped: int = 0
    # I/O pipeline: partition loads served from the background reader's
    # parse vs. loads that fell back to a synchronous read, and delta
    # frames written through the background spill writer.
    prefetch_hits: int = 0
    prefetch_misses: int = 0
    spill_frames: int = 0
    spill_bytes: int = 0
    # Merge-join frontier drain: rounds processed and distinct join
    # vertices probed against the right-hand sorted runs.
    join_batches: int = 0
    join_probes: int = 0

    @contextmanager
    def timing(self, component: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            setattr(self, component, getattr(self, component) + elapsed)

    @property
    def cache_hit_rate(self) -> float:
        if self.constraint_queries == 0:
            return 0.0
        return self.cache_hits / self.constraint_queries

    @property
    def prefetch_hit_rate(self) -> float:
        total = self.prefetch_hits + self.prefetch_misses
        if total == 0:
            return 0.0
        return self.prefetch_hits / total

    @property
    def total_time(self) -> float:
        return (
            self.io_time + self.encode_time + self.smt_time + self.compute_time
        )

    def breakdown(self) -> dict[str, float]:
        """Fractions of total time per component (Figure 9's series)."""
        total = self.total_time
        if total == 0:
            return {"io": 0.0, "encode": 0.0, "smt": 0.0, "compute": 0.0}
        return {
            "io": self.io_time / total,
            "encode": self.encode_time / total,
            "smt": self.smt_time / total,
            "compute": self.compute_time / total,
        }

    def merge(self, other: "EngineStats") -> None:
        """Fold a worker's stats into this one (times sum across threads)."""
        for name in (
            "io_time",
            "encode_time",
            "smt_time",
            "compute_time",
            "feasibility_time",
            "pairs_processed",
            "new_edges",
            "compositions_tried",
            "constraints_solved",
            "constraint_queries",
            "cache_hits",
            "infeasible_dropped",
            "encoding_overflow_dropped",
            "prefetch_hits",
            "prefetch_misses",
            "spill_frames",
            "spill_bytes",
            "join_batches",
            "join_probes",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
