"""On-disk edge partitions and the partition store.

A partition owns a half-open interval of source-vertex ids and stores every
edge whose source falls in the interval.  Partitions live on disk between
iterations; the store loads at most two at a time (the computation's pair),
buffers new edges destined for unloaded partitions in per-partition delta
files, and splits any partition whose estimated in-memory size exceeds the
budget ("eager repartitioning", §4.3).

Loaded partitions are :class:`~repro.engine.columnar.EdgeColumns` (sorted
int64 columns plus an insert overlay, encodings interned in the store's
shared :class:`~repro.engine.columnar.EncodingTable`); partition files use
the bulk columnar wire format (``serialize.encode_columnar``), so a load
is four ``frombytes`` calls plus one pass over the (small) encoding table
rather than a per-edge varint loop.  The memory budget is accounted in
columnar bytes (32 per row plus string-payload text).  Delta files remain
sequences of CRC-framed v1 payloads -- they hold small tuple-shaped
chunks arriving from spills and out-of-process workers -- optionally
written through a background :class:`~repro.engine.io_pipeline.SpillWriter`
and zlib-compressed per frame.

Durability (DESIGN.md §11): partition files are replaced atomically
(temp + fsync + rename), so a crash leaves the previous complete version
on disk; delta frames are appended in single checksummed writes, so a
crash leaves at most one truncated trailing frame, dropped on read.  A
partition's delta file is only removed *after* the next durable
partition write folds it in (``Partition.delta_folded``) -- until then
the edges it holds remain replayable.  Interior delta corruption is
salvaged around: the bad frames are discarded and the partition's
version is bumped, so every pair touching it recomputes (the closure is
a monotone fixpoint -- dropped derived edges are re-derived).
"""

from __future__ import annotations

import os
from bisect import bisect_right
from dataclasses import dataclass, field

import time

from repro.engine import serialize
from repro.engine.columnar import ROW_BYTES, EdgeColumns, EncodingTable
from repro.engine.stats import EngineStats
from repro.faults import NULL_PLAN
from repro.obs.trace import NULL_RECORDER


@dataclass
class Partition:
    """Descriptor of one on-disk partition."""

    index: int
    lo: int
    hi: int  # half-open: owns src ids in [lo, hi)
    path: str
    delta_path: str
    edge_count: int = 0
    byte_estimate: int = 0
    version: int = 0  # bumped whenever edges are added
    # True while the resident cached columns already include the delta
    # file's frames; the file itself is kept until the next durable
    # partition write so a crash before then can still replay it.
    delta_folded: bool = False

    def owns(self, src: int) -> bool:
        return self.lo <= src < self.hi


class PartitionStore:
    """Manages the set of partitions for one engine run."""

    def __init__(self, workdir: str, memory_budget: int,
                 stats: EngineStats | None = None, cache_slots: int = 4,
                 table: EncodingTable | None = None,
                 prefetch=None, spill_writer=None, trace=None,
                 faults=None):
        self.workdir = workdir
        self.memory_budget = memory_budget
        self.stats = stats or EngineStats()
        self.trace = trace if trace is not None else NULL_RECORDER
        self.faults = faults if faults is not None else NULL_PLAN
        self.table = table if table is not None else EncodingTable()
        # Optional I/O pipeline (engine/io_pipeline.py): a PrefetchReader
        # whose thread parses upcoming partitions, and a SpillWriter that
        # appends delta frames in the background.
        self.prefetch = prefetch
        self.spill_writer = spill_writer
        self.partitions: list[Partition] = []
        self._next_file = 0
        # Write-back cache of recently used partitions: index -> columns.
        # Dirty entries are flushed on eviction.  Keeping a few partitions
        # resident is what keeps the I/O share of the runtime at the few
        # percent the paper reports.
        self.cache_slots = max(2, cache_slots)
        self._cache: dict[int, EdgeColumns] = {}
        self._dirty: set[int] = set()
        # Sorted (lo, index) view of the partition intervals for bisect
        # lookup; rebuilt lazily after any boundary change.
        self._bounds_los: list[int] = []
        self._bounds_index: list[int] = []
        self._bounds_stale = True
        os.makedirs(workdir, exist_ok=True)

    # -- construction --------------------------------------------------------

    def initialize(self, edges: dict, num_vertices: int,
                   min_partitions: int = 2) -> None:
        """Preprocessing: split the input graph into balanced partitions.

        Partition boundaries are chosen so each holds roughly equal edge
        bytes, with enough partitions that any two fit in the budget.
        """
        total_bytes = _estimate_bytes(edges)
        per_partition_cap = max(self.memory_budget // 2, 1)
        wanted = max(min_partitions, -(-total_bytes // per_partition_cap))
        boundaries = _balanced_boundaries(edges, num_vertices, wanted)
        for lo, hi in boundaries:
            chunk = {
                src: targets
                for src, targets in edges.items()
                if lo <= src < hi
            }
            self._create_partition(lo, hi, chunk)

    def _create_partition(self, lo: int, hi: int, chunk: dict) -> Partition:
        part = Partition(
            index=len(self.partitions),
            lo=lo,
            hi=hi,
            path=self._fresh_path("part"),
            delta_path=self._fresh_path("delta"),
        )
        cols = EdgeColumns.from_dict(chunk, self.table)
        part.edge_count = cols.edge_count
        part.byte_estimate = cols.columnar_bytes()
        self._save(part, cols)
        self.partitions.append(part)
        self._bounds_stale = True
        return part

    def _fresh_path(self, prefix: str) -> str:
        path = os.path.join(self.workdir, f"{prefix}_{self._next_file:05d}.bin")
        self._next_file += 1
        return path

    # -- I/O ------------------------------------------------------------------

    def _save(self, part: Partition, cols: EdgeColumns) -> None:
        with self.stats.timing("io_time"):
            data = cols.encode()
            spec = self.faults.fire("partition-write")
            if spec is not None and spec.mode == "short_write":
                # The legacy torn write this layer eliminates: truncated
                # bytes straight at the destination path.
                with open(part.path, "wb") as f:
                    f.write(data[: max(1, len(data) // 2)])
            elif spec is not None and spec.mode == "torn_rename":
                # Crash between temp write and rename: the previous
                # durable version stays; the new bytes sit in the temp.
                serialize.atomic_write_bytes(part.path, data, replace=False)
            else:
                serialize.atomic_write_bytes(part.path, data)
                if part.delta_folded:
                    # The columns just written include every delta frame;
                    # only now is the replay log safe to discard.
                    part.delta_folded = False
                    try:
                        os.remove(part.delta_path)
                    except FileNotFoundError:
                        pass
            if spec is not None:
                # The injected crash left disk stale or corrupt; keep
                # the newest columns resident and dirty so a later flush
                # rewrites them (the fault is latched once-per-run) and
                # this run's own reads never adopt the damaged file.
                self._cache[part.index] = cols
                self._dirty.add(part.index)

    def _read_partition(self, part: Partition):
        """Parse ``part.path``; any unreadable file (truncated, missing,
        bad magic) surfaces as :class:`CorruptPartition` for the retry
        layer, which rebuilds from the best surviving copy."""
        try:
            with open(part.path, "rb") as f:
                return serialize.parse_columnar(f.read())
        except serialize.CorruptPartition:
            raise
        except Exception as exc:
            raise serialize.CorruptPartition(
                f"unreadable partition file"
                f" {os.path.basename(part.path)}: {exc}"
            ) from exc

    def load(self, part: Partition) -> EdgeColumns:
        """Load a partition (cache-aware), folding in pending deltas."""
        cached = self._cache.get(part.index)
        if cached is not None:
            return cached
        parsed = None
        deltas = None
        dropped = 0
        if self.prefetch is not None:
            metrics = self.stats.metrics
            wait_start = time.perf_counter() if metrics is not None else 0.0
            try:
                got = self.prefetch.take(part.index, part.version)
            except serialize.CorruptPartition:
                # Real damage, not a benign race: count it apart from
                # plain misses and take the synchronous path, which
                # salvages what it can (or raises for the retry layer).
                self.stats.prefetch_corrupt += 1
                got = None
            except Exception:
                # Unexpected reader-thread failure: a programming error
                # that used to degrade into an eternal cache miss.
                # Count it so it shows in the run report, then let it
                # propagate -- the retry layer decides survival.
                self.stats.prefetch_errors += 1
                raise
            if metrics is not None:
                metrics.observe(
                    "prefetch_wait_s", time.perf_counter() - wait_start
                )
            if got is None:
                self.stats.prefetch_misses += 1
            else:
                self.stats.prefetch_hits += 1
                parsed, deltas, dropped = got
        with self.stats.timing("io_time"):
            if parsed is None:
                parsed = self._read_partition(part)
                deltas = self._read_delta(part)
                dropped = 0  # _read_delta counted its own
            cols = EdgeColumns.from_file(parsed, self.table)
        if dropped:
            self.stats.delta_frames_dropped += dropped
        added = 0
        for chunk in deltas:
            added += cols.merge_dict(chunk)
        if added:
            part.edge_count += added
            part.byte_estimate = cols.columnar_bytes()
        if deltas:
            # The delta file's frames now live in the resident columns;
            # the file itself stays until the next durable partition
            # write (_save) makes it redundant.  Marking the entry dirty
            # guarantees that write happens.
            part.delta_folded = True
        self._cache_insert(part.index, cols, dirty=bool(added or deltas))
        return cols

    def save(self, part: Partition, cols: EdgeColumns) -> None:
        part.edge_count = cols.edge_count
        part.byte_estimate = cols.columnar_bytes()
        self._cache_insert(part.index, cols, dirty=True)

    def _cache_insert(self, index: int, cols: EdgeColumns, dirty: bool) -> None:
        if dirty:
            self._dirty.add(index)
        if index in self._cache:
            self._cache[index] = cols
            return
        while len(self._cache) >= self.cache_slots:
            victim = next(iter(self._cache))
            self._evict(victim)
        self._cache[index] = cols

    def _evict(self, index: int) -> None:
        cols = self._cache.pop(index)
        if index in self._dirty:
            self._dirty.discard(index)
            self._save(self.partitions[index], cols)

    def flush(self) -> None:
        """Write every dirty cached partition back to disk."""
        for index in list(self._dirty):
            self._dirty.discard(index)
            self._save(self.partitions[index], self._cache[index])

    def _read_delta(self, part: Partition) -> list:
        """Read (without removing) the pending delta file; a list of
        tuple-shaped edge chunks (possibly empty).

        Truncated trailing frames -- the benign artifact of a crash
        mid-append -- are dropped and counted.  Interior CRC or decode
        failures are real corruption: the bad frames are discarded,
        counted, and the partition's version is bumped so every pair
        touching it recomputes (the lost derived edges re-derive; the
        fixpoint is monotone).
        """
        if self.spill_writer is not None:
            self.spill_writer.flush(part.delta_path)
        if not os.path.exists(part.delta_path):
            return []
        with open(part.delta_path, "rb") as f:
            data = f.read()
        payloads, dropped, corrupt = serialize.split_frames(data)
        chunks = []
        for payload in payloads:
            try:
                chunks.append(serialize.decode_partition(payload))
            except Exception:
                corrupt += 1
        if dropped:
            self.stats.delta_frames_dropped += dropped
        if corrupt:
            self.stats.delta_frames_corrupt += corrupt
            part.version += 1
        return chunks

    def rebuild(self, part: Partition) -> bool:
        """Rewrite a corrupt partition file from the best surviving copy.

        Preference order: the resident cached columns (always current),
        else a complete ``.tmp`` left behind by a torn rename (the
        newest durable bytes; pending delta frames replay on the next
        load because the interrupted save never removed them).  Returns
        False when neither exists -- the caller quarantines.
        """
        cached = self._cache.get(part.index)
        if cached is not None:
            self._dirty.discard(part.index)
            self._save(part, cached)
            self.stats.partitions_rebuilt += 1
            return True
        tmp = f"{part.path}.tmp"
        try:
            with open(tmp, "rb") as f:
                data = f.read()
            serialize.parse_columnar(data)
        except Exception:
            return False
        serialize.atomic_write_bytes(part.path, data)
        self.stats.partitions_rebuilt += 1
        return True

    def append_delta(self, part: Partition, chunk: dict) -> None:
        """Buffer new edges for a partition that is not currently loaded
        by the computation (merged directly when the partition is cached).
        ``chunk`` is tuple-shaped: ``{src: {(dst, label_id): set}}``."""
        if not chunk:
            return
        cached = self._cache.get(part.index)
        if cached is not None:
            added = cached.merge_dict(chunk)
            if added:
                self._dirty.add(part.index)
                part.version += 1
                part.edge_count += added
                part.byte_estimate = cached.columnar_bytes()
            return
        with self.stats.timing("io_time"):
            data = serialize.encode_partition(chunk)
            if self.spill_writer is not None:
                self.spill_writer.append(part.delta_path, data)
            else:
                frame = serialize.encode_frame(data)
                spec = self.faults.fire("delta-append")
                if spec is not None:
                    frame = self.faults.mutate_frame(spec, frame)
                # One write call per frame: a crash truncates at most
                # the trailing frame, which the reader drops.
                with open(part.delta_path, "ab") as f:
                    f.write(frame)
        part.version += 1
        part.edge_count += _count_edges(chunk)
        part.byte_estimate += _estimate_bytes(chunk)

    # -- prefetch ---------------------------------------------------------------

    def prefetch_schedule(self, part: Partition) -> None:
        """Hint that ``part`` is likely loaded soon.  Skipped when the
        partition is already resident or its delta file still has frames
        queued in the spill writer (the version check would reject the
        read anyway)."""
        if self.prefetch is None or part.index in self._cache:
            return
        if (
            self.spill_writer is not None
            and self.spill_writer.pending(part.delta_path)
        ):
            return
        self.prefetch.schedule(
            part.index, part.version, part.path, part.delta_path
        )

    def drop_pipeline(self) -> None:
        """Detach the prefetch reader (the computation is done; result
        iteration must not count misses)."""
        if self.prefetch is not None:
            self.prefetch.close()
            self.prefetch = None

    # -- lookup / repartitioning ----------------------------------------------

    def _rebuild_bounds(self) -> None:
        order = sorted(range(len(self.partitions)),
                       key=lambda i: self.partitions[i].lo)
        self._bounds_los = [self.partitions[i].lo for i in order]
        self._bounds_index = order
        self._bounds_stale = False

    def partition_of(self, src: int) -> Partition:
        """The partition owning source vertex ``src`` (bisect over the
        sorted interval boundaries; partitions tile the vertex space)."""
        if self._bounds_stale:
            self._rebuild_bounds()
        at = bisect_right(self._bounds_los, src) - 1
        if at >= 0:
            part = self.partitions[self._bounds_index[at]]
            if part.owns(src):
                return part
        raise KeyError(f"no partition owns vertex {src}")

    def needs_split(self, part: Partition) -> bool:
        return part.byte_estimate > self.memory_budget // 2

    def split(self, part: Partition, cols: EdgeColumns) -> tuple:
        """Split one loaded partition into two balanced halves.

        Returns ``(left_part, left_cols, right_part, right_cols)``; the
        original descriptor is reused for the left half.
        """
        trace = self.trace
        if not trace.enabled:
            return self._split(part, cols)
        start = trace.begin()
        result = self._split(part, cols)
        trace.end(
            "repartition", start, cat="store",
            partition=part.index, split=result[2] is not None,
        )
        return result

    def _split(self, part: Partition, cols: EdgeColumns) -> tuple:
        if part.hi - part.lo < 2:
            return part, cols, None, None  # cannot split a single vertex
        weights = cols.src_weights()
        if not weights:
            return part, cols, None, None
        total = cols.columnar_bytes()
        running = 0
        mid = None
        for src in sorted(weights):
            running += weights[src]
            if running >= total // 2:
                mid = src + 1
                break
        if mid is None or mid <= part.lo or mid >= part.hi:
            mid = (part.lo + part.hi) // 2
        if mid <= part.lo or mid >= part.hi:
            return part, cols, None, None
        left_cols, right_cols = cols.split_at(mid)
        new_part = Partition(
            index=len(self.partitions),
            lo=mid,
            hi=part.hi,
            path=self._fresh_path("part"),
            delta_path=self._fresh_path("delta"),
        )
        part.hi = mid
        part.version += 1
        new_part.version = 1
        self.partitions.append(new_part)
        self._bounds_stale = True
        self.save(part, left_cols)
        self.save(new_part, right_cols)
        self.stats.repartitions += 1
        return part, left_cols, new_part, right_cols

    # -- parallel-coordinator support ------------------------------------------

    def is_cached(self, part: Partition) -> bool:
        return part.index in self._cache

    def merge_chunk(self, part: Partition, chunk: dict) -> list:
        """Deduplicating merge of a tuple-shaped ``chunk`` into a partition.

        Unlike :meth:`append_delta` on an uncached partition, this loads
        the partition and only bumps the version when genuinely new edges
        arrived -- the parallel coordinator relies on that to keep pair
        re-eligibility (and hence termination) tight.  Returns the list of
        newly added ``(src, dst, label_id, encoding)`` edges.
        """
        if not chunk:
            return []
        cols = self.load(part)
        new_edges: list = []
        added = cols.merge_dict(chunk, collect=new_edges)
        if added:
            self.save(part, cols)  # recomputes edge_count/byte_estimate
            part.version += 1
        return new_edges

    def materialize(self, part: Partition) -> None:
        """Guarantee ``part.path`` on disk holds the partition's full,
        current contents (pending delta folded in, dirty cache flushed)
        so an out-of-process worker can read the file directly."""
        if self.spill_writer is not None:
            self.spill_writer.flush(part.delta_path)
        cached = self._cache.get(part.index)
        has_delta = os.path.exists(part.delta_path)
        if cached is None and not has_delta and part.index not in self._dirty:
            return  # disk already current
        cols = self.load(part)  # folds delta, may mark dirty
        if part.index in self._dirty:
            self._dirty.discard(part.index)
            self._save(part, cols)

    def total_edges(self) -> int:
        return sum(p.edge_count for p in self.partitions)

    def cache_occupancy(self) -> float:
        """Resident cached partition bytes as a fraction of the budget
        (the heartbeat's "budget occupancy")."""
        if not self.memory_budget:
            return 0.0
        resident = sum(
            self.partitions[index].byte_estimate for index in self._cache
        )
        return resident / self.memory_budget

    def iter_all_edges(self):
        """Stream every edge from disk: ``(src, dst, label_id, encoding)``."""
        decode = self.table.decode
        for part in self.partitions:
            cols = self.load(part)
            for src, dst, label_id, eid in cols.iter_rows():
                yield src, dst, label_id, decode(eid)


def _balanced_boundaries(edges: dict, num_vertices: int, wanted: int):
    """Split ``[0, num_vertices)`` into ``wanted`` byte-balanced intervals."""
    span = max(num_vertices, 1)
    wanted = max(1, min(wanted, span))
    total = _estimate_bytes(edges) or 1
    target = total / wanted
    boundaries = []
    lo = 0
    running = 0
    produced = 0
    for src in sorted(edges):
        running += _estimate_bytes({src: edges[src]})
        if running >= target and produced < wanted - 1 and src + 1 < span:
            boundaries.append((lo, src + 1))
            lo = src + 1
            running = 0
            produced += 1
    boundaries.append((lo, span))
    return boundaries


def _merge_edges(edges: dict, chunk: dict, collect: list | None = None) -> int:
    """Union tuple-shaped ``chunk`` into tuple-shaped ``edges``; returns
    the number of genuinely new edges.  When ``collect`` is given, the new
    ``(src, dst, label_id, encoding)`` tuples are appended to it."""
    added = 0
    for src, targets in chunk.items():
        mine = edges.setdefault(src, {})
        for key, encodings in targets.items():
            slot = mine.setdefault(key, set())
            if collect is None:
                before = len(slot)
                slot |= encodings
                added += len(slot) - before
            else:
                for encoding in encodings:
                    if encoding not in slot:
                        slot.add(encoding)
                        collect.append((src, key[0], key[1], encoding))
                        added += 1
    return added


def _count_edges(edges: dict) -> int:
    return sum(len(encs) for t in edges.values() for encs in t.values())


def _estimate_bytes(edges: dict) -> int:
    """Columnar-bytes estimate of a tuple-shaped edge dict (32 per row
    plus string-constraint text, matching EdgeColumns accounting)."""
    total = 0
    for targets in edges.values():
        for encodings in targets.values():
            for encoding in encodings:
                total += ROW_BYTES
                for elem in encoding:
                    if elem[0] == "S":
                        total += 64 + len(elem[1])
    return total
