"""Binary on-disk formats for edge partitions.

Grapple inlines variable-sized interval sequences directly into per-edge
storage (paper §4.3) rather than keeping pointer-linked objects; this
module does the same for the Python engine.  Two formats share the
``GRPL`` magic and the element wire encoding:

**Version 1** (row-oriented, used for small delta chunks and as the
cross-version compatibility format)::

    MAGIC "GRPL" | version u8 = 1
    string table: varint count, then per string varint length + utf-8 bytes
    varint number of source vertices
    per source: varint src, varint n_targets
        per target: varint dst, varint label_id, varint n_encodings
            per encoding: varint n_elements, then elements

**Version 2** (columnar, used for partition files)::

    MAGIC "GRPL" | version u8 = 2
    string table: as version 1
    encoding table: varint count, then per encoding varint n_elements
        + elements (hash-consed: each distinct encoding appears once)
    varint n_rows
    src column:   n_rows * 8 bytes, native-endian int64
    dst column:   n_rows * 8 bytes
    label column: n_rows * 8 bytes
    enc column:   n_rows * 8 bytes (indices into the encoding table)

The columnar body decodes with four ``array('q').frombytes`` calls plus
one pass over the (small) encoding table, instead of one Python-level
varint loop per edge -- that is what moves partition loads off the
profile.  Columns are native-endian: partition files are per-run scratch
data, never moved between machines.

Either format may additionally be wrapped in a zlib frame::

    MAGIC "GRPZ" | zlib-compressed GRPL payload

element wire encoding: tag u8 (0 = interval, 1 = call, 2 = return,
3 = string), then
    interval: varint func_index, varint start, varint end
    call/return: varint id
    string: varint length + utf-8 bytes

All integers are unsigned LEB128 varints.  Truncated or malformed input
raises :class:`CorruptPartition` (a ``ValueError``) rather than leaking
``IndexError`` from the byte cursor.

Durability primitives live here too: :func:`atomic_write_bytes` is the
write-temp -> fsync -> ``os.replace`` helper every partition/manifest
write goes through (a crash can only ever leave the previous complete
version, never a truncated file), and delta files are sequences of
*checksummed* frames (:func:`encode_frame` / :func:`split_frames`): a
4-byte length, a CRC-32 of the payload, then the payload, appended in a
single ``write`` call.  A crash mid-append leaves a truncated tail frame
that the reader detects and drops; a CRC mismatch on an interior frame
is real corruption and is reported separately so the retry layer can
force the affected partition's pairs to recompute.
"""

from __future__ import annotations

import io
import os
import zlib
from array import array
from dataclasses import dataclass

MAGIC = b"GRPL"
ZMAGIC = b"GRPZ"
VERSION = 1
COLUMNAR_VERSION = 2

_TAG_INTERVAL = 0
_TAG_CALL = 1
_TAG_RETURN = 2
_TAG_STRING = 3  # string-constraint baseline payloads (Table 5)


class CorruptPartition(ValueError):
    """A partition/delta payload is truncated or structurally invalid."""


def write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def _append_varint(buf: bytearray, value: int) -> None:
    """``write_varint`` for :class:`bytearray` output (no BytesIO)."""
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            buf.append(byte | 0x80)
        else:
            buf.append(byte)
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    try:
        while True:
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result, pos
            shift += 7
    except IndexError:
        raise CorruptPartition(
            f"truncated varint at byte {pos} of {len(data)}"
        ) from None


def maybe_decompress(data: bytes) -> bytes:
    """Unwrap a ``GRPZ`` zlib frame; plain payloads pass through."""
    if data[:4] == ZMAGIC:
        try:
            return zlib.decompress(data[4:])
        except zlib.error as exc:
            raise CorruptPartition(f"bad zlib frame: {exc}") from None
    return data


def compress_payload(data: bytes, level: int = 1) -> bytes:
    """Wrap an encoded partition payload in a ``GRPZ`` zlib frame."""
    return ZMAGIC + zlib.compress(data, level)


# -- durability primitives -----------------------------------------------------

#: Delta frame header: u32 LE payload length + u32 LE CRC-32 of payload.
FRAME_HEADER_BYTES = 8


def atomic_write_bytes(path: str, data: bytes, replace: bool = True) -> str:
    """Durably replace ``path`` with ``data``: write a temp file in the
    same directory, flush + fsync it, then ``os.replace`` over the
    target.  A crash at any point leaves either the old complete file or
    the new complete file -- never a truncated mix.  Returns the temp
    path (``replace=False`` skips the rename; fault injection uses it to
    simulate a crash between write and rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "wb") as f:
        f.write(data)
        f.flush()
        os.fsync(f.fileno())
    if not replace:
        return tmp
    os.replace(tmp, path)
    return tmp


def encode_frame(payload: bytes) -> bytes:
    """One checksummed delta frame: length, CRC-32, payload."""
    return (
        len(payload).to_bytes(4, "little")
        + (zlib.crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little")
        + payload
    )


def split_frames(data: bytes) -> tuple[list[bytes], int, int]:
    """Parse a delta file's frames: ``(payloads, dropped, corrupt)``.

    ``dropped`` counts truncated *trailing* frames (header or payload cut
    short -- the benign artifact of a crash mid-append; everything after
    the cut is unreadable and discarded).  ``corrupt`` counts interior
    frames whose CRC does not match their payload (real corruption: the
    frame is skipped but parsing continues at the next boundary, and the
    caller must treat the file's partition as needing recomputation).
    """
    payloads: list[bytes] = []
    dropped = 0
    corrupt = 0
    pos = 0
    n = len(data)
    while pos < n:
        if pos + FRAME_HEADER_BYTES > n:
            dropped += 1
            break
        length = int.from_bytes(data[pos : pos + 4], "little")
        crc = int.from_bytes(data[pos + 4 : pos + 8], "little")
        end = pos + FRAME_HEADER_BYTES + length
        if end > n:
            dropped += 1
            break
        payload = data[pos + FRAME_HEADER_BYTES : end]
        if (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
            corrupt += 1
        else:
            payloads.append(payload)
        pos = end
    return payloads, dropped, corrupt


# -- shared element wire encoding ---------------------------------------------


def _append_encoding(buf: bytearray, encoding: tuple, intern) -> None:
    _append_varint(buf, len(encoding))
    for elem in encoding:
        kind = elem[0]
        if kind == "I":
            buf.append(_TAG_INTERVAL)
            _append_varint(buf, intern(elem[1]))
            _append_varint(buf, elem[2])
            _append_varint(buf, elem[3])
        elif kind == "C":
            buf.append(_TAG_CALL)
            _append_varint(buf, elem[1])
        elif kind == "R":
            buf.append(_TAG_RETURN)
            _append_varint(buf, elem[1])
        elif kind == "S":
            raw = elem[1].encode("utf-8")
            buf.append(_TAG_STRING)
            _append_varint(buf, len(raw))
            buf += raw
        else:
            raise ValueError(f"unknown encoding element {elem!r}")


def _read_encoding(data: bytes, pos: int, strings: list[str]):
    n_elements, pos = read_varint(data, pos)
    elems = []
    try:
        for _ in range(n_elements):
            tag = data[pos]
            pos += 1
            if tag == _TAG_INTERVAL:
                func_index, pos = read_varint(data, pos)
                start, pos = read_varint(data, pos)
                end, pos = read_varint(data, pos)
                elems.append(("I", strings[func_index], start, end))
            elif tag == _TAG_CALL:
                cid, pos = read_varint(data, pos)
                elems.append(("C", cid))
            elif tag == _TAG_RETURN:
                rid, pos = read_varint(data, pos)
                elems.append(("R", rid))
            elif tag == _TAG_STRING:
                length, pos = read_varint(data, pos)
                end = pos + length
                if end > len(data):
                    raise CorruptPartition("truncated string element")
                elems.append(("S", data[pos:end].decode("utf-8")))
                pos = end
            else:
                raise CorruptPartition(f"unknown element tag {tag}")
    except IndexError:
        raise CorruptPartition(
            f"truncated encoding element at byte {pos}"
        ) from None
    return tuple(elems), pos


def _read_string_table(data: bytes, pos: int) -> tuple[list[str], int]:
    n_strings, pos = read_varint(data, pos)
    strings: list[str] = []
    for _ in range(n_strings):
        length, pos = read_varint(data, pos)
        end = pos + length
        if end > len(data):
            raise CorruptPartition("truncated string table")
        strings.append(data[pos:end].decode("utf-8"))
        pos = end
    return strings, pos


def _append_string_table(buf: bytearray, strings: dict[str, int]) -> None:
    _append_varint(buf, len(strings))
    for name in strings:  # insertion order == index order
        raw = name.encode("utf-8")
        _append_varint(buf, len(raw))
        buf += raw


# -- version 1: row-oriented dicts --------------------------------------------


def encode_partition(edges: dict) -> bytes:
    """Serialise ``{src: {(dst, label_id): set[encoding]}}`` to v1 bytes."""
    strings: dict[str, int] = {}

    def intern(name: str) -> int:
        index = strings.get(name)
        if index is None:
            index = len(strings)
            strings[name] = index
        return index

    body = bytearray()
    _append_varint(body, len(edges))
    for src in sorted(edges):
        targets = edges[src]
        _append_varint(body, src)
        _append_varint(body, len(targets))
        for (dst, label_id) in sorted(targets):
            encodings = targets[(dst, label_id)]
            _append_varint(body, dst)
            _append_varint(body, label_id)
            _append_varint(body, len(encodings))
            for encoding in sorted(encodings):
                _append_encoding(body, encoding, intern)

    out = bytearray()
    out += MAGIC
    out.append(VERSION)
    _append_string_table(out, strings)
    out += body
    return bytes(out)


def decode_partition(data: bytes) -> dict:
    """Decode either format back to ``{src: {(dst, label_id): set}}``."""
    data = maybe_decompress(data)
    if data[:4] != MAGIC:
        raise CorruptPartition("bad partition file magic")
    if data[4] == COLUMNAR_VERSION:
        return parse_columnar(data).to_dict()
    if data[4] != VERSION:
        raise CorruptPartition(f"unsupported partition version {data[4]}")
    pos = 5
    strings, pos = _read_string_table(data, pos)

    edges: dict = {}
    n_sources, pos = read_varint(data, pos)
    for _ in range(n_sources):
        src, pos = read_varint(data, pos)
        n_targets, pos = read_varint(data, pos)
        targets: dict = {}
        for _ in range(n_targets):
            dst, pos = read_varint(data, pos)
            label_id, pos = read_varint(data, pos)
            n_encodings, pos = read_varint(data, pos)
            encodings = set()
            for _ in range(n_encodings):
                encoding, pos = _read_encoding(data, pos, strings)
                encodings.add(encoding)
            targets[(dst, label_id)] = encodings
        edges[src] = targets
    return edges


# -- version 2: columnar ------------------------------------------------------


@dataclass
class ColumnarFile:
    """Parsed v2 payload: file-local encodings plus raw edge columns.

    Parsing is pure (no shared interning state), so it is safe to run on
    the prefetch thread; the consumer maps ``enc`` through its own
    :class:`~repro.engine.columnar.EncodingTable` when it builds an
    ``EdgeColumns`` from this.
    """

    encodings: list  # file-local id -> encoding tuple
    src: array
    dst: array
    label: array
    enc: array  # file-local encoding ids

    def to_dict(self) -> dict:
        edges: dict = {}
        encodings = self.encodings
        for src, dst, label_id, eid in zip(
            self.src, self.dst, self.label, self.enc
        ):
            edges.setdefault(src, {}).setdefault(
                (dst, label_id), set()
            ).add(encodings[eid])
        return edges


def encode_columnar(
    src: array, dst: array, label: array, enc_local: array,
    encodings: list,
) -> bytes:
    """Serialise sorted edge columns + their encoding table to v2 bytes."""
    strings: dict[str, int] = {}

    def intern(name: str) -> int:
        index = strings.get(name)
        if index is None:
            index = len(strings)
            strings[name] = index
        return index

    body = bytearray()
    _append_varint(body, len(encodings))
    for encoding in encodings:
        _append_encoding(body, encoding, intern)
    _append_varint(body, len(src))
    body += src.tobytes()
    body += dst.tobytes()
    body += label.tobytes()
    body += enc_local.tobytes()

    out = bytearray()
    out += MAGIC
    out.append(COLUMNAR_VERSION)
    _append_string_table(out, strings)
    out += body
    return bytes(out)


def parse_columnar(data: bytes) -> ColumnarFile:
    """Parse either format into a :class:`ColumnarFile` (pure, bulk)."""
    data = maybe_decompress(data)
    if data[:4] != MAGIC:
        raise CorruptPartition("bad partition file magic")
    if data[4] == VERSION:
        return _columnar_from_dict_payload(decode_partition(data))
    if data[4] != COLUMNAR_VERSION:
        raise CorruptPartition(f"unsupported partition version {data[4]}")
    pos = 5
    strings, pos = _read_string_table(data, pos)
    n_encodings, pos = read_varint(data, pos)
    encodings = []
    for _ in range(n_encodings):
        encoding, pos = _read_encoding(data, pos, strings)
        encodings.append(encoding)
    n_rows, pos = read_varint(data, pos)
    width = n_rows * 8
    if pos + 4 * width > len(data):
        raise CorruptPartition(
            f"truncated columns: want {4 * width} bytes at {pos},"
            f" have {len(data) - pos}"
        )
    columns = []
    for _ in range(4):
        col = array("q")
        col.frombytes(data[pos : pos + width])
        columns.append(col)
        pos += width
    src, dst, label, enc = columns
    for eid in enc:
        if not 0 <= eid < n_encodings:
            raise CorruptPartition(f"encoding id {eid} out of range")
    return ColumnarFile(
        encodings=encodings, src=src, dst=dst, label=label, enc=enc
    )


def _columnar_from_dict_payload(edges: dict) -> ColumnarFile:
    """v1 compatibility: flatten a decoded dict into sorted columns."""
    rows = sorted(
        (src, dst, label_id, encoding)
        for src, targets in edges.items()
        for (dst, label_id), encodings in targets.items()
        for encoding in encodings
    )
    encodings: list = []
    local: dict = {}
    src = array("q")
    dst = array("q")
    label = array("q")
    enc = array("q")
    for s, d, l, encoding in rows:
        eid = local.get(encoding)
        if eid is None:
            eid = len(encodings)
            local[encoding] = eid
            encodings.append(encoding)
        src.append(s)
        dst.append(d)
        label.append(l)
        enc.append(eid)
    return ColumnarFile(
        encodings=encodings, src=src, dst=dst, label=label, enc=enc
    )


def estimate_edge_bytes(encoding: tuple) -> int:
    """Rough in-memory size of one edge with the given encoding, used for
    the engine's memory-budget accounting of dict-shaped edge chunks."""
    size = 48
    for elem in encoding:
        if elem[0] == "S":
            size += 64 + len(elem[1])
        else:
            size += 16
    return size
