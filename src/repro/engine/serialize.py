"""Binary on-disk format for edge partitions.

Grapple inlines variable-sized interval sequences directly into per-edge
storage (paper §4.3) rather than keeping pointer-linked objects; this
module does the same for the Python engine.  A partition file is:

    MAGIC "GRPL" | version u8
    string table: varint count, then per string varint length + utf-8 bytes
    varint number of source vertices
    per source: varint src, varint n_targets
        per target: varint dst, varint label_id, varint n_encodings
            per encoding: varint n_elements, then elements
    element: tag u8 (0 = interval, 1 = call, 2 = return)
        interval: varint func_index, varint start, varint end
        call/return: varint id

All integers are unsigned LEB128 varints.
"""

from __future__ import annotations

import io

MAGIC = b"GRPL"
VERSION = 1

_TAG_INTERVAL = 0
_TAG_CALL = 1
_TAG_RETURN = 2
_TAG_STRING = 3  # string-constraint baseline payloads (Table 5)


def write_varint(out: io.BytesIO, value: int) -> None:
    if value < 0:
        raise ValueError("varints are unsigned")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.write(bytes((byte | 0x80,)))
        else:
            out.write(bytes((byte,)))
            return


def read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        byte = data[pos]
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def encode_partition(edges: dict) -> bytes:
    """Serialise ``{src: {(dst, label_id): set[encoding]}}`` to bytes."""
    strings: dict[str, int] = {}

    def intern(name: str) -> int:
        index = strings.get(name)
        if index is None:
            index = len(strings)
            strings[name] = index
        return index

    body = io.BytesIO()
    write_varint(body, len(edges))
    for src in sorted(edges):
        targets = edges[src]
        write_varint(body, src)
        write_varint(body, len(targets))
        for (dst, label_id) in sorted(targets):
            encodings = targets[(dst, label_id)]
            write_varint(body, dst)
            write_varint(body, label_id)
            write_varint(body, len(encodings))
            for encoding in sorted(encodings):
                _write_encoding(body, encoding, intern)

    out = io.BytesIO()
    out.write(MAGIC)
    out.write(bytes((VERSION,)))
    write_varint(out, len(strings))
    for name in strings:  # insertion order == index order
        raw = name.encode("utf-8")
        write_varint(out, len(raw))
        out.write(raw)
    out.write(body.getvalue())
    return out.getvalue()


def _write_encoding(out: io.BytesIO, encoding: tuple, intern) -> None:
    write_varint(out, len(encoding))
    for elem in encoding:
        if elem[0] == "I":
            out.write(bytes((_TAG_INTERVAL,)))
            write_varint(out, intern(elem[1]))
            write_varint(out, elem[2])
            write_varint(out, elem[3])
        elif elem[0] == "C":
            out.write(bytes((_TAG_CALL,)))
            write_varint(out, elem[1])
        elif elem[0] == "R":
            out.write(bytes((_TAG_RETURN,)))
            write_varint(out, elem[1])
        elif elem[0] == "S":
            raw = elem[1].encode("utf-8")
            out.write(bytes((_TAG_STRING,)))
            write_varint(out, len(raw))
            out.write(raw)
        else:
            raise ValueError(f"unknown encoding element {elem!r}")


def decode_partition(data: bytes) -> dict:
    """Inverse of :func:`encode_partition`."""
    if data[:4] != MAGIC:
        raise ValueError("bad partition file magic")
    if data[4] != VERSION:
        raise ValueError(f"unsupported partition version {data[4]}")
    pos = 5
    n_strings, pos = read_varint(data, pos)
    strings: list[str] = []
    for _ in range(n_strings):
        length, pos = read_varint(data, pos)
        strings.append(data[pos : pos + length].decode("utf-8"))
        pos += length

    edges: dict = {}
    n_sources, pos = read_varint(data, pos)
    for _ in range(n_sources):
        src, pos = read_varint(data, pos)
        n_targets, pos = read_varint(data, pos)
        targets: dict = {}
        for _ in range(n_targets):
            dst, pos = read_varint(data, pos)
            label_id, pos = read_varint(data, pos)
            n_encodings, pos = read_varint(data, pos)
            encodings = set()
            for _ in range(n_encodings):
                encoding, pos = _read_encoding(data, pos, strings)
                encodings.add(encoding)
            targets[(dst, label_id)] = encodings
        edges[src] = targets
    return edges


def _read_encoding(data: bytes, pos: int, strings: list[str]):
    n_elements, pos = read_varint(data, pos)
    elems = []
    for _ in range(n_elements):
        tag = data[pos]
        pos += 1
        if tag == _TAG_INTERVAL:
            func_index, pos = read_varint(data, pos)
            start, pos = read_varint(data, pos)
            end, pos = read_varint(data, pos)
            elems.append(("I", strings[func_index], start, end))
        elif tag == _TAG_CALL:
            cid, pos = read_varint(data, pos)
            elems.append(("C", cid))
        elif tag == _TAG_RETURN:
            rid, pos = read_varint(data, pos)
            elems.append(("R", rid))
        elif tag == _TAG_STRING:
            length, pos = read_varint(data, pos)
            elems.append(("S", data[pos : pos + length].decode("utf-8")))
            pos += length
        else:
            raise ValueError(f"unknown element tag {tag}")
    return tuple(elems), pos


def estimate_edge_bytes(encoding: tuple) -> int:
    """Rough in-memory size of one edge with the given encoding, used for
    the engine's memory-budget accounting."""
    size = 48
    for elem in encoding:
        if elem[0] == "S":
            size += 64 + len(elem[1])
        else:
            size += 16
    return size
