"""Eligible-pair scheduling for the closure engine.

A partition pair ``(i, j)`` (with ``i <= j``) is *eligible* when it has
never been processed, or when either partition's version advanced since
the pair was last processed.  The serial engine used to rediscover the
next eligible pair with an O(P^2) scan per step; :class:`PairScheduler`
keeps a min-heap of candidate pairs instead, refreshed by an O(P) sweep
over partition versions, and pops the lexicographically smallest eligible
pair -- exactly the pair the old scan would have returned, so the serial
path's processing order (and therefore its output) is unchanged.

The same eligibility source feeds the parallel engine's *wave* selection:
:meth:`select_wave` greedily picks eligible pairs, in the serial order,
such that no partition appears in two pairs of one wave -- the in-flight
pairs of a wave touch disjoint partition sets, so workers never load or
save the same partition concurrently.
"""

from __future__ import annotations

import heapq


class StratumPlanner:
    """Source-stratified wave planning (``--shard-by-source``).

    Partitions are contiguous source-vertex ranges (``partition_of``
    bisects over their start vertices), so slicing the partition list
    into ``strata`` contiguous blocks shards the closure by source
    stratum, SSC-style (Yang & Zaniolo's single-source closure): pairs
    whose partitions fall in one stratum extend paths rooted in one
    source range and are mutually independent fan-out work, so the
    planner orders them first, keeping a wave's pairs clustered instead
    of striped across the whole graph.  Cross-stratum pairs (the
    stitch-up work) follow, by lowest stratum touched.

    The planner only *reorders* eligible pairs -- eligibility, the
    disjointness rule, and the fixpoint are :class:`PairScheduler`'s,
    which remains the fallback path and the golden oracle.
    """

    def __init__(self, store, strata: int):
        self.store = store
        self.strata = max(1, int(strata))
        self._of: list[int] = []

    def rebuild(self) -> None:
        """Recompute the partition -> stratum map (splits move it)."""
        n = len(self.store.partitions)
        k = min(self.strata, n)
        self._of = [i * k // n for i in range(n)]

    def stratum(self, index: int) -> int:
        return self._of[index]

    def wave_key(self, pair) -> tuple:
        i, j = pair
        si, sj = self._of[i], self._of[j]
        if si == sj:
            return (0, si, pair)
        return (1, min(si, sj), pair)


class PairScheduler:
    """Tracks pair eligibility over a store's (mutable) partition list."""

    def __init__(self, store):
        self.store = store
        self.last_seen: dict = {}
        self._heap: list = []
        self._in_heap: set = set()
        # Last version observed per partition index by the refresh sweep.
        self._known_versions: list = []

    # -- internals -------------------------------------------------------------

    def _push(self, pair) -> None:
        if pair not in self._in_heap:
            self._in_heap.add(pair)
            heapq.heappush(self._heap, pair)

    def _refresh(self) -> None:
        """O(P) sweep: requeue every pair touching a partition whose
        version changed (or that was created) since the last sweep."""
        partitions = self.store.partitions
        n = len(partitions)
        known = self._known_versions
        changed = []
        for index in range(len(known)):
            version = partitions[index].version
            if version != known[index]:
                known[index] = version
                changed.append(index)
        for index in range(len(known), n):  # newly created partitions
            known.append(partitions[index].version)
            changed.append(index)
        for p in changed:
            for q in range(n):
                self._push((p, q) if p <= q else (q, p))

    def _eligible(self, pair) -> bool:
        i, j = pair
        partitions = self.store.partitions
        seen = self.last_seen.get(pair)
        if seen is None:
            return True
        return (
            partitions[i].version > seen[0] or partitions[j].version > seen[1]
        )

    # -- API -------------------------------------------------------------------

    def captured_versions(self, pair) -> tuple:
        i, j = pair
        partitions = self.store.partitions
        return (partitions[i].version, partitions[j].version)

    def mark_processed(self, pair, captured: tuple) -> None:
        """Record the versions the pair was processed at (captured before
        processing started, as the serial loop always did)."""
        self.last_seen[pair] = captured

    def restore(self, last_seen: dict) -> None:
        """Adopt a checkpoint manifest's processed-pair frontier
        (``--resume``): eligibility picks up exactly where the
        checkpointed run left off, judged against the restored partition
        versions."""
        self.last_seen = dict(last_seen)

    def forget(self, index: int) -> None:
        """Drop history for every pair touching ``index`` (used after a
        split moved edges: those pairs must reprocess from scratch)."""
        for pair in [p for p in self.last_seen if index in p]:
            del self.last_seen[pair]

    def next_pair(self):
        """The lexicographically smallest eligible pair, or None."""
        self._refresh()
        while self._heap:
            pair = self._heap[0]
            if self._eligible(pair):
                return pair
            heapq.heappop(self._heap)
            self._in_heap.discard(pair)
        return None

    def eligible_count(self) -> int:
        """How many queued pairs are currently eligible (the heartbeat's
        "eligible" figure; an O(heap) sweep, called at most once per
        heartbeat interval)."""
        self._refresh()
        return sum(1 for pair in self._in_heap if self._eligible(pair))

    def peek_pairs(self, count: int = 1) -> list:
        """The next up-to-``count`` eligible pairs in serial order,
        without popping anything -- the I/O pipeline uses this lookahead
        to prefetch the partitions the engine is about to load.  The
        result is a prediction: processing the current pair can change
        eligibility, in which case the prefetch simply goes stale."""
        self._refresh()
        out: list = []
        for pair in heapq.nsmallest(len(self._heap), self._heap):
            if self._eligible(pair):
                out.append(pair)
                if len(out) >= count:
                    break
        return out

    def peek_wave(self, max_width: int, planner=None) -> list:
        """Predict :meth:`select_wave`'s next result without consuming
        anything (same greedy disjointness rule over current
        eligibility, same planner ordering).  Wave lookahead for the
        prefetch pipeline."""
        self._refresh()
        candidates = heapq.nsmallest(len(self._heap), self._heap)
        if planner is not None:
            planner.rebuild()
            candidates = sorted(
                (p for p in candidates if self._eligible(p)),
                key=planner.wave_key,
            )
        wave: list = []
        busy: set = set()
        for pair in candidates:
            if len(wave) >= max_width:
                break
            if not self._eligible(pair):
                continue
            i, j = pair
            if i in busy or j in busy:
                continue
            busy.add(i)
            busy.add(j)
            wave.append(pair)
        return wave

    def pop_pair(self, pair) -> None:
        """Remove ``pair`` from the queue (it is about to be processed)."""
        if self._heap and self._heap[0] == pair:
            heapq.heappop(self._heap)
            self._in_heap.discard(pair)

    def select_wave(self, max_width: int, planner=None, busy=None) -> list:
        """Up to ``max_width`` mutually disjoint eligible pairs.

        Pairs are considered in the serial processing order (or, with a
        :class:`StratumPlanner`, in stratum order); a pair joins the
        wave only if neither of its partitions is already claimed --
        including any passed in via ``busy`` (partitions of pairs still
        in flight, for the coordinator's steal refills) -- so no
        partition is in two in-flight pairs.  Skipped-over pairs stay
        queued for later waves.
        """
        self._refresh()
        wave: list = []
        claimed: set = set() if busy is None else set(busy)
        kept: list = []
        heap = self._heap
        if planner is not None:
            planner.rebuild()
            eligible: list = []
            while heap:
                pair = heapq.heappop(heap)
                self._in_heap.discard(pair)
                if self._eligible(pair):
                    eligible.append(pair)
            eligible.sort(key=planner.wave_key)
            for pair in eligible:
                i, j = pair
                if len(wave) < max_width \
                        and i not in claimed and j not in claimed:
                    claimed.add(i)
                    claimed.add(j)
                    wave.append(pair)
                else:
                    kept.append(pair)
        else:
            while heap and len(wave) < max_width:
                pair = heapq.heappop(heap)
                self._in_heap.discard(pair)
                if not self._eligible(pair):
                    continue
                i, j = pair
                if i in claimed or j in claimed:
                    kept.append(pair)  # still eligible; revisit next wave
                    continue
                claimed.add(i)
                claimed.add(j)
                wave.append(pair)
        for pair in kept:
            self._push(pair)
        return wave
