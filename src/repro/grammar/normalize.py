"""Declarative context-free grammars, normalised to two-symbol rules.

The paper (§4.2) justifies the edge-pair computation model by noting that
"any context-free grammar can be transformed into an equivalent grammar
such that the right hand side of each production rule contains only two
terms".  This module provides that transformation: analysis authors write
productions of arbitrary arity (the UDF surface), and
:func:`compile_grammar` produces a table-driven
:class:`repro.grammar.cfg_grammar.Grammar` the engine can execute.

Symbols are label tuples.  A symbol may be *field-parameterised* by using
the placeholder :data:`FIELD` as its second component -- matching rules
then require equal fields, as in ``store[f] alias load[f]``::

    rules = [
        Production(("flowsTo",), [("new",)]),
        Production(("flowsTo",), [("flowsTo",), ("assign",)]),
        Production(
            ("flowsTo",),
            [("flowsTo",), ("store", FIELD), ("alias",), ("load", FIELD)],
        ),
        Production(("alias",), [("flowsToBar",), ("flowsTo",)]),
    ]

Unary productions ``A ::= t`` become insertion-time derivations;
longer right-hand sides are binarised with fresh intermediate symbols.
Reversal derivations (bar edges) are declared with :class:`Reversal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.grammar.cfg_grammar import Grammar
from repro.graph.model import canonical_label

#: Placeholder for a field parameter inside a symbol.
FIELD = "<f>"


@dataclass(frozen=True)
class Production:
    """``lhs ::= rhs[0] rhs[1] ... rhs[n-1]`` (n >= 1)."""

    lhs: tuple
    rhs: tuple

    def __init__(self, lhs, rhs):
        object.__setattr__(self, "lhs", tuple(lhs))
        object.__setattr__(self, "rhs", tuple(tuple(s) for s in rhs))
        if not self.rhs:
            raise ValueError("empty productions are not supported")
        if _parameterised(self.lhs) and not any(
            _parameterised(s) for s in self.rhs
        ):
            raise ValueError(
                f"{self.lhs} is field-parameterised but no RHS symbol binds"
                " the field"
            )


@dataclass(frozen=True)
class Reversal:
    """Derivation: every ``source`` edge also yields a reversed ``target``
    edge (used for the flowsToBar of every flowsTo)."""

    source: tuple
    target: tuple


def _parameterised(symbol: tuple) -> bool:
    return len(symbol) > 1 and symbol[1] == FIELD


@dataclass
class _CompiledGrammar(Grammar):
    """Table-driven grammar produced by :func:`compile_grammar`."""

    unary: dict = field(default_factory=dict)  # base -> [lhs]
    binary: dict = field(default_factory=dict)  # (b1, b2) -> [(lhs, mode)]
    reversals: dict = field(default_factory=dict)  # base -> [target]
    outputs: frozenset = frozenset()
    sources: frozenset = frozenset()
    targets: frozenset = frozenset()
    table_driven = True

    @property
    def output_labels(self):
        return self.outputs

    def derived(self, label: tuple):
        base = (label[0],)
        for lhs in self.unary.get(base, ()):
            yield _instantiate(lhs, label), False
        for target in self.reversals.get(base, ()):
            yield _instantiate(target, label), True

    def compose(self, edge1, edge2, ctx):
        l1, l2 = edge1[2], edge2[2]
        out = []
        for lhs, mode in self.binary.get(((l1[0],), (l2[0],)), ()):
            if mode == "match" and l1[1:] != l2[1:]:
                continue
            if mode == "left":
                out.append(_instantiate(lhs, l1))
            elif mode == "right":
                out.append(_instantiate(lhs, l2))
            else:  # "match" or "none"
                out.append(_instantiate(lhs, l1 if len(l1) > 1 else l2))
        return out

    def relevant_source(self, label: tuple) -> bool:
        return (label[0],) in self.sources

    def relevant_target(self, label: tuple) -> bool:
        return (label[0],) in self.targets


def _instantiate(symbol: tuple, source: tuple) -> tuple:
    """Fill a FIELD placeholder from the source label's parameter."""
    if _parameterised(symbol):
        return canonical_label((symbol[0],) + tuple(source[1:]))
    return canonical_label(symbol)


def compile_grammar(
    productions: list[Production],
    reversals: list[Reversal] = (),
    outputs=(),
) -> _CompiledGrammar:
    """Binarise the productions and build an executable grammar.

    RHS chains longer than two symbols are folded left-to-right through
    fresh intermediate symbols (``A ::= B C D`` becomes ``A' ::= B C``,
    ``A ::= A' D``); the intermediates inherit field parameters when any
    of their constituents carry one.
    """
    grammar = _CompiledGrammar()
    fresh = 0

    def add_binary(lhs: tuple, left: tuple, right: tuple) -> None:
        if _parameterised(left) and _parameterised(right):
            mode = "match"
        elif _parameterised(left):
            mode = "left"
        elif _parameterised(right):
            mode = "right"
        else:
            mode = "none"
        if _parameterised(lhs) and mode == "none":
            raise ValueError(
                f"{lhs} needs a field but neither {left} nor {right} has one"
            )
        key = ((left[0],), (right[0],))
        grammar.binary.setdefault(key, []).append((lhs, mode))
        grammar.sources |= {(left[0],)}
        grammar.targets |= {(right[0],)}

    for production in productions:
        rhs = list(production.rhs)
        if len(rhs) == 1:
            grammar.unary.setdefault((rhs[0][0],), []).append(production.lhs)
            continue
        while len(rhs) > 2:
            fresh += 1
            carries_field = _parameterised(rhs[0]) or _parameterised(rhs[1])
            mid_name = f"__mid{fresh}_{production.lhs[0]}"
            mid = (mid_name, FIELD) if carries_field else (mid_name,)
            add_binary(mid, rhs[0], rhs[1])
            rhs = [mid] + rhs[2:]
        add_binary(production.lhs, rhs[0], rhs[1])

    for reversal in reversals:
        grammar.reversals.setdefault((reversal.source[0],), []).append(
            reversal.target
        )

    grammar.outputs = frozenset(tuple(o) for o in outputs)
    # Make sources/targets frozensets for cheap membership tests.
    grammar.sources = frozenset(grammar.sources)
    grammar.targets = frozenset(grammar.targets)
    return grammar


def points_to_productions() -> tuple[list[Production], list[Reversal]]:
    """The Sridharan-Bodik grammar (Figure 4b) in declarative form."""
    productions = [
        Production(("flowsTo",), [("new",)]),
        Production(("flowsTo",), [("flowsTo",), ("assign",)]),
        Production(
            ("flowsTo",),
            [("flowsTo",), ("store", FIELD), ("alias",), ("load", FIELD)],
        ),
        Production(("alias",), [("flowsToBar",), ("flowsTo",)]),
    ]
    reversals = [Reversal(("flowsTo",), ("flowsToBar",))]
    return productions, reversals


def compiled_points_to() -> _CompiledGrammar:
    """A compiled equivalent of :class:`repro.grammar.pointsto.PointsToGrammar`."""
    productions, reversals = points_to_productions()
    return compile_grammar(
        productions, reversals, outputs=[("flowsTo",), ("alias",)]
    )
