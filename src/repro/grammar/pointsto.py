"""The Sridharan-Bodik points-to grammar (paper Figure 4b), normalised.

    flowsTo ::= new (assign | store[f] alias load[f])*
    alias   ::= flowsToBar flowsTo

normalised to two-symbol rules over edge labels:

    flowsTo ::= new                      (derivation on insert)
    flowsTo ::= flowsTo assign
    sa[f]   ::= store[f] alias
    heap    ::= sa[f] load[f]            (fields must match)
    flowsTo ::= flowsTo heap
    alias   ::= flowsToBar flowsTo

``flowsToBar`` is maintained by a derivation rule: every ``flowsTo`` edge
o -> v derives the reversed edge v -> o.
"""

from __future__ import annotations

from repro.grammar.cfg_grammar import Grammar
from repro.graph.model import canonical_label

NEW = canonical_label(("new",))
ASSIGN = canonical_label(("assign",))
FLOWS_TO = canonical_label(("flowsTo",))
FLOWS_TO_BAR = canonical_label(("flowsToBar",))
ALIAS = canonical_label(("alias",))
HEAP = canonical_label(("heap",))


def sa_label(fieldname: str) -> tuple:
    """Intermediate ``store[f] alias`` nonterminal, field-parameterised."""
    return canonical_label(("sa", fieldname))


class PointsToGrammar(Grammar):
    """Path-sensitive, field-sensitive points-to/alias grammar."""

    output_labels = frozenset({FLOWS_TO, ALIAS})
    #: compose() depends only on the labels, so the engine may memoise it.
    table_driven = True

    def derived(self, label: tuple):
        if label == NEW:
            yield FLOWS_TO, False
        elif label == FLOWS_TO:
            yield FLOWS_TO_BAR, True

    def compose(self, edge1, edge2, ctx):
        l1 = edge1[2]
        l2 = edge2[2]
        if l1 == FLOWS_TO:
            if l2 == ASSIGN or l2 == HEAP:
                return (FLOWS_TO,)
            return ()
        if l1 == FLOWS_TO_BAR:
            if l2 == FLOWS_TO:
                return (ALIAS,)
            return ()
        if l1[0] == "store":
            if l2 == ALIAS:
                return (sa_label(l1[1]),)
            return ()
        if l1[0] == "sa":
            if l2[0] == "load" and l2[1] == l1[1]:
                return (HEAP,)
            return ()
        return ()

    def closure_labels(self, initial_labels):
        yield FLOWS_TO
        yield FLOWS_TO_BAR
        yield ALIAS
        yield HEAP
        for label in initial_labels:
            if label[0] == "store":
                yield sa_label(label[1])

    def relevant_source(self, label: tuple) -> bool:
        return label[0] in ("flowsTo", "flowsToBar", "store", "sa")

    def relevant_target(self, label: tuple) -> bool:
        return label[0] in ("assign", "heap", "flowsTo", "alias", "load")
