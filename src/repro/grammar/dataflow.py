"""The dataflow/typestate grammar (phase 2).

State facts are edges ``obj -> point`` labelled ``("st", fsm, state)``.
Composing a state fact with a control-flow edge advances the state through
the FSM for every event on the cf edge whose base variable *aliases* the
tracked object feasibly -- phase 1's flowsTo results, conjoined with the
fact's path constraint, decide that (paper §2.2: "the aliasing results
produced by the first phase are held in memory to answer alias queries").

Error states are sticky and stop propagating: the edge that first enters
an error state is the witness the checker reports.
"""

from __future__ import annotations

from repro.grammar.cfg_grammar import ComposeContext, Grammar
from repro.graph.model import canonical_label

CF = canonical_label(("cf",))


def state_label(fsm_name: str, state: str) -> tuple:
    """Label of a state fact: the object is in ``state`` of ``fsm_name``."""
    return canonical_label(("st", fsm_name, state))


class DataflowGrammar(Grammar):
    """Path-sensitive FSM-state propagation over control-flow edges."""

    table_driven = False

    def __init__(self, objects: dict, alias_index: dict, events_meta: dict):
        """
        ``objects``: dataflow obj vertex -> (FSM, alias obj vertex, tracked)
        ``alias_index``: (alias obj vertex, alias var vertex) -> encodings
        ``events_meta``: (src, dst) -> ((stmt_index, base_vertex, method), ...)
        """
        self.objects = objects
        self.alias_index = alias_index
        self.events_meta = events_meta
        self._fsm_events = {
            fsm.name: fsm.events() for fsm, _, _ in objects.values()
        }

    @property
    def output_labels(self):  # all state labels are outputs
        return frozenset()

    def compose(self, edge1, edge2, ctx: ComposeContext):
        label1, label2 = edge1[2], edge2[2]
        if label1[0] != "st" or label2 != CF:
            return ()
        entry = self.objects.get(edge1[0])
        if entry is None:
            return ()
        fsm, alias_obj, _tracked = entry
        state = label1[2]
        if fsm.is_error(state):
            return ()  # error is sticky; the error edge itself is the report
        events = self.events_meta.get((edge2[0], edge2[1]), ())
        new_state = state
        for _index, base_vertex, method in events:
            if method not in self._fsm_events[fsm.name]:
                continue
            encodings = self.alias_index.get((alias_obj, base_vertex))
            if not encodings:
                continue
            if any(
                ctx.feasible((edge1[3], edge2[3], alias_enc))
                for alias_enc in encodings
            ):
                new_state = fsm.step(new_state, method)
        return (state_label(fsm.name, new_state),)

    def closure_labels(self, initial_labels):
        seen = set()
        for fsm, _alias_obj, _tracked in self.objects.values():
            if fsm.name in seen:
                continue
            seen.add(fsm.name)
            for state in fsm.states():
                yield state_label(fsm.name, state)

    def relevant_source(self, label: tuple) -> bool:
        return label[0] == "st"

    def relevant_target(self, label: tuple) -> bool:
        return label == CF
