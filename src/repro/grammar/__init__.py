"""Grammar layer: the user-defined-function surface of the system.

A :class:`repro.grammar.cfg_grammar.Grammar` tells the engine which label
pairs compose into which transitive labels (the paper's context-free
grammar, normalised to two-symbol right-hand sides) and which labels spawn
derived edges on insertion (e.g. the reversed ``flowsToBar`` of every
``flowsTo``).  Two instances exist: the Sridharan-Bodik points-to grammar
and the dataflow/typestate grammar.
"""

from repro.grammar.cfg_grammar import Grammar, ComposeContext
from repro.grammar.pointsto import PointsToGrammar, FLOWS_TO, FLOWS_TO_BAR, ALIAS
from repro.grammar.dataflow import DataflowGrammar, state_label, CF
from repro.grammar.normalize import (
    FIELD,
    Production,
    Reversal,
    compile_grammar,
    compiled_points_to,
)

__all__ = [
    "Grammar",
    "ComposeContext",
    "PointsToGrammar",
    "FLOWS_TO",
    "FLOWS_TO_BAR",
    "ALIAS",
    "DataflowGrammar",
    "state_label",
    "CF",
    "FIELD",
    "Production",
    "Reversal",
    "compile_grammar",
    "compiled_points_to",
]
