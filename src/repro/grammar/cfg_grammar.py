"""Grammar interface consumed by the graph engine.

The engine checks each pair of consecutive edges (paper §4.2): labels must
compose under the grammar *and* the conjunction of the edges' path
constraints must be satisfiable.  The grammar sees raw label tuples; the
engine handles interning, encodings and constraint checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable


@dataclass
class ComposeContext:
    """Facilities the engine exposes to grammar UDFs during composition.

    ``feasible(encodings)`` checks the conjunction of the constraints of
    several path encodings (memoised); ``vertex(v)`` resolves a vertex id
    back to its key tuple.
    """

    feasible: Callable[[tuple], bool]
    vertex: Callable[[int], tuple]


class Grammar:
    """Base grammar: table-driven binary rules plus derivation hooks."""

    #: labels the analysis reports as results (e.g. ``("alias",)``)
    output_labels: frozenset = frozenset()

    def derived(self, label: tuple) -> Iterable[tuple[tuple, bool]]:
        """Labels derived from a newly inserted edge.

        Yields ``(new_label, reverse)`` pairs; ``reverse`` means the derived
        edge runs dst -> src with the reversed encoding.
        """
        return ()

    def compose(self, edge1, edge2, ctx: ComposeContext):
        """Transitive labels for consecutive edges ``edge1 . edge2``.

        Each edge is ``(src, dst, label, encoding)`` with the label as a raw
        tuple.  Returns an iterable of label tuples.
        """
        raise NotImplementedError

    def closure_labels(self, initial_labels: Iterable[tuple]) -> Iterable[tuple]:
        """Every label :meth:`compose` or :meth:`derived` can ever produce
        given a graph whose initial edges carry ``initial_labels``.

        The parallel engine pre-interns these so worker processes never
        allocate new label ids (ids must agree across processes).  A
        grammar whose closure labels cannot be enumerated must return
        every label it may emit or stay on the serial path.
        """
        return ()

    def relevant_source(self, label: tuple) -> bool:
        """Whether edges with this label can be the *left* edge of a pair.

        Lets the engine skip pairs that can never compose (a big constant-
        factor saving).
        """
        return True

    def relevant_target(self, label: tuple) -> bool:
        """Whether edges with this label can be the *right* edge of a pair."""
        return True
