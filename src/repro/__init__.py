"""repro -- a from-scratch reproduction of Grapple (EuroSys'19).

Grapple is a single-machine, disk-based graph system for fully
context-sensitive, path-sensitive static checking of finite-state
properties over large codebases.  See README.md and DESIGN.md.

Quickstart::

    from repro import Grapple, io_checker

    report = Grapple(source_code, [io_checker()]).run().report
    print(report.summary())
"""

from repro.analysis.pipeline import Grapple, GrappleOptions, GrappleRun
from repro.checkers import (
    Checker,
    Report,
    Warning,
    default_checkers,
    exception_checker,
    io_checker,
    lock_checker,
    run_checker,
    socket_checker,
)
from repro.checkers.fsm import FSM, make_fsm
from repro.engine.computation import EngineOptions

__version__ = "1.0.0"

__all__ = [
    "Grapple",
    "GrappleOptions",
    "GrappleRun",
    "EngineOptions",
    "FSM",
    "make_fsm",
    "Checker",
    "Report",
    "Warning",
    "default_checkers",
    "run_checker",
    "io_checker",
    "lock_checker",
    "exception_checker",
    "socket_checker",
]
