"""A small CNF SAT solver (DPLL with unit propagation).

Literals are nonzero ints (DIMACS convention): variable ``v`` is the positive
literal ``v`` and its negation is ``-v``.  Clauses are tuples of literals.
The solver supports incremental blocking clauses, which the lazy DPLL(T)
loop in :mod:`repro.smt.solver` uses to enumerate boolean models.
"""

from __future__ import annotations

from typing import Iterable, Optional


class CnfBuilder:
    """Tseitin transformation from :class:`repro.smt.expr.Expr` trees to CNF.

    Boolean atoms (theory atoms and boolean variables) are mapped to SAT
    variables; internal gates get fresh auxiliary variables.
    """

    def __init__(self) -> None:
        self.clauses: list[tuple[int, ...]] = []
        self.atom_vars: dict[object, int] = {}
        self._next_var = 1

    def fresh_var(self) -> int:
        v = self._next_var
        self._next_var += 1
        return v

    def atom_var(self, atom: object) -> int:
        """SAT variable standing for a (hashable) theory atom."""
        var = self.atom_vars.get(atom)
        if var is None:
            var = self.fresh_var()
            self.atom_vars[atom] = var
        return var

    def add_clause(self, literals: Iterable[int]) -> None:
        self.clauses.append(tuple(literals))

    def assert_literal(self, literal: int) -> None:
        self.clauses.append((literal,))

    @property
    def num_vars(self) -> int:
        return self._next_var - 1


def solve(
    clauses: list[tuple[int, ...]],
    num_vars: int,
    assumptions: Iterable[int] = (),
) -> Optional[dict[int, bool]]:
    """Return a satisfying assignment ``{var: bool}`` or None if UNSAT."""
    assignment: dict[int, bool] = {}
    for lit in assumptions:
        var, val = abs(lit), lit > 0
        if assignment.get(var, val) != val:
            return None
        assignment[var] = val

    trail: list[tuple[int, bool]] = []  # (var, is_decision)

    def assign(var: int, value: bool, is_decision: bool) -> bool:
        if var in assignment:
            return assignment[var] == value
        assignment[var] = value
        trail.append((var, is_decision))
        return True

    def unit_propagate() -> bool:
        changed = True
        while changed:
            changed = False
            for clause in clauses:
                unassigned = None
                satisfied = False
                count = 0
                for lit in clause:
                    var = abs(lit)
                    if var in assignment:
                        if assignment[var] == (lit > 0):
                            satisfied = True
                            break
                    else:
                        unassigned = lit
                        count += 1
                if satisfied:
                    continue
                if count == 0:
                    return False  # conflict
                if count == 1:
                    if not assign(abs(unassigned), unassigned > 0, False):
                        return False
                    changed = True
        return True

    def backtrack() -> Optional[int]:
        """Undo to the most recent decision; return its variable or None."""
        while trail:
            var, is_decision = trail.pop()
            del assignment[var]
            if is_decision:
                return var
        return None

    # Iterative DPLL: decide, propagate, on conflict flip the last decision.
    flipped: dict[int, bool] = {}  # decision vars already tried both ways
    while True:
        if unit_propagate():
            undecided = None
            for clause in clauses:
                for lit in clause:
                    if abs(lit) not in assignment:
                        undecided = abs(lit)
                        break
                if undecided:
                    break
            if undecided is None:
                for v in range(1, num_vars + 1):
                    assignment.setdefault(v, False)
                return dict(assignment)
            flipped.pop(undecided, None)
            assign(undecided, True, True)
        else:
            while True:
                var = backtrack()
                if var is None:
                    return None
                if var not in flipped:
                    flipped[var] = True
                    assign(var, False, True)
                    break
