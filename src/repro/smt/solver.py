"""Lazy DPLL(T) solver facade.

The solver decides satisfiability of boolean combinations of linear integer
comparisons and boolean variables:

* **fast path** -- a pure conjunction of literals goes straight to the
  Fourier-Motzkin theory check (this is the common case for path
  constraints, which are conjunctions of branch conditions);
* **general path** -- the formula's boolean structure is Tseitin-encoded,
  boolean models are enumerated with the DPLL core, and each model's implied
  theory literals are checked; theory conflicts add blocking clauses.

Comparisons that are not linear (variable products) are treated as opaque
boolean atoms: they constrain nothing in the theory and so err on the SAT
side, the conservative direction for path feasibility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from fractions import Fraction

from repro.smt import expr as E
from repro.smt import dpll
from repro.smt.fourier_motzkin import check_conjunction, find_model
from repro.smt.linear import LinearAtom, NonLinearError, atom_from_comparison

_COMPARISONS = (E.LT, E.LE, E.EQ, E.NE)

# Give up enumerating boolean models after this many theory conflicts and
# answer SAT (conservative for path feasibility).
MAX_THEORY_ITERATIONS = 256


class Result(enum.Enum):
    SAT = "sat"
    UNSAT = "unsat"


@dataclass
class SolverStats:
    """Counters exposed for the engine's performance accounting."""

    checks: int = 0
    sat: int = 0
    unsat: int = 0
    theory_calls: int = 0
    fast_path: int = 0
    gave_up: int = 0
    # Engine-side feasibility memo (keyed by hash-consed encoding id):
    # queries answered without touching the tuple-keyed LRU or the solver,
    # and queries that fell through to them.
    memo_hits: int = 0
    memo_misses: int = 0

    def merge(self, other: "SolverStats") -> None:
        """Sum every counter field (derived, so new counters can't be
        forgotten the way a hand-written list can)."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class _Literal:
    """A theory literal: an atom plus polarity."""

    atom: object  # LinearAtom | ("bvar", name) | ("opaque", Expr)
    positive: bool


class Solver:
    """Decides satisfiability of :class:`repro.smt.expr.Expr` formulas."""

    def __init__(self) -> None:
        self.stats = SolverStats()

    def check(self, formula: E.Expr) -> Result:
        """Check one formula; returns :class:`Result`."""
        self.stats.checks += 1
        result = self._check(formula)
        if result is Result.SAT:
            self.stats.sat += 1
        else:
            self.stats.unsat += 1
        return result

    def is_satisfiable(self, formula: E.Expr) -> bool:
        return self.check(formula) is Result.SAT

    def check_conjunction(self, formulas: list[E.Expr]) -> Result:
        """Check the conjunction of several formulas."""
        return self.check(E.and_(*formulas))

    def check_batch(self, formulas, gave_up_flags: list | None = None):
        """Check several independent formulas in one call.

        Entry point for the engine's grouped feasibility checks
        (``engine/kernel.py``): a batch of distinct canonical constraint
        forms arrives together instead of one solver round-trip per
        composed edge.  Each formula is charged to the same counters as
        an individual :meth:`check`.  When ``gave_up_flags`` is given it
        receives one bool per formula saying whether that check
        exhausted the DPLL(T) iteration budget (such verdicts are
        conservative and must not be memoised by form).
        """
        results = []
        for formula in formulas:
            before = self.stats.gave_up
            results.append(self.check(formula))
            if gave_up_flags is not None:
                gave_up_flags.append(self.stats.gave_up != before)
        return results

    def get_model(self, formula: E.Expr):
        """A satisfying assignment ``{name: Fraction|bool}``, or None.

        Integer variables get :class:`fractions.Fraction` values (whole
        whenever an integer point exists in the satisfying region);
        boolean variables get bools.  Opaque atoms are unconstrained and
        do not appear in the model.
        """
        if formula is E.FALSE:
            return None
        if formula is E.TRUE:
            return {}
        literals = _conjunction_literals(formula)
        if literals is not None:
            return self._theory_model(literals)
        builder = dpll.CnfBuilder()
        root = _tseitin(formula, builder)
        builder.assert_literal(root)
        atom_for_var = {v: a for a, v in builder.atom_vars.items()}
        for _ in range(MAX_THEORY_ITERATIONS):
            bool_model = dpll.solve(builder.clauses, builder.num_vars)
            if bool_model is None:
                return None
            literals = [
                _Literal(atom_for_var[v], bool_model[v]) for v in atom_for_var
            ]
            model = self._theory_model(literals)
            if model is not None:
                return model
            builder.add_clause(
                (-v if bool_model[v] else v) for v in atom_for_var
            )
        return None

    def _theory_model(self, literals):
        """Model of a conjunction of theory literals, or None."""
        bool_values: dict = {}
        atoms: list[LinearAtom] = []
        opaque_polarity: dict = {}
        for lit in literals:
            atom = lit.atom
            if isinstance(atom, LinearAtom):
                atoms.append(atom if lit.positive else atom.negated())
            elif atom[0] == "bvar":
                name = atom[1]
                if bool_values.setdefault(name, lit.positive) != lit.positive:
                    return None
            else:
                if opaque_polarity.setdefault(atom, lit.positive) != lit.positive:
                    return None
        lia_model = find_model(atoms)
        if lia_model is None:
            return None
        model = dict(lia_model)
        model.update(bool_values)
        return model

    # -- internals --------------------------------------------------------

    def _check(self, formula: E.Expr) -> Result:
        if formula is E.TRUE:
            return Result.SAT
        if formula is E.FALSE:
            return Result.UNSAT
        literals = _conjunction_literals(formula)
        if literals is not None:
            self.stats.fast_path += 1
            return self._theory_check(literals)
        return self._dpllt(formula)

    def _theory_check(self, literals: list[_Literal]) -> Result:
        """Decide a conjunction of theory literals."""
        self.stats.theory_calls += 1
        bool_polarity: dict[str, bool] = {}
        opaque_polarity: dict[E.Expr, bool] = {}
        atoms: list[LinearAtom] = []
        for lit in literals:
            atom = lit.atom
            if isinstance(atom, LinearAtom):
                atoms.append(atom if lit.positive else atom.negated())
            elif atom[0] == "bvar":
                name = atom[1]
                if bool_polarity.setdefault(name, lit.positive) != lit.positive:
                    return Result.UNSAT
            else:  # opaque comparison: only self-contradiction is detectable
                if opaque_polarity.setdefault(atom, lit.positive) != lit.positive:
                    return Result.UNSAT
        if check_conjunction(atoms):
            return Result.SAT
        return Result.UNSAT

    def _dpllt(self, formula: E.Expr) -> Result:
        builder = dpll.CnfBuilder()
        root = _tseitin(formula, builder)
        builder.assert_literal(root)
        atom_for_var = {v: a for a, v in builder.atom_vars.items()}
        for _ in range(MAX_THEORY_ITERATIONS):
            model = dpll.solve(builder.clauses, builder.num_vars)
            if model is None:
                return Result.UNSAT
            literals = [
                _Literal(atom_for_var[v], model[v])
                for v in atom_for_var
            ]
            if self._theory_check(literals) is Result.SAT:
                return Result.SAT
            # Block this combination of atom polarities.
            builder.add_clause(
                (-v if model[v] else v) for v in atom_for_var
            )
        self.stats.gave_up += 1
        return Result.SAT  # conservative


def _atom_of(expr: E.Expr):
    """Classify an atomic boolean expression into ``(atom, polarity)``.

    Returns None when the expression is not atomic.  Opaque atoms (boolean
    equalities and nonlinear comparisons) are canonicalised so that an atom
    and its pushed-through negation map to the same key with opposite
    polarity (``a <= b`` is stored as ``not (b < a)``).
    """
    if expr.kind == E.VAR:
        return ("bvar", expr.args[0]), True
    if expr.kind in _COMPARISONS:
        left = expr.args[0]
        if left.sort == "bool":
            return _opaque_atom(expr)
        try:
            return atom_from_comparison(expr), True
        except NonLinearError:
            return _opaque_atom(expr)
    return None


def _opaque_atom(expr: E.Expr):
    """Canonical (key, polarity) for a comparison treated as opaque."""
    left, right = expr.args
    if expr.kind == E.LE:
        return ("opaque", E.LT, right, left), False
    if expr.kind == E.NE:
        kind, positive = E.EQ, False
    else:
        kind, positive = expr.kind, True
    if kind == E.EQ and repr(right) < repr(left):
        left, right = right, left
    return ("opaque", kind, left, right), positive


def _conjunction_literals(formula: E.Expr):
    """If the formula is a conjunction of literals, return them; else None."""
    terms = formula.args if formula.kind == E.AND else (formula,)
    literals: list[_Literal] = []
    for term in terms:
        positive = True
        while term.kind == E.NOT:
            positive = not positive
            term = term.args[0]
        if term is E.TRUE or term is E.FALSE:
            if (term is E.TRUE) != positive:
                # A constantly-false literal: inject the unsat atom 1 == 0.
                literals.append(
                    _Literal(LinearAtom((), Fraction(1), "=="), True)
                )
            continue
        classified = _atom_of(term)
        if classified is None:
            return None
        atom, atom_positive = classified
        literals.append(_Literal(atom, positive == atom_positive))
    return literals


def _tseitin(expr: E.Expr, builder: dpll.CnfBuilder) -> int:
    """Encode the expression; returns the literal equivalent to it."""
    if expr is E.TRUE:
        v = builder.fresh_var()
        builder.assert_literal(v)
        return v
    if expr is E.FALSE:
        v = builder.fresh_var()
        builder.assert_literal(-v)
        return v
    if expr.kind == E.NOT:
        return -_tseitin(expr.args[0], builder)
    classified = _atom_of(expr)
    if classified is not None:
        atom, positive = classified
        var = builder.atom_var(atom)
        return var if positive else -var
    child_lits = [_tseitin(a, builder) for a in expr.args]
    gate = builder.fresh_var()
    if expr.kind == E.AND:
        for lit in child_lits:
            builder.add_clause((-gate, lit))
        builder.add_clause((gate,) + tuple(-l for l in child_lits))
    elif expr.kind == E.OR:
        for lit in child_lits:
            builder.add_clause((gate, -lit))
        builder.add_clause((-gate,) + tuple(child_lits))
    else:
        raise ValueError(f"cannot encode boolean node {expr.kind!r}")
    return gate
