"""S-expression serialisation of SMT expressions.

Used by the string-based constraint baseline (paper Table 5): instead of
interval-sequence encodings, each edge carries its whole constraint as a
string, which must be parsed back before solving.  The format is a plain
prefix notation::

    (and (< (+ (var int x) (int 1)) (int 0)) (var bool b))
"""

from __future__ import annotations

from repro.smt import expr as E

_BINARY = {E.ADD, E.MUL, E.LT, E.LE, E.EQ, E.NE, E.AND, E.OR}


def serialize_expr(expr: E.Expr) -> str:
    """Render an expression as an s-expression string."""
    if expr.kind == E.INT_CONST:
        return f"(int {expr.value})"
    if expr.kind == E.BOOL_CONST:
        return "(true)" if expr.value else "(false)"
    if expr.kind == E.VAR:
        return f"(var {expr.sort} {expr.args[0]})"
    parts = " ".join(serialize_expr(a) for a in expr.args)
    return f"({expr.kind} {parts})"


def parse_expr(text: str) -> E.Expr:
    """Inverse of :func:`serialize_expr`."""
    tokens = _tokenize(text)
    expr, pos = _parse(tokens, 0)
    if pos != len(tokens):
        raise ValueError(f"trailing tokens at {pos} in {text[:80]!r}")
    return expr


def _tokenize(text: str) -> list[str]:
    return text.replace("(", " ( ").replace(")", " ) ").split()


def _parse(tokens: list[str], pos: int):
    if tokens[pos] != "(":
        raise ValueError(f"expected '(' at token {pos}")
    head = tokens[pos + 1]
    pos += 2
    if head == "int":
        value = int(tokens[pos])
        _expect_close(tokens, pos + 1)
        return E.IntConst(value), pos + 2
    if head in ("true", "false"):
        _expect_close(tokens, pos)
        return (E.TRUE if head == "true" else E.FALSE), pos + 1
    if head == "var":
        sort, name = tokens[pos], tokens[pos + 1]
        _expect_close(tokens, pos + 2)
        var = E.IntVar(name) if sort == "int" else E.BoolVar(name)
        return var, pos + 3
    if head == E.NOT:
        inner, pos = _parse(tokens, pos)
        _expect_close(tokens, pos)
        return E.not_(inner), pos + 1
    if head in _BINARY:
        args = []
        while tokens[pos] != ")":
            arg, pos = _parse(tokens, pos)
            args.append(arg)
        pos += 1  # consume ')'
        return _build(head, args), pos
    raise ValueError(f"unknown head {head!r}")


def _expect_close(tokens: list[str], pos: int) -> None:
    if tokens[pos] != ")":
        raise ValueError(f"expected ')' at token {pos}")


def _build(kind: str, args: list) -> E.Expr:
    if kind == E.AND:
        return E.and_(*args)
    if kind == E.OR:
        return E.or_(*args)
    if len(args) != 2:
        raise ValueError(f"{kind} expects 2 operands, got {len(args)}")
    table = {
        E.ADD: E.add,
        E.MUL: E.mul,
        E.LT: E.lt,
        E.LE: E.le,
        E.EQ: E.eq,
        E.NE: E.ne,
    }
    return table[kind](args[0], args[1])
