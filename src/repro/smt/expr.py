"""Immutable expression algebra for the SMT solver.

Expressions are hashable trees built from a small set of node kinds.  Two
sorts exist: ``int`` (arithmetic) and ``bool`` (logical).  Constructors
perform light local simplification (constant folding, flattening of
``and``/``or``) so that the trees the analyses build stay small.
"""

from __future__ import annotations

from typing import Iterable

# Node kinds.  Kept as plain strings for cheap hashing and debuggability.
INT_CONST = "int"
BOOL_CONST = "bool"
VAR = "var"
ADD = "+"
MUL = "*"
LT = "<"
LE = "<="
EQ = "=="
NE = "!="
AND = "and"
OR = "or"
NOT = "not"

_INT = "int"
_BOOL = "bool"


class Expr:
    """An immutable expression node.

    Instances are created through the module-level constructor functions
    (:func:`add`, :func:`lt`, :func:`and_`, ...) rather than directly.
    """

    __slots__ = ("kind", "args", "sort", "_hash")

    def __init__(self, kind: str, args: tuple, sort: str):
        self.kind = kind
        self.args = args
        self.sort = sort
        self._hash = hash((kind, args))

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other) -> bool:
        if self is other:
            return True
        if not isinstance(other, Expr):
            return NotImplemented
        return self.kind == other.kind and self.args == other.args

    def __repr__(self) -> str:
        if self.kind in (INT_CONST, BOOL_CONST):
            return repr(self.args[0])
        if self.kind == VAR:
            return self.args[0]
        if self.kind == NOT:
            return f"(not {self.args[0]!r})"
        inner = f" {self.kind} ".join(repr(a) for a in self.args)
        return f"({inner})"

    @property
    def is_const(self) -> bool:
        return self.kind in (INT_CONST, BOOL_CONST)

    @property
    def value(self):
        """Constant value; only valid when :attr:`is_const` is true."""
        return self.args[0]

    def variables(self) -> frozenset:
        """All variable names appearing in the expression."""
        if self.kind == VAR:
            return frozenset((self.args[0],))
        if self.is_const:
            return frozenset()
        out: set = set()
        for a in self.args:
            out |= a.variables()
        return frozenset(out)


def IntConst(value: int) -> Expr:
    return Expr(INT_CONST, (int(value),), _INT)


def BoolConst(value: bool) -> Expr:
    return TRUE if value else FALSE


TRUE = Expr(BOOL_CONST, (True,), _BOOL)
FALSE = Expr(BOOL_CONST, (False,), _BOOL)


def IntVar(name: str) -> Expr:
    return Expr(VAR, (name,), _INT)


def BoolVar(name: str) -> Expr:
    return Expr(VAR, (name,), _BOOL)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise TypeError(message)


def add(a: Expr, b: Expr) -> Expr:
    _require(a.sort == _INT and b.sort == _INT, "add expects int operands")
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return IntConst(a.value + b.value)
    if a.kind == INT_CONST and a.value == 0:
        return b
    if b.kind == INT_CONST and b.value == 0:
        return a
    return Expr(ADD, (a, b), _INT)


def sub(a: Expr, b: Expr) -> Expr:
    return add(a, neg(b))


def neg(a: Expr) -> Expr:
    return mul(IntConst(-1), a)


def mul(a: Expr, b: Expr) -> Expr:
    _require(a.sort == _INT and b.sort == _INT, "mul expects int operands")
    if a.kind == INT_CONST and b.kind == INT_CONST:
        return IntConst(a.value * b.value)
    if a.kind == INT_CONST and a.value == 1:
        return b
    if b.kind == INT_CONST and b.value == 1:
        return a
    if (a.kind == INT_CONST and a.value == 0) or (b.kind == INT_CONST and b.value == 0):
        return IntConst(0)
    return Expr(MUL, (a, b), _INT)


def _cmp(kind: str, a: Expr, b: Expr) -> Expr:
    _require(a.sort == b.sort, f"{kind} expects operands of the same sort")
    if a.is_const and b.is_const:
        table = {
            LT: a.value < b.value,
            LE: a.value <= b.value,
            EQ: a.value == b.value,
            NE: a.value != b.value,
        }
        return BoolConst(table[kind])
    return Expr(kind, (a, b), _BOOL)


def lt(a: Expr, b: Expr) -> Expr:
    return _cmp(LT, a, b)


def le(a: Expr, b: Expr) -> Expr:
    return _cmp(LE, a, b)


def gt(a: Expr, b: Expr) -> Expr:
    return _cmp(LT, b, a)


def ge(a: Expr, b: Expr) -> Expr:
    return _cmp(LE, b, a)


def eq(a: Expr, b: Expr) -> Expr:
    return _cmp(EQ, a, b)


def ne(a: Expr, b: Expr) -> Expr:
    return _cmp(NE, a, b)


def and_(*terms: Expr) -> Expr:
    flat: list[Expr] = []
    for t in _flatten(terms, AND):
        if t is FALSE:
            return FALSE
        if t is TRUE:
            continue
        flat.append(t)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return Expr(AND, tuple(flat), _BOOL)


def or_(*terms: Expr) -> Expr:
    flat: list[Expr] = []
    for t in _flatten(terms, OR):
        if t is TRUE:
            return TRUE
        if t is FALSE:
            continue
        flat.append(t)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Expr(OR, tuple(flat), _BOOL)


def _flatten(terms: Iterable[Expr], kind: str) -> Iterable[Expr]:
    for t in terms:
        _require(t.sort == _BOOL, f"{kind} expects bool operands")
        if t.kind == kind:
            yield from t.args
        else:
            yield t


def not_(a: Expr) -> Expr:
    _require(a.sort == _BOOL, "not expects a bool operand")
    if a is TRUE:
        return FALSE
    if a is FALSE:
        return TRUE
    if a.kind == NOT:
        return a.args[0]
    # Push negation through comparisons so atoms stay in positive form.
    if a.kind == LT:
        return le(a.args[1], a.args[0])
    if a.kind == LE:
        return lt(a.args[1], a.args[0])
    if a.kind == EQ:
        return ne(a.args[0], a.args[1])
    if a.kind == NE:
        return eq(a.args[0], a.args[1])
    return Expr(NOT, (a,), _BOOL)


def implies(a: Expr, b: Expr) -> Expr:
    return or_(not_(a), b)


def rename_variables(expr: Expr, rename) -> Expr:
    """Rebuild an expression with every variable name mapped by ``rename``.

    Used by the path decoder to give symbols per-invocation instances.
    """
    if expr.kind == VAR:
        new_name = rename(expr.args[0])
        if new_name == expr.args[0]:
            return expr
        return Expr(VAR, (new_name,), expr.sort)
    if expr.is_const:
        return expr
    new_args = tuple(rename_variables(a, rename) for a in expr.args)
    if new_args == expr.args:
        return expr
    return Expr(expr.kind, new_args, expr.sort)
