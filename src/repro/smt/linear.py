"""Normalisation of arithmetic expressions into linear form.

A linear term is represented as ``(coeffs, const)`` where ``coeffs`` maps a
variable name to an integer coefficient.  Comparison atoms normalise to the
canonical shape ``sum(coeffs) + const <= 0`` / ``< 0`` / ``== 0`` / ``!= 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.smt import expr as E


class NonLinearError(Exception):
    """Raised when an expression contains a product of two variables."""


@dataclass(frozen=True, slots=True)
class LinearAtom:
    """A normalised comparison: ``coeffs . vars + const  REL  0``.

    ``rel`` is one of ``"<="``, ``"<"``, ``"=="``, ``"!="``.
    ``coeffs`` is a tuple of ``(name, coefficient)`` pairs sorted by name.
    """

    coeffs: tuple[tuple[str, Fraction], ...]
    const: Fraction
    rel: str

    def negated(self) -> "LinearAtom":
        """The atom's logical negation, itself in canonical form."""
        if self.rel == "==":
            return LinearAtom(self.coeffs, self.const, "!=")
        if self.rel == "!=":
            return LinearAtom(self.coeffs, self.const, "==")
        flipped = tuple((v, -c) for v, c in self.coeffs)
        if self.rel == "<=":  # not(e <= 0)  ==  -e < 0
            return LinearAtom(flipped, -self.const, "<")
        return LinearAtom(flipped, -self.const, "<=")  # not(e < 0) == -e <= 0

    def variables(self) -> frozenset[str]:
        return frozenset(v for v, _ in self.coeffs)


def linearize(expr: E.Expr) -> tuple[dict[str, Fraction], Fraction]:
    """Reduce an int-sorted expression to ``(coeffs, const)``.

    Raises :class:`NonLinearError` on variable products.
    """
    if expr.kind == E.INT_CONST:
        return {}, Fraction(expr.value)
    if expr.kind == E.VAR:
        return {expr.args[0]: Fraction(1)}, Fraction(0)
    if expr.kind == E.ADD:
        coeffs: dict[str, Fraction] = {}
        const = Fraction(0)
        for arg in expr.args:
            sub_coeffs, sub_const = linearize(arg)
            const += sub_const
            for name, c in sub_coeffs.items():
                coeffs[name] = coeffs.get(name, Fraction(0)) + c
        return {n: c for n, c in coeffs.items() if c != 0}, const
    if expr.kind == E.MUL:
        left, right = expr.args
        lc, lk = linearize(left)
        rc, rk = linearize(right)
        if lc and rc:
            raise NonLinearError(f"product of variables in {expr!r}")
        if lc:
            scale, terms, base = rk, lc, lk
        else:
            scale, terms, base = lk, rc, rk
        return (
            {n: c * scale for n, c in terms.items() if c * scale != 0},
            base * scale,
        )
    raise NonLinearError(f"unsupported arithmetic node {expr.kind!r}")


def atom_from_comparison(expr: E.Expr) -> LinearAtom:
    """Normalise a comparison over int expressions to a :class:`LinearAtom`.

    ``a < b``  becomes ``a - b < 0``; likewise for the other relations.
    """
    if expr.kind not in (E.LT, E.LE, E.EQ, E.NE):
        raise ValueError(f"not a comparison: {expr!r}")
    left, right = expr.args
    lc, lk = linearize(left)
    rc, rk = linearize(right)
    coeffs = dict(lc)
    for name, c in rc.items():
        coeffs[name] = coeffs.get(name, Fraction(0)) - c
    coeffs = {n: c for n, c in coeffs.items() if c != 0}
    const = lk - rk
    rel = {E.LT: "<", E.LE: "<=", E.EQ: "==", E.NE: "!="}[expr.kind]
    return LinearAtom(tuple(sorted(coeffs.items())), const, rel)
