"""Self-contained SMT solver used as a substitute for Z3.

The path constraints produced by Grapple's analyses are boolean combinations
of linear integer arithmetic atoms (branch conditions) and equalities
(parameter passing).  This package provides:

* :mod:`repro.smt.expr` -- an immutable expression algebra,
* :mod:`repro.smt.linear` -- normalisation of arithmetic atoms,
* :mod:`repro.smt.fourier_motzkin` -- a conjunction-level LIA decision
  procedure (equality substitution + Fourier-Motzkin elimination),
* :mod:`repro.smt.dpll` -- a CNF SAT solver,
* :mod:`repro.smt.solver` -- the lazy DPLL(T) facade.
"""

from repro.smt.expr import (
    Expr,
    IntConst,
    BoolConst,
    IntVar,
    BoolVar,
    add,
    sub,
    mul,
    neg,
    lt,
    le,
    gt,
    ge,
    eq,
    ne,
    and_,
    or_,
    not_,
    implies,
    TRUE,
    FALSE,
)
from repro.smt.solver import Solver, SolverStats, Result

__all__ = [
    "Expr",
    "IntConst",
    "BoolConst",
    "IntVar",
    "BoolVar",
    "add",
    "sub",
    "mul",
    "neg",
    "lt",
    "le",
    "gt",
    "ge",
    "eq",
    "ne",
    "and_",
    "or_",
    "not_",
    "implies",
    "TRUE",
    "FALSE",
    "Solver",
    "SolverStats",
    "Result",
]
