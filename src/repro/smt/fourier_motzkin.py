"""Conjunction-level decision procedure for linear integer arithmetic.

The procedure is:

1. substitute away equalities (Gaussian elimination),
2. case-split disequalities into strict inequalities,
3. run Fourier-Motzkin elimination on the remaining inequalities,
4. apply integer tightening (``e < 0`` over integers becomes ``e <= -1``
   after clearing denominators, constants are floored after gcd reduction).

The procedure is complete over the rationals and conservative over the
integers: a rational-satisfiable but integer-unsatisfiable system is
reported SAT, which for path-sensitivity means (at worst) a spurious
feasible path -- an over-approximation, never a missed one.  To bound the
worst-case doubling of Fourier-Motzkin, the constraint set is capped; on
overflow the system conservatively answers SAT.
"""

from __future__ import annotations

from fractions import Fraction
from math import floor, gcd

from repro.smt.linear import LinearAtom

# Above this many working inequalities the elimination gives up and
# conservatively reports SAT.
MAX_CONSTRAINTS = 4000

_ZERO = Fraction(0)


def check_conjunction(atoms: list[LinearAtom]) -> bool:
    """Return True iff the conjunction of atoms is (rationally) satisfiable."""
    equalities = [a for a in atoms if a.rel == "=="]
    disequalities = [a for a in atoms if a.rel == "!="]
    inequalities = [a for a in atoms if a.rel in ("<", "<=")]

    substitution: dict[str, tuple[dict[str, Fraction], Fraction]] = {}
    # Gaussian elimination over the equalities.
    pending = [( dict(a.coeffs), a.const) for a in equalities]
    while pending:
        coeffs, const = pending.pop()
        coeffs, const = _apply_substitution(coeffs, const, substitution)
        if not coeffs:
            if const != 0:
                return False
            continue
        # Solve for the first variable and record the substitution.
        name, coeff = next(iter(coeffs.items()))
        rest = {n: -c / coeff for n, c in coeffs.items() if n != name}
        substitution[name] = (rest, -const / coeff)
        # Normalise previously recorded substitutions against the new one.
        for prev, (pc, pk) in list(substitution.items()):
            if prev == name or name not in pc:
                continue
            scale = pc.pop(name)
            for n, c in rest.items():
                pc[n] = pc.get(n, _ZERO) + scale * c
            substitution[prev] = ({n: c for n, c in pc.items() if c != 0},
                                  pk + scale * (-const / coeff))

    ineqs: list[tuple[dict[str, Fraction], Fraction, bool]] = []
    for a in inequalities:
        coeffs, const = _apply_substitution(dict(a.coeffs), a.const, substitution)
        ineqs.append((coeffs, const, a.rel == "<"))

    if not disequalities:
        return _fm_satisfiable(ineqs)

    # Case-split each disequality e != 0 into e < 0 or -e < 0.
    head, *tail = disequalities
    coeffs, const = _apply_substitution(dict(head.coeffs), head.const, substitution)
    if not coeffs:
        if const == 0:
            return False
        return _check_with_diseqs(ineqs, tail, substitution)
    for branch_coeffs in (coeffs, {n: -c for n, c in coeffs.items()}):
        branch_const = const if branch_coeffs is coeffs else -const
        branch = ineqs + [(dict(branch_coeffs), branch_const, True)]
        if _check_with_diseqs(branch, tail, substitution):
            return True
    return False


def _check_with_diseqs(ineqs, diseqs, substitution) -> bool:
    """Recursive helper continuing the disequality case split."""
    if not diseqs:
        return _fm_satisfiable(ineqs)
    head, *tail = diseqs
    coeffs, const = _apply_substitution(dict(head.coeffs), head.const, substitution)
    if not coeffs:
        if const == 0:
            return False
        return _check_with_diseqs(ineqs, tail, substitution)
    for sign in (1, -1):
        branch_coeffs = {n: sign * c for n, c in coeffs.items()}
        branch = ineqs + [(branch_coeffs, sign * const, True)]
        if _check_with_diseqs(branch, tail, substitution):
            return True
    return False


def _apply_substitution(coeffs, const, substitution):
    """Apply recorded equality substitutions to ``coeffs . vars + const``."""
    out: dict[str, Fraction] = {}
    for name, c in coeffs.items():
        if name in substitution:
            sub_coeffs, sub_const = substitution[name]
            const += c * sub_const
            for n, sc in sub_coeffs.items():
                out[n] = out.get(n, _ZERO) + c * sc
        else:
            out[name] = out.get(name, _ZERO) + c
    return {n: c for n, c in out.items() if c != 0}, const


def _tighten(coeffs: dict[str, Fraction], const: Fraction, strict: bool):
    """Integer-tighten one inequality; returns (coeffs, const, strict)."""
    if not coeffs:
        return coeffs, const, strict
    denom = 1
    for c in list(coeffs.values()) + [const]:
        denom = denom * c.denominator // gcd(denom, c.denominator)
    scaled = {n: c * denom for n, c in coeffs.items()}
    k = const * denom
    if strict:  # e < 0 over integers  ==  e + 1 <= 0
        k += 1
        strict = False
    g = 0
    for c in scaled.values():
        g = gcd(g, int(c))
    if g > 1:
        # a.x + k <= 0  with gcd(a) = g  ==>  (a/g).x <= floor(-k/g)
        scaled = {n: c / g for n, c in scaled.items()}
        k = Fraction(-floor(-k / g))
    return scaled, k, strict


def _fm_satisfiable(ineqs) -> bool:
    """Fourier-Motzkin elimination over ``coeffs . vars + const (<|<=) 0``."""
    work = [_tighten(dict(c), k, s) for c, k, s in ineqs]
    while True:
        ground = [(c, k, s) for c, k, s in work if not c]
        for _, k, s in ground:
            if (s and k >= 0) or (not s and k > 0):
                return False
        work = [(c, k, s) for c, k, s in work if c]
        if not work:
            return True
        if len(work) > MAX_CONSTRAINTS:
            return True  # conservative: give up, treat as satisfiable
        # Pick the variable with the fewest pairings to slow the blowup.
        counts: dict[str, list[int]] = {}
        for c, _, _ in work:
            for name, coeff in c.items():
                lo_hi = counts.setdefault(name, [0, 0])
                lo_hi[0 if coeff < 0 else 1] += 1
        var = min(counts, key=lambda n: counts[n][0] * counts[n][1])
        lowers, uppers, rest = [], [], []
        for c, k, s in work:
            coeff = c.get(var, _ZERO)
            if coeff < 0:
                lowers.append((c, k, s, coeff))
            elif coeff > 0:
                uppers.append((c, k, s, coeff))
            else:
                rest.append((c, k, s))
        combined = rest
        for lc, lk, ls, lcoeff in lowers:
            for uc, uk, us, ucoeff in uppers:
                # lower: x >= (lc' + lk)/|lcoeff| ; upper: x <= -(uc' + uk)/ucoeff
                new_coeffs: dict[str, Fraction] = {}
                for n, c in lc.items():
                    if n != var:
                        new_coeffs[n] = new_coeffs.get(n, _ZERO) + c * ucoeff
                for n, c in uc.items():
                    if n != var:
                        new_coeffs[n] = new_coeffs.get(n, _ZERO) + c * (-lcoeff)
                new_coeffs = {n: c for n, c in new_coeffs.items() if c != 0}
                new_const = lk * ucoeff + uk * (-lcoeff)
                combined.append(_tighten(new_coeffs, new_const, ls or us))
        work = _dedupe(combined)


# -- model extraction ----------------------------------------------------------


def find_model(atoms: list[LinearAtom]):
    """A satisfying assignment ``{name: Fraction}`` or None if UNSAT.

    Runs the same pipeline as :func:`check_conjunction` but records the
    elimination trace, then assigns variables in reverse elimination order,
    each within the bounds induced by already-assigned variables.  Integer
    values are preferred; when only a rational point exists in a bound
    window the rational is returned (the caller reports it as-is).
    """
    equalities = [a for a in atoms if a.rel == "=="]
    disequalities = [a for a in atoms if a.rel == "!="]
    inequalities = [a for a in atoms if a.rel in ("<", "<=")]

    substitution: dict = {}
    pending = [(dict(a.coeffs), a.const) for a in equalities]
    while pending:
        coeffs, const = pending.pop()
        coeffs, const = _apply_substitution(coeffs, const, substitution)
        if not coeffs:
            if const != 0:
                return None
            continue
        name, coeff = next(iter(coeffs.items()))
        rest = {n: -c / coeff for n, c in coeffs.items() if n != name}
        substitution[name] = (rest, -const / coeff)
        for prev, (pc, pk) in list(substitution.items()):
            if prev == name or name not in pc:
                continue
            scale = pc.pop(name)
            for n, c in rest.items():
                pc[n] = pc.get(n, _ZERO) + scale * c
            substitution[prev] = (
                {n: c for n, c in pc.items() if c != 0},
                pk + scale * (-const / coeff),
            )

    base = []
    for a in inequalities:
        coeffs, const = _apply_substitution(dict(a.coeffs), a.const, substitution)
        base.append((coeffs, const, a.rel == "<"))

    # Enumerate disequality branches until one yields a model.
    for branch in _diseq_branches(base, disequalities, substitution):
        values = _model_of_inequalities(branch)
        if values is None:
            continue
        # Back-substitute the equality-eliminated variables.
        for name, (coeffs, const) in substitution.items():
            total = const
            for n, c in coeffs.items():
                total += c * values.get(n, _ZERO)
            values[name] = total
        return values
    return None


def _diseq_branches(base, disequalities, substitution):
    """Yield inequality systems covering all disequality sign choices."""
    if not disequalities:
        yield list(base)
        return
    head, *tail = disequalities
    coeffs, const = _apply_substitution(dict(head.coeffs), head.const, substitution)
    if not coeffs:
        if const == 0:
            return  # this (and every) branch is UNSAT
        yield from _diseq_branches(base, tail, substitution)
        return
    for sign in (1, -1):
        branch_head = ({n: sign * c for n, c in coeffs.items()}, sign * const, True)
        yield from _diseq_branches(base + [branch_head], tail, substitution)


def _model_of_inequalities(ineqs):
    """Model of a pure-inequality system via traced Fourier-Motzkin."""
    work = [_tighten(dict(c), k, s) for c, k, s in ineqs]
    trace = []  # (var, constraints-at-elimination-time)
    while True:
        for c, k, s in work:
            if not c and ((s and k >= 0) or (not s and k > 0)):
                return None
        work = [(c, k, s) for c, k, s in work if c]
        if not work:
            break
        if len(work) > MAX_CONSTRAINTS:
            return None  # refuse to build a model for exploded systems
        counts: dict = {}
        for c, _, _ in work:
            for name, coeff in c.items():
                lo_hi = counts.setdefault(name, [0, 0])
                lo_hi[0 if coeff < 0 else 1] += 1
        var = min(counts, key=lambda n: counts[n][0] * counts[n][1])
        involving = [(c, k, s) for c, k, s in work if c.get(var, _ZERO) != 0]
        trace.append((var, involving))
        lowers = [(c, k, s, c[var]) for c, k, s in involving if c[var] < 0]
        uppers = [(c, k, s, c[var]) for c, k, s in involving if c[var] > 0]
        combined = [(c, k, s) for c, k, s in work if c.get(var, _ZERO) == 0]
        for lc, lk, ls, lcoeff in lowers:
            for uc, uk, us, ucoeff in uppers:
                new_coeffs: dict = {}
                for n, c in lc.items():
                    if n != var:
                        new_coeffs[n] = new_coeffs.get(n, _ZERO) + c * ucoeff
                for n, c in uc.items():
                    if n != var:
                        new_coeffs[n] = new_coeffs.get(n, _ZERO) + c * (-lcoeff)
                new_coeffs = {n: c for n, c in new_coeffs.items() if c != 0}
                combined.append(
                    _tighten(new_coeffs, lk * ucoeff + uk * (-lcoeff), ls or us)
                )
        work = _dedupe(combined)

    values: dict = {}
    for var, involving in reversed(trace):
        lo, lo_strict = None, False
        hi, hi_strict = None, False
        for c, k, s in involving:
            coeff = c[var]
            rest = k
            for n, cn in c.items():
                if n != var:
                    rest += cn * values.get(n, _ZERO)
            bound = -rest / coeff
            if coeff < 0:  # coeff*var + rest <= 0 with coeff<0: var >= bound
                if lo is None or bound > lo or (bound == lo and s):
                    lo, lo_strict = bound, s
            else:
                if hi is None or bound < hi or (bound == hi and s):
                    hi, hi_strict = bound, s
        values[var] = _pick_value(lo, lo_strict, hi, hi_strict)
        if values[var] is None:
            return None
    return values


def _pick_value(lo, lo_strict, hi, hi_strict):
    """An integer (preferred) or rational in the given window."""
    from math import ceil

    if lo is None and hi is None:
        return _ZERO
    if lo is None:
        candidate = Fraction(floor(hi)) - (1 if hi_strict and hi == floor(hi) else 0)
        return candidate
    if hi is None:
        candidate = Fraction(ceil(lo)) + (1 if lo_strict and lo == ceil(lo) else 0)
        return candidate
    int_lo = Fraction(ceil(lo)) + (1 if lo_strict and lo == ceil(lo) else 0)
    int_hi = Fraction(floor(hi)) - (1 if hi_strict and hi == floor(hi) else 0)
    if int_lo <= int_hi:
        return int_lo
    midpoint = (lo + hi) / 2
    if (lo < midpoint < hi) or (
        not lo_strict and not hi_strict and lo <= midpoint <= hi
    ):
        return midpoint
    if not lo_strict and not hi_strict and lo == hi:
        return lo
    if lo < hi:
        return midpoint
    return None


def _dedupe(ineqs):
    seen = set()
    out = []
    for c, k, s in ineqs:
        key = (tuple(sorted(c.items())), k, s)
        if key not in seen:
            seen.add(key)
            out.append((c, k, s))
    return out
