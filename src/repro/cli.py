"""Command-line interface: ``python -m repro``.

Subcommands:

* ``check FILE... [--checkers io,lock,exception,socket] [--unroll K]``
  -- run finite-state property checkers over one or more mini-language
  source files (or a directory of ``.mini`` files); multiple files are
  linked through scope-graph name resolution first;
* ``subjects`` -- list the built-in synthetic evaluation subjects;
* ``generate NAME [--scale S] [-o FILE]`` -- emit a synthetic subject's
  source (and its ground-truth seed list to stderr); multi-file
  subjects (``gateway``) write one ``.mini`` per module when ``-o``
  names a directory.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro import EngineOptions, Grapple, GrappleOptions
from repro.checkers.checker import ALL_CHECKERS, PAPER_CHECKERS, Checker


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Grapple reproduction: static finite-state property"
        " checking via a disk-based graph engine",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="check one or more source files")
    check.add_argument("file", nargs="+",
                       help="mini-language source file(s), or one directory"
                       " of .mini files; multiple files are linked via"
                       " scope-graph name resolution")
    check.add_argument(
        "--checkers",
        default=",".join(PAPER_CHECKERS),
        help="comma-separated checker names (default: the paper's four,"
        f" {','.join(PAPER_CHECKERS)}; also available:"
        f" {','.join(n for n in ALL_CHECKERS if n not in PAPER_CHECKERS)})",
    )
    check.add_argument(
        "--spec",
        action="append",
        default=[],
        help="FSM specification file (repeatable); used *instead of* the"
        " built-in checkers when given",
    )
    check.add_argument("--unroll", type=int, default=2,
                       help="loop unroll bound (default 2)")
    check.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="pre-closure static-analysis reductions"
                       " (constant-branch folding, dead-store elimination,"
                       " FSM-relevance slicing, cf-chain compression);"
                       " on by default, --no-reduce disables")
    check.add_argument("--lint", action="store_true",
                       help="also run the mini-language linter and print"
                       " its diagnostics to stderr (use-before-init,"
                       " unreachable code, constant branches, dead"
                       " stores, shadowed variables, tainted sinks,"
                       " lock-order violations, tracked objects escaping"
                       " without a close; multi-file runs add"
                       " unresolved-name and ambiguous-import)")
    check.add_argument("--memory-budget", type=float, default=64,
                       help="engine memory budget in MiB; fractions allowed"
                       " (default 64)")
    check.add_argument("--workers", type=int, default=1,
                       help="parallel partition-pair workers (default 1,"
                       " i.e. the serial engine)")
    check.add_argument("--dispatch", default="fork",
                       choices=("fork", "auto", "inline"),
                       help="how --workers > 1 runs pairs: 'fork' always"
                       " forks worker processes, 'auto' falls back to"
                       " in-process dispatch on single-CPU machines,"
                       " 'inline' never forks (default fork)")
    check.add_argument("--no-shm", action="store_true",
                       help="disable the shared-memory data plane: pooled"
                       " pairs' partitions are materialised to disk for"
                       " workers instead of published as zero-copy"
                       " /dev/shm column segments")
    check.add_argument("--shard-by-source", default="auto",
                       metavar="N|auto|off",
                       help="order waves by contiguous source strata:"
                       " 'auto' derives one stratum per pool slot, an"
                       " integer fixes the stratum count, 'off' keeps"
                       " the serial pair order (default auto)")
    check.add_argument("--no-steal", action="store_true",
                       help="keep the hard wave barrier: do not refill"
                       " freed pool slots with further eligible pairs"
                       " while a wave's results stream back")
    check.add_argument("--no-cache", action="store_true",
                       help="disable constraint memoisation")
    check.add_argument("--compress-spills", action="store_true",
                       help="zlib-compress spill/delta frames written by the"
                       " background writer (trades CPU for disk bandwidth)")
    check.add_argument("--no-prefetch", action="store_true",
                       help="disable the background partition prefetcher"
                       " (loads become synchronous reads)")
    check.add_argument("--kernel", default="auto",
                       choices=("auto", "numpy", "stdlib", "off"),
                       help="batched closure-kernel backend: 'auto' uses"
                       " numpy when installed and the pure-stdlib"
                       " fallback otherwise (bit-identical results),"
                       " 'off' keeps the scalar drain (default auto)")
    check.add_argument("--batch-size", type=int, default=2048,
                       help="composed candidates per grouped-feasibility"
                       " kernel chunk (default 2048)")
    check.add_argument("--stats", action="store_true",
                       help="print engine statistics")
    check.add_argument("--trace", metavar="FILE", default=None,
                       help="record a Chrome trace_event JSON of the run"
                       " (open in chrome://tracing or ui.perfetto.dev;"
                       " a .jsonl suffix selects the compact JSONL form)")
    check.add_argument("--metrics-json", metavar="FILE", default=None,
                       help="write the grapple/run-report JSON (counters,"
                       " gauges, latency/size histograms, time breakdown)")
    check.add_argument("--heartbeat", type=float, metavar="SECONDS",
                       default=None,
                       help="print a progress line to stderr every N"
                       " seconds (pairs done/eligible, edges, budget"
                       " occupancy)")
    check.add_argument("--profile", action="store_true",
                       help="full profiling bundle: record a Chrome trace"
                       " (default trace.json unless --trace names one),"
                       " a run report with resource-telemetry timeseries"
                       " (default run-report.json unless --metrics-json"
                       " names one), and start the background gauge"
                       " sampler; analyze afterwards with"
                       " 'python -m repro.obs analyze'")
    check.add_argument("--sample-interval", type=float, metavar="SECONDS",
                       default=0.25,
                       help="resource-sampler cadence under --profile"
                       " (default 0.25)")
    check.add_argument("--workdir", metavar="DIR", default=None,
                       help="keep partition files (and per-wave checkpoint"
                       " manifests) in DIR instead of a throwaway temp"
                       " directory; required for --resume")
    check.add_argument("--resume", action="store_true",
                       help="resume an interrupted run from the checkpoint"
                       " manifest in --workdir (validated against the"
                       " current subject and engine options)")
    check.add_argument("--max-retries", type=int, default=2,
                       help="requeue a partition pair whose worker died or"
                       " whose partition was corrupt up to N times before"
                       " degrading it to a warning (default 2)")
    check.add_argument("--fault-plan", metavar="SPEC", default=None,
                       help="deterministic fault injection for testing, e.g."
                       " 'short_write@partition-write:2,kill_worker@"
                       "worker-task:3' (see repro.faults)")

    sub.add_parser("subjects", help="list built-in synthetic subjects")

    generate = sub.add_parser("generate", help="emit a synthetic subject")
    generate.add_argument("name")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("-o", "--output", default=None)

    serve = sub.add_parser(
        "serve",
        help="incremental analysis daemon: watch a workspace of .mini"
        " files and answer each edit with its warning delta",
    )
    serve.add_argument("workspace",
                       help="directory of .mini files to watch")
    serve.add_argument("--workdir", required=True,
                       help="persistent state directory (scope-artifact"
                       " cache, stratum results, serve-state.json)")
    serve.add_argument(
        "--checkers",
        default=",".join(PAPER_CHECKERS),
        help="comma-separated checker names (default: the paper's four)",
    )
    serve.add_argument("--unroll", type=int, default=2,
                       help="loop unroll bound (default 2)")
    serve.add_argument("--reduce", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="pre-closure reductions (default on)")
    serve.add_argument("--socket", metavar="PATH", default=None,
                       help="answer line-oriented JSON requests on a"
                       " local unix socket at PATH (edits can also be"
                       " pushed through it); without it the daemon"
                       " only polls the workspace")
    serve.add_argument("--poll", type=float, default=0.5,
                       help="workspace polling cadence in seconds"
                       " (mtime+digest, no external watchers;"
                       " default 0.5)")
    serve.add_argument("--once", action="store_true",
                       help="one scan: bring the persistent state"
                       " current, print the run-report fragment, exit"
                       " (scripted/CI mode)")
    serve.add_argument("--report", action="store_true",
                       help="with --once: print the full accumulated"
                       " serve report instead of the edit fragment")
    serve.add_argument("--trace", metavar="FILE", default=None,
                       help="record a Chrome trace of the serve session"
                       " (incr-diff/incr-join/incr-retract spans plus"
                       " the per-stratum engine spans)")
    return parser


def _gather_sources(file_args: list[str]):
    """Resolve the ``check`` positionals to a source payload.

    One regular file keeps the legacy single-source path (a plain
    string, no scope resolution); a directory expands to its sorted
    ``.mini`` files, and several files load as a ``{path: text}``
    mapping routed through scope-graph resolution.
    """
    paths: list[str] = []
    for entry in file_args:
        if os.path.isdir(entry):
            paths.extend(
                sorted(
                    os.path.join(entry, name)
                    for name in os.listdir(entry)
                    if name.endswith(".mini")
                )
            )
        else:
            paths.append(entry)
    if not paths:
        raise FileNotFoundError(
            f"no .mini files found in {', '.join(file_args)}"
        )
    if len(paths) == 1 and len(file_args) == 1 \
            and not os.path.isdir(file_args[0]):
        with open(paths[0]) as f:
            return paths[0], f.read()
    sources = {}
    for path in paths:
        with open(path) as f:
            sources[path] = f.read()
    return ";".join(paths), sources


def cmd_check(args) -> int:
    """``repro check``: exit 1 when warnings are found, else 0."""
    subject_name, source = _gather_sources(args.file)
    if args.spec:
        from repro.checkers.spec import load_fsm_specs

        fsms = [fsm for path in args.spec for fsm in load_fsm_specs(path)]
        checkers = [Checker(fsm.name, fsm) for fsm in fsms]
    else:
        checkers = [
            Checker.by_name(n.strip()) for n in args.checkers.split(",")
        ]
    if args.profile:
        # --profile is the bundle: trace + run report + gauge sampler,
        # with conventional filenames unless the dedicated flags chose.
        if not args.trace:
            args.trace = "trace.json"
        if not args.metrics_json:
            args.metrics_json = "run-report.json"
    recorder = None
    if args.trace:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
    sampler = None
    if args.profile:
        from repro.obs.profile import ResourceSampler

        sampler = ResourceSampler(interval=args.sample_interval)
    if args.resume and not args.workdir:
        print("repro: --resume requires --workdir (a checkpoint can only"
              " live in a directory that survives the run)", file=sys.stderr)
        return 2
    if args.shard_by_source not in ("auto", "off") \
            and not args.shard_by_source.isdigit():
        print("repro: --shard-by-source wants an integer, 'auto', or 'off'",
              file=sys.stderr)
        return 2
    fault_plan = None
    if args.fault_plan:
        from repro.faults import FaultPlan, FaultPlanError

        try:
            fault_plan = FaultPlan.parse(args.fault_plan)
        except FaultPlanError as exc:
            print(f"repro: bad --fault-plan: {exc}", file=sys.stderr)
            return 2
    options = GrappleOptions(
        unroll=args.unroll,
        reduce=args.reduce,
        engine=EngineOptions(
            memory_budget=int(args.memory_budget * (1 << 20)),
            enable_cache=not args.no_cache,
            workers=args.workers,
            parallel_dispatch=args.dispatch,
            shm=not args.no_shm,
            shard_by_source=(
                int(args.shard_by_source)
                if args.shard_by_source.isdigit()
                else args.shard_by_source
            ),
            steal=not args.no_steal,
            compress_spills=args.compress_spills,
            prefetch=not args.no_prefetch,
            kernel=args.kernel,
            batch_size=args.batch_size,
            trace=recorder,
            metrics=bool(args.metrics_json),
            heartbeat=args.heartbeat,
            sampler=sampler,
            workdir=args.workdir,
            resume=args.resume,
            max_retries=args.max_retries,
            fault_plan=fault_plan,
        ),
    )
    if args.lint:
        from repro.sa.lint import run_lint, run_lint_files

        fsms = [c.fsm for c in checkers]
        if isinstance(source, str):
            lint_report = run_lint(source, fsms=fsms, unroll=args.unroll)
        else:
            lint_report = run_lint_files(
                source, fsms=fsms, unroll=args.unroll
            )
        print(lint_report.summary(), file=sys.stderr)
    from repro.engine.checkpoint import CheckpointMismatch

    try:
        run = Grapple(source, [c.fsm for c in checkers], options).run()
    except CheckpointMismatch as exc:
        print(f"repro: cannot resume: {exc}", file=sys.stderr)
        return 2
    finally:
        if sampler is not None:
            sampler.stop()
    if recorder is not None:
        recorder.export(args.trace)
        print(
            f"trace: {len(recorder.events)} events from"
            f" {len(recorder.pids())} process(es) -> {args.trace}",
            file=sys.stderr,
        )
    if args.metrics_json:
        import json

        report = run.run_report(
            subject=subject_name,
            telemetry=sampler.timeseries() if sampler is not None else None,
        )
        with open(args.metrics_json, "w") as f:
            json.dump(report, f, indent=2)
            f.write("\n")
        print(f"run report -> {args.metrics_json}", file=sys.stderr)
    print(run.report.summary())
    if args.stats:
        stats = run.stats
        print()
        print(f"vertices            : {stats.vertices}")
        print(f"edges before/after  : {stats.edges_before} / {stats.edges_after}")
        print(f"partitions          : {stats.final_partitions}")
        print(f"constraints solved  : {stats.constraints_solved}")
        print(f"cache hit rate      : {stats.cache_hit_rate:.0%}")
        print(f"prefetch hit rate   : {stats.prefetch_hit_rate:.0%}"
              f" ({stats.prefetch_hits}/"
              f"{stats.prefetch_hits + stats.prefetch_misses} loads)")
        print(f"spill frames        : {stats.spill_frames}"
              f" ({stats.spill_bytes} bytes)")
        print(f"join batches/probes : {stats.join_batches}"
              f" / {stats.join_probes}")
        if stats.kernel_batches:
            fill = stats.batch_fill / stats.kernel_batches
            print(f"kernel batches      : {stats.kernel_batches}"
                  f" (avg fill {fill:.1f})")
            print(f"feasibility groups  : {stats.feasibility_groups}"
                  f" ({stats.group_hits} group hits)")
        if run.reduction is not None:
            print(f"reduction           : {run.reduction.summary()}")
        if run.compiled.resolution is not None:
            scopes = run.compiled.resolution.stats
            print(f"scope resolution    : {scopes.scope_resolutions}"
                  f" resolved across {scopes.files} files"
                  f" ({scopes.unresolved_refs} extern/unresolved,"
                  f" {scopes.ambiguous_refs} ambiguous)")
        print(f"total time          : {run.total_time:.2f}s")
    return 1 if run.report.warnings else 0


def cmd_subjects(_args) -> int:
    """``repro subjects``: list the built-in synthetic subjects."""
    from repro.workloads.multifile import MULTIFILE_PROFILES
    from repro.workloads.subjects import SUBJECT_PROFILES

    print(f"{'name':<12}{'version':<9}{'target LoC':>11}  description")
    for name, profile in SUBJECT_PROFILES.items():
        print(
            f"{name:<12}{profile.version:<9}{profile.target_loc:>11}"
            f"  {profile.description}"
        )
    for name, mf_profile in MULTIFILE_PROFILES.items():
        print(
            f"{name:<12}{'multi':<9}{mf_profile.target_loc:>11}"
            f"  {mf_profile.description}"
        )
    return 0


def _seed_summary(seeds) -> str:
    tp = sum(1 for s in seeds if s.expectation == "tp")
    fp = sum(1 for s in seeds if s.expectation == "fp")
    return f"seeded: {len(seeds)} patterns ({tp} TP, {fp} FP)"


def cmd_generate(args) -> int:
    """``repro generate``: emit a synthetic subject's source."""
    from repro.workloads import build_subject
    from repro.workloads.multifile import (
        MULTIFILE_PROFILES,
        build_multifile_subject,
    )

    if args.name in MULTIFILE_PROFILES:
        subject = build_multifile_subject(args.name, scale=args.scale)
        if args.output:
            os.makedirs(args.output, exist_ok=True)
            for path in sorted(subject.sources):
                with open(os.path.join(args.output, path), "w") as f:
                    f.write(subject.sources[path])
            print(
                f"wrote {subject.loc} lines across"
                f" {len(subject.sources)} files to {args.output}/",
                file=sys.stderr,
            )
        else:
            for path in sorted(subject.sources):
                print(f"// ---- {path} ----")
                print(subject.sources[path])
        print(_seed_summary(subject.seeds), file=sys.stderr)
        return 0

    subject = build_subject(args.name, scale=args.scale)
    if args.output:
        with open(args.output, "w") as f:
            f.write(subject.source)
        print(f"wrote {subject.loc} lines to {args.output}", file=sys.stderr)
    else:
        print(subject.source)
    print(_seed_summary(subject.seeds), file=sys.stderr)
    return 0


def cmd_serve(args) -> int:
    """``repro serve``: the incremental analysis daemon."""
    import json

    from repro.serve import Server, ServeEngine

    recorder = None
    if args.trace:
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
    checkers = [Checker.by_name(n.strip()) for n in args.checkers.split(",")]
    engine = ServeEngine(
        args.workspace, args.workdir, [c.fsm for c in checkers],
        unroll=args.unroll, reduce=args.reduce, trace=recorder,
    )
    try:
        if args.once:
            fragment = engine.scan()
            doc = engine.report() if args.report else fragment
            json.dump(doc, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
            return 0
        server = Server(engine, socket_path=args.socket, poll=args.poll)
        return server.run()
    except KeyboardInterrupt:
        return 0
    finally:
        if recorder is not None:
            recorder.export(args.trace)


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "check": cmd_check,
        "subjects": cmd_subjects,
        "generate": cmd_generate,
        "serve": cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
