"""Alias-analysis program-graph generator (paper §4.1, Figure 4/5b).

For every clone, every CFET node contributes:

* a ``new`` edge from the allocation-site vertex to the LHS variable,
* ``assign`` edges for variable copies,
* ``store[f]``/``load[f]`` edges for heap accesses,
* artificial ``assign`` edges connecting a variable's occurrence in an
  ancestor node to its next occurrence below (encoding ``[a, n]``),
* ``assign`` parameter-passing edges into callee clones (encoding ``{cid}``)
  and value-return edges back (encoding ``{rid}``), plus exceptional
  value-return edges realising :class:`repro.lang.ast.ExcLink`.

Every initial edge carries a single-element path encoding as described in
§4.1; transitive edges computed later by the engine get merged encodings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.callgraph import CallGraph
from repro.lang.transform import EXC_REGISTER
from repro.lang.types import ObjectInfo
from repro.cfet.cfet import Cfet, parent_id
from repro.cfet.icfet import Icfet
from repro.cfet import encoding as enc
from repro.graph.cloning import CloneForest, Clone
from repro.graph.model import ProgramGraph

NEW = ("new",)
ASSIGN = ("assign",)


def store_label(fieldname: str) -> tuple:
    """Label of a field-store edge ``x.f = y``."""
    return ("store", fieldname)


def load_label(fieldname: str) -> tuple:
    """Label of a field-load edge ``x = y.f``."""
    return ("load", fieldname)


@dataclass(frozen=True, slots=True)
class EventOccurrence:
    """One ``x.m()`` statement occurrence in one clone."""

    clone_key: tuple
    node_id: int
    stmt_index: int
    base: str
    method: str
    base_vertex: int


@dataclass(frozen=True, slots=True)
class TrackedObject:
    """An allocation-site instance of a type with an FSM specification."""

    vertex: int
    site: int
    type_name: str
    clone_key: tuple
    node_id: int
    line: int


@dataclass
class AliasGraphResult:
    """The generated alias graph plus tracked objects and event sites."""

    graph: ProgramGraph
    forest: CloneForest
    tracked: list[TrackedObject] = field(default_factory=list)
    events: list[EventOccurrence] = field(default_factory=list)


def build_alias_graph(
    program: ast.Program,
    icfet: Icfet,
    callgraph: CallGraph,
    info: ObjectInfo,
    forest: CloneForest,
    tracked_types: set[str] | None = None,
    relevance=None,
    rstats=None,
) -> AliasGraphResult:
    """Generate the cloned, path-encoded alias program graph.

    With ``relevance`` (a :class:`repro.sa.relevance.RelevanceInfo`), edges
    whose endpoints name-slice away from every tracked allocation are not
    generated at all; ``rstats`` counts the suppressions.
    """
    builder = _AliasBuilder(
        program, icfet, info, forest, tracked_types, relevance, rstats
    )
    builder.run()
    return builder.result


class _AliasBuilder:
    def __init__(self, program, icfet, info, forest, tracked_types,
                 relevance=None, rstats=None):
        self.program = program
        self.icfet = icfet
        self.info = info
        self.forest = forest
        self.tracked_types = tracked_types
        self.relevance = relevance
        self.rstats = rstats
        self.result = AliasGraphResult(ProgramGraph(), forest)
        # clone key -> {var -> sorted set of node ids with an occurrence}
        self.occurrences: dict = {}
        # clone key -> list of (node_id, ExcLink statement)
        self.exclinks: dict = {}

    # -- relevance gating ----------------------------------------------------

    def _keep(self, func: str, *names: str) -> bool:
        """True when every named variable can reach a tracked object."""
        if self.relevance is None:
            return True
        return all(self.relevance.var_relevant(func, n) for n in names)

    def _avoid(self) -> bool:
        """Record one suppressed edge; returns True for use in guards."""
        if self.rstats is not None:
            self.rstats.alias_edges_avoided += 1
        return True

    # -- vertex helpers ----------------------------------------------------

    def var_vertex(self, clone_key, var: str, node_id: int) -> int:
        """Vertex id of one variable occurrence in one clone's node."""
        ctx, func = clone_key
        return self.result.graph.vertices.intern(
            ("var", ctx, func, var, node_id)
        )

    def obj_vertex(self, site: int, clone_key, node_id: int) -> int:
        """Vertex id of one allocation-site instance."""
        ctx, func = clone_key
        return self.result.graph.vertices.intern(
            ("obj", site, ctx, func, node_id)
        )

    # -- main driver ---------------------------------------------------------

    def run(self) -> None:
        """Generate all edges: per-clone local, interprocedural, artificial."""
        for key in self.forest.clones:
            self._build_clone_local(key)
        # Call edges register occurrences (formals, return LHS), so they
        # must run before the artificial-edge pass links occurrences.
        for clone in self.forest.clones.values():
            self._build_call_edges(clone)
        for key in self.forest.clones:
            self._build_artificial_edges(key)

    def _objects(self, func: str) -> set:
        return self.info.object_vars.get(func, set())

    def _occur(self, clone_key, var: str, node_id: int) -> None:
        per_var = self.occurrences.setdefault(clone_key, {})
        per_var.setdefault(var, set()).add(node_id)

    # -- per-clone local edges ---------------------------------------------

    def _build_clone_local(self, clone_key) -> None:
        ctx, func = clone_key
        cfet = self.icfet.cfets.get(func)
        if cfet is None:
            return
        objects = self._objects(func)
        fn = self.program.functions[func]
        for param in fn.params:
            if param in objects and self._keep(func, param):
                self._occur(clone_key, param, 0)
        for node in cfet.nodes.values():
            self._build_node(clone_key, func, node, objects)
            if node.is_leaf:
                if (
                    node.return_var is not None
                    and node.return_var in objects
                    and self._keep(func, node.return_var)
                ):
                    self._occur(clone_key, node.return_var, node.node_id)
                if EXC_REGISTER in objects and self._keep(func, EXC_REGISTER):
                    self._occur(clone_key, EXC_REGISTER, node.node_id)

    def _build_node(self, clone_key, func, node, objects) -> None:
        graph = self.result.graph
        here = enc.single(func, node.node_id)
        for index, stmt in enumerate(node.statements):
            if isinstance(stmt, ast.Assign):
                self._build_assign(clone_key, func, node, stmt, objects, here)
            elif isinstance(stmt, ast.FieldStore):
                if stmt.base in objects and stmt.value in objects:
                    if not self._keep(func, stmt.base, stmt.value):
                        self._avoid()
                        continue
                    self._occur(clone_key, stmt.base, node.node_id)
                    self._occur(clone_key, stmt.value, node.node_id)
                    graph.add_edge(
                        self.var_vertex(clone_key, stmt.value, node.node_id),
                        self.var_vertex(clone_key, stmt.base, node.node_id),
                        store_label(stmt.fieldname),
                        here,
                    )
            elif isinstance(stmt, ast.Event):
                if stmt.base in objects and self._keep(func, stmt.base):
                    self._occur(clone_key, stmt.base, node.node_id)
                    self.result.events.append(
                        EventOccurrence(
                            clone_key,
                            node.node_id,
                            index,
                            stmt.base,
                            stmt.method,
                            self.var_vertex(clone_key, stmt.base, node.node_id),
                        )
                    )
            elif isinstance(stmt, ast.ExcLink):
                if not self._keep(func, stmt.target):
                    continue
                self._occur(clone_key, stmt.target, node.node_id)
                self.exclinks.setdefault(clone_key, []).append(
                    (node.node_id, stmt)
                )

    def _build_assign(self, clone_key, func, node, stmt, objects, here):
        graph = self.result.graph
        target, value = stmt.target, stmt.value
        if isinstance(value, ast.New):
            if target not in objects:
                return
            # Tracked-type allocations are relevance seeds, so this only
            # ever suppresses untracked allocations in sliced-away code.
            if not self._keep(func, target):
                self._avoid()
                return
            self._occur(clone_key, target, node.node_id)
            obj = self.obj_vertex(value.site, clone_key, node.node_id)
            graph.add_edge(
                obj,
                self.var_vertex(clone_key, target, node.node_id),
                NEW,
                here,
            )
            if self.tracked_types is None or value.type_name in self.tracked_types:
                self.result.tracked.append(
                    TrackedObject(
                        obj, value.site, value.type_name, clone_key,
                        node.node_id, stmt.line,
                    )
                )
        elif isinstance(value, ast.VarRef):
            if target in objects and value.name in objects:
                if not self._keep(func, target, value.name):
                    self._avoid()
                    return
                self._occur(clone_key, target, node.node_id)
                self._occur(clone_key, value.name, node.node_id)
                graph.add_edge(
                    self.var_vertex(clone_key, value.name, node.node_id),
                    self.var_vertex(clone_key, target, node.node_id),
                    ASSIGN,
                    here,
                )
        elif isinstance(value, ast.FieldLoad):
            if target in objects and value.base in objects:
                if not self._keep(func, target, value.base):
                    self._avoid()
                    return
                self._occur(clone_key, target, node.node_id)
                self._occur(clone_key, value.base, node.node_id)
                graph.add_edge(
                    self.var_vertex(clone_key, value.base, node.node_id),
                    self.var_vertex(clone_key, target, node.node_id),
                    load_label(value.fieldname),
                    here,
                )
        elif isinstance(value, ast.NullLit):
            # No edge (null carries no object), but the occurrence exists:
            # Figure 5b's out0 comes from `out = null` in block 0.
            if target in objects and self._keep(func, target):
                self._occur(clone_key, target, node.node_id)
        elif isinstance(value, ast.Call):
            # Return-value edges are added during call processing; here we
            # only register the occurrence of an object-typed LHS.
            if target in objects and self._keep(func, target):
                self._occur(clone_key, target, node.node_id)

    # -- artificial assign edges ---------------------------------------------

    def _build_artificial_edges(self, clone_key) -> None:
        ctx, func = clone_key
        per_var = self.occurrences.get(clone_key)
        if not per_var:
            return
        cfet = self.icfet.cfets[func]
        graph = self.result.graph
        for var, nodes in per_var.items():
            if len(nodes) < 2:
                continue
            for node_id in nodes:
                ancestor = self._nearest_ancestor(node_id, nodes)
                if ancestor is None:
                    continue
                graph.add_edge(
                    self.var_vertex(clone_key, var, ancestor),
                    self.var_vertex(clone_key, var, node_id),
                    ASSIGN,
                    (enc.interval(func, ancestor, node_id),),
                )

    @staticmethod
    def _nearest_ancestor(node_id: int, nodes: set) -> int | None:
        current = node_id
        while current != 0:
            current = parent_id(current)
            if current in nodes:
                return current
        return None

    # -- interprocedural edges -----------------------------------------------

    def _build_call_edges(self, clone: Clone) -> None:
        graph = self.result.graph
        caller_key = clone.key
        records_by_site: dict = {}
        for record, child_key in clone.calls:
            records_by_site.setdefault(record.call.site, []).append(
                (record, child_key)
            )
            if child_key is None:
                continue
            callee = self.program.functions[record.callee]
            callee_objects = self._objects(record.callee)
            caller_objects = self._objects(clone.func)
            # Parameter-passing edges (object actuals only).
            for formal, actual in zip(callee.params, record.call.args):
                if (
                    isinstance(actual, ast.VarRef)
                    and actual.name in caller_objects
                    and formal in callee_objects
                ):
                    if not (
                        self._keep(clone.func, actual.name)
                        and self._keep(record.callee, formal)
                    ):
                        self._avoid()
                        continue
                    self._occur(caller_key, actual.name, record.node_id)
                    self._occur(child_key, formal, 0)
                    graph.add_edge(
                        self.var_vertex(caller_key, actual.name, record.node_id),
                        self.var_vertex(child_key, formal, 0),
                        ASSIGN,
                        (enc.call_elem(record.cid),),
                    )
            # Value-return edges.
            if record.lhs is not None and record.lhs in caller_objects:
                if not self._keep(clone.func, record.lhs):
                    self._avoid()
                    continue
                self._occur(caller_key, record.lhs, record.node_id)
                for leaf in self.icfet.cfets[record.callee].leaves:
                    if leaf.return_var is None:
                        continue
                    if leaf.return_var not in callee_objects:
                        continue
                    if not self._keep(record.callee, leaf.return_var):
                        self._avoid()
                        continue
                    graph.add_edge(
                        self.var_vertex(child_key, leaf.return_var, leaf.node_id),
                        self.var_vertex(caller_key, record.lhs, record.node_id),
                        ASSIGN,
                        (enc.return_elem(record.rid),),
                    )
        self._build_exclink_edges(clone, records_by_site)

    def _build_exclink_edges(self, clone: Clone, records_by_site) -> None:
        graph = self.result.graph
        caller_key = clone.key
        cfet = self.icfet.cfets[clone.func]
        for node_id, stmt in self.exclinks.get(caller_key, ()):
            match = self._matching_record(
                records_by_site.get(stmt.call_site, ()), node_id, cfet
            )
            if match is None:
                continue
            record, child_key = match
            if child_key is None:
                continue
            if EXC_REGISTER not in self._objects(record.callee):
                continue
            for leaf in self.icfet.cfets[record.callee].leaves:
                graph.add_edge(
                    self.var_vertex(child_key, EXC_REGISTER, leaf.node_id),
                    self.var_vertex(caller_key, stmt.target, node_id),
                    ASSIGN,
                    (enc.return_elem(record.rid),),
                )

    @staticmethod
    def _matching_record(candidates, node_id: int, cfet: Cfet):
        """The call occurrence (same site) nearest above the ExcLink."""
        best = None
        for record, child_key in candidates:
            if not cfet.is_ancestor(record.node_id, node_id):
                continue
            if best is None or record.node_id > best[0].node_id:
                best = (record, child_key)
        return best
