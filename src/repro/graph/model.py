"""Core program-graph model shared by both analyses.

Vertices and labels are interned to dense integer ids so the engine's
partitions and on-disk format can be compact.  An edge is the 4-tuple
``(src, dst, label_id, encoding)`` where ``encoding`` is an interval
sequence from :mod:`repro.cfet.encoding`.

Vertex key shapes (tuples, first element is the kind):

* ``("var", ctx, func, var, node_id)`` -- a variable occurrence in one
  basic block of one clone (``ctx`` is the tuple of call-record cids from
  the root context -- the clone identity);
* ``("obj", site, ctx, func, node_id)`` -- an allocation-site instance;
* ``("pt", ctx, func, node_id, seg)`` -- a dataflow program point
  (segment ``seg`` of a CFET node);
* ``("exit", func)`` -- the synthetic program-exit vertex.

Label shapes: ``("new",)``, ``("assign",)``, ``("store", f)``,
``("load", f)``, ``("flowsTo",)``, ``("flowsToBar",)``, ``("alias",)``,
``("sa", f)``, ``("heap",)``, ``("cf",)``, ``("st", state)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Process-wide catalog of label tuples (see :func:`canonical_label`).
_CANONICAL_LABELS: dict = {}


def canonical_label(label: tuple) -> tuple:
    """The canonical instance of a structurally-equal label tuple.

    Grammars build the same few label tuples over and over (every
    ``("st", fsm, state)`` of every composition, every ``("sa", f)``);
    hash-consing them means equal labels are the *same object*, so the
    engine's per-composition label comparisons and dict probes hit
    CPython's pointer-equality fast path instead of re-hashing tuple
    contents, and repeated construction allocates nothing.
    :meth:`LabelTable.intern` routes through this catalog, so a label id
    always looks up to the canonical instance.
    """
    return _CANONICAL_LABELS.setdefault(label, label)


class _InternTable:
    """Bidirectional interning of hashable keys to dense ints."""

    def __init__(self) -> None:
        self._by_key: dict = {}
        self._by_id: list = []

    def intern(self, key) -> int:
        """The dense id of ``key``, allocating one on first sight."""
        ident = self._by_key.get(key)
        if ident is None:
            ident = len(self._by_id)
            self._by_key[key] = ident
            self._by_id.append(key)
        return ident

    def lookup(self, ident: int):
        """The key interned under ``ident``."""
        return self._by_id[ident]

    def get(self, key):
        """The id of ``key`` if already interned, else None."""
        return self._by_key.get(key)

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, key) -> bool:
        return key in self._by_key

    def items(self):
        """Iterate ``(id, key)`` pairs in id order."""
        return enumerate(self._by_id)


class VertexTable(_InternTable):
    """Interns vertex keys."""


class LabelTable(_InternTable):
    """Interns edge-label tuples (canonicalised, so ``lookup`` always
    returns the one shared instance of each label)."""

    def intern(self, key) -> int:
        return super().intern(canonical_label(key))


@dataclass
class ProgramGraph:
    """An in-memory program graph: the engine's input.

    ``edges`` maps ``src -> {(dst, label_id) -> set[encoding]}``; several
    encodings per (src, dst, label) are allowed -- they are distinct
    witness paths.  ``meta`` carries static per-base-edge data (the
    dataflow graph's event lists) keyed by ``(src, dst, label_id)``.
    """

    vertices: VertexTable = field(default_factory=VertexTable)
    labels: LabelTable = field(default_factory=LabelTable)
    edges: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def add_edge(self, src: int, dst: int, label, encoding,
                 meta=None) -> bool:
        """Insert one edge; returns False if it was already present."""
        label_id = self.labels.intern(label)
        slot = self.edges.setdefault(src, {}).setdefault((dst, label_id), set())
        if encoding in slot:
            return False
        slot.add(encoding)
        if meta is not None:
            self.meta[(src, dst, label_id)] = meta
        return True

    def edge_count(self) -> int:
        """Total edges counting each witness encoding separately."""
        return sum(
            len(encs)
            for targets in self.edges.values()
            for encs in targets.values()
        )

    def distinct_edge_count(self) -> int:
        """Edges ignoring encoding multiplicity (paper-style edge counts)."""
        return sum(len(targets) for targets in self.edges.values())

    def iter_edges(self):
        """Yield ``(src, dst, label_id, encoding)`` tuples."""
        for src, targets in self.edges.items():
            for (dst, label_id), encodings in targets.items():
                for enc in encodings:
                    yield src, dst, label_id, enc

    def out_edges(self, src: int):
        """``{(dst, label_id): set[encoding]}`` for one source vertex."""
        return self.edges.get(src, {})
