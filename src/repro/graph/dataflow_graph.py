"""Dataflow (typestate) program-graph generator (phase 2's input).

Vertices are *program points*: ``("pt", ctx, func, node, seg)`` where a
CFET node is split into segments at its call sites, so that events before
a call apply before the callee's and events after it apply on return.
Control-flow edges (label ``("cf",)``) connect:

* segment ``k`` to the callee clone's entry point (encoding ``{cid}``),
* each callee leaf's final segment back to segment ``k + 1`` (``{rid}``),
* a node's final segment to each CFET child (encoding ``[n, child]``),
* root-clone leaves to the synthetic exit vertex.

Each cf edge carries, as static metadata, the FSM events of the segment it
leaves -- ``(stmt_index, base_vertex, method)`` triples, where
``base_vertex`` is the event base's vertex id *in the alias graph* so that
phase 2 can consult phase 1's flowsTo results.

Tracked objects are seeded as state edges ``obj -> (point)`` labelled with
their FSM's initial state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.cfet.icfet import Icfet
from repro.cfet import encoding as enc
from repro.checkers.fsm import FSM
from repro.graph.alias_graph import AliasGraphResult, TrackedObject
from repro.graph.model import ProgramGraph
from repro.grammar.dataflow import CF, state_label

EXIT_KIND = "exit"


@dataclass
class DataflowGraphResult:
    """The dataflow graph plus object seeds, event metadata and exits."""

    graph: ProgramGraph
    # dataflow object vertex -> (FSM, alias-graph object vertex, TrackedObject)
    objects: dict = field(default_factory=dict)
    # events metadata: (src, dst) -> tuple[(stmt_index, base_vertex, method)]
    events_meta: dict = field(default_factory=dict)
    exit_vertices: set = field(default_factory=set)


def build_dataflow_graph(
    icfet: Icfet,
    alias_result: AliasGraphResult,
    fsms_by_type: dict[str, FSM],
    relevance=None,
    rstats=None,
) -> DataflowGraphResult:
    """Generate the phase-2 program graph over the clone forest.

    With ``relevance`` (a :class:`repro.sa.relevance.RelevanceInfo`),
    clones of flow-irrelevant functions -- subtrees that can neither
    allocate a tracked type nor perform a tracked event -- are not built;
    calls into them become step-over cf edges, the exact encoding already
    used for extern callees.  ``rstats`` counts the skips.
    """
    builder = _DataflowBuilder(icfet, alias_result, fsms_by_type,
                               relevance, rstats)
    builder.run()
    return builder.result


class _DataflowBuilder:
    def __init__(self, icfet, alias_result, fsms_by_type,
                 relevance=None, rstats=None):
        self.icfet = icfet
        self.alias = alias_result
        self.fsms_by_type = fsms_by_type
        self.relevance = relevance
        self.rstats = rstats
        self.result = DataflowGraphResult(ProgramGraph())
        # (clone_key, node_id, stmt_index) -> EventOccurrence
        self.event_at = {
            (ev.clone_key, ev.node_id, ev.stmt_index): ev
            for ev in alias_result.events
        }
        self.relevant_events = set()
        for fsm in fsms_by_type.values():
            self.relevant_events |= fsm.events()

    # -- vertex helpers --------------------------------------------------------

    def pt(self, clone_key, node_id: int, seg: int) -> int:
        """Vertex id of one program point (node segment) in one clone."""
        ctx, func = clone_key
        return self.result.graph.vertices.intern(("pt", ctx, func, node_id, seg))

    def exit_vertex(self, clone_key) -> int:
        """The synthetic program-exit vertex of one root clone."""
        ctx, func = clone_key
        vid = self.result.graph.vertices.intern((EXIT_KIND, ctx, func))
        self.result.exit_vertices.add(vid)
        return vid

    # -- driver -------------------------------------------------------------------

    def run(self) -> None:
        """Build cf edges for every clone, then seed the tracked objects."""
        root_keys = set(self.alias.forest.roots)
        for clone_key, clone in self.alias.forest.clones.items():
            self._build_clone(clone_key, clone, is_root=clone_key in root_keys)
        self._seed_objects()

    def _flow_irrelevant(self, func: str) -> bool:
        return (
            self.relevance is not None
            and not self.relevance.func_flow_relevant(func)
        )

    def _build_clone(self, clone_key, clone, is_root: bool) -> None:
        ctx, func = clone_key
        cfet = self.icfet.cfets.get(func)
        if cfet is None:
            return
        if self._flow_irrelevant(func):
            # No tracked allocation or event anywhere in this subtree:
            # every caller steps over it, so none of its vertices exist.
            if self.rstats is not None:
                self.rstats.clones_skipped += 1
            return
        child_of = {record.cid: child for record, child in clone.calls}
        for node in cfet.nodes.values():
            segments = self._segments(clone_key, node)
            calls = sorted(node.calls, key=lambda r: r.stmt_index)
            # Intra-node: segment k ends at call k (if one exists).
            for k, record in enumerate(calls):
                child_key = child_of.get(record.cid)
                if child_key is not None and self._flow_irrelevant(
                    record.callee
                ):
                    # Irrelevant subtree: step over exactly like an extern
                    # callee -- the (C, I[0, leaf], R) triple the through
                    # path would acquire cancels to this same encoding.
                    child_key = None
                    if self.rstats is not None:
                        self.rstats.calls_stepped_over += 1
                src = self.pt(clone_key, node.node_id, k)
                if child_key is None:
                    # Extern or depth-capped callee: step over the call.
                    self._add_cf(
                        src,
                        self.pt(clone_key, node.node_id, k + 1),
                        enc.single(func, node.node_id),
                        segments[k],
                    )
                    continue
                callee_cfet = self.icfet.cfets[record.callee]
                self._add_cf(
                    src,
                    self.pt(child_key, 0, 0),
                    (enc.call_elem(record.cid),),
                    segments[k],
                )
                for leaf in callee_cfet.leaves:
                    leaf_calls = len(leaf.calls)
                    leaf_segments = self._segments(child_key, leaf)
                    self._add_cf(
                        self.pt(child_key, leaf.node_id, leaf_calls),
                        self.pt(clone_key, node.node_id, k + 1),
                        (enc.return_elem(record.rid),),
                        leaf_segments[leaf_calls],
                    )
            last_seg = len(calls)
            src = self.pt(clone_key, node.node_id, last_seg)
            if node.is_leaf:
                if is_root:
                    self._add_cf(
                        src,
                        self.exit_vertex(clone_key),
                        enc.single(func, node.node_id),
                        segments[last_seg],
                    )
                continue
            for child_id in (2 * node.node_id + 1, 2 * node.node_id + 2):
                if child_id in cfet.nodes:
                    self._add_cf(
                        src,
                        self.pt(clone_key, child_id, 0),
                        (enc.interval(func, node.node_id, child_id),),
                        segments[last_seg],
                    )

    def _segments(self, clone_key, node) -> list[tuple]:
        """Relevant events per segment of one node occurrence."""
        boundaries = sorted(record.stmt_index for record in node.calls)
        segments: list[list] = [[] for _ in range(len(boundaries) + 1)]
        for index, stmt in enumerate(node.statements):
            if not isinstance(stmt, ast.Event):
                continue
            if stmt.method not in self.relevant_events:
                continue
            occurrence = self.event_at.get((clone_key, node.node_id, index))
            if occurrence is None:
                continue
            seg = sum(1 for b in boundaries if b < index)
            segments[seg].append((index, occurrence.base_vertex, stmt.method))
        return [tuple(events) for events in segments]

    def _add_cf(self, src: int, dst: int, encoding, events) -> None:
        self.result.graph.add_edge(src, dst, CF, encoding)
        if events:
            existing = self.result.events_meta.get((src, dst), ())
            if existing:
                merged = tuple(sorted(set(existing) | set(events)))
            else:
                merged = tuple(sorted(events))
            self.result.events_meta[(src, dst)] = merged

    def _seed_objects(self) -> None:
        for tracked in self.alias.tracked:
            fsm = self.fsms_by_type.get(tracked.type_name)
            if fsm is None:
                continue
            ctx, func = tracked.clone_key
            cfet = self.icfet.cfets[func]
            node = cfet.nodes[tracked.node_id]
            seg = self._segment_of_new(node, tracked.site)
            obj_vid = self.result.graph.vertices.intern(
                ("obj", tracked.site, ctx, func, tracked.node_id)
            )
            self.result.objects[obj_vid] = (fsm, tracked.vertex, tracked)
            # The seed's encoding spans from the CFET root down to the
            # allocation node, so the branch conditions that guard the
            # allocation itself constrain every downstream state fact.
            self.result.graph.add_edge(
                obj_vid,
                self.pt(tracked.clone_key, tracked.node_id, seg),
                state_label(fsm.name, fsm.initial),
                (enc.interval(func, 0, tracked.node_id),),
            )

    @staticmethod
    def _segment_of_new(node, site: int) -> int:
        boundaries = sorted(record.stmt_index for record in node.calls)
        for index, stmt in enumerate(node.statements):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.New)
                and stmt.value.site == site
            ):
                return sum(1 for b in boundaries if b < index)
        return 0
