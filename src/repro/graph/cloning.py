"""Clone enumeration for context sensitivity (paper §2.1, §4.1).

The program graph is a *fully inlined* representation: the graph of each
callee is cloned at every invoking call site, bottom-up over the call
graph.  A clone is identified by its context ``ctx`` -- the tuple of
call-record cids from a root function down to the clone.  Calls that stay
inside one SCC of the call graph (recursion) do not extend the context:
the members share one clone per enclosing context and are therefore
treated context-insensitively, exactly as the paper prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.callgraph import CallGraph
from repro.cfet.icfet import Icfet


class CloneExplosionError(Exception):
    """Raised when cloning exceeds the configured bounds."""


@dataclass
class Clone:
    """One inlined instance of a function."""

    ctx: tuple
    func: str
    # (call record, callee clone key or None when the callee is extern)
    calls: list = field(default_factory=list)

    @property
    def key(self) -> tuple:
        """``(ctx, func)`` -- the clone's identity."""
        return (self.ctx, self.func)

    @property
    def depth(self) -> int:
        """Call depth of the clone (length of the cid context)."""
        return len(self.ctx)


@dataclass
class CloneForest:
    """All clones plus the root clone keys."""

    clones: dict = field(default_factory=dict)  # key -> Clone
    roots: list = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.clones)

    def clone(self, key) -> Clone:
        """The clone registered under ``(ctx, func)``."""
        return self.clones[key]


def root_functions(program: ast.Program, callgraph: CallGraph) -> list[str]:
    """Entry points: ``main`` plus any function nobody calls."""
    called: set[str] = set()
    for callees in callgraph.edges.values():
        called |= callees
    roots = [name for name in program.functions if name not in called]
    if "main" in program.functions and "main" not in roots:
        roots.append("main")
    return sorted(roots)


def enumerate_clones(
    program: ast.Program,
    icfet: Icfet,
    callgraph: CallGraph,
    roots: list[str] | None = None,
    max_depth: int = 24,
    max_clones: int = 500_000,
) -> CloneForest:
    """Build the clone forest rooted at the program's entry points."""
    forest = CloneForest()
    if roots is None:
        roots = root_functions(program, callgraph)

    stack: list[tuple[tuple, str]] = [((), name) for name in roots]
    forest.roots = [((), name) for name in roots]
    while stack:
        ctx, func = stack.pop()
        key = (ctx, func)
        if key in forest.clones:
            continue
        if len(forest.clones) >= max_clones:
            raise CloneExplosionError(
                f"more than {max_clones} clones; the subject program's call"
                " tree is too deep/wide for the configured bounds"
            )
        clone = Clone(ctx, func)
        forest.clones[key] = clone
        cfet = icfet.cfets.get(func)
        if cfet is None:
            continue
        for node in cfet.nodes.values():
            for record in node.calls:
                if record.callee not in program.functions:
                    clone.calls.append((record, None))
                    continue
                if callgraph.is_recursive_edge(func, record.callee):
                    child_ctx = ctx  # stay in the collapsed SCC clone
                elif len(ctx) >= max_depth:
                    clone.calls.append((record, None))
                    continue
                else:
                    child_ctx = ctx + (record.cid,)
                child_key = (child_ctx, record.callee)
                clone.calls.append((record, child_key))
                if child_key not in forest.clones:
                    stack.append(child_key)
    return forest
