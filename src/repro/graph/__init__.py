"""Program-graph generation: vertices, labelled edges with path encodings,
binary serialisation, and the cloning-based context-sensitive generators
for the alias and dataflow analyses (paper §4.1)."""

from repro.graph.model import VertexTable, LabelTable, ProgramGraph
from repro.graph.alias_graph import build_alias_graph, AliasGraphResult
from repro.graph.dataflow_graph import build_dataflow_graph, DataflowGraphResult

__all__ = [
    "VertexTable",
    "LabelTable",
    "ProgramGraph",
    "build_alias_graph",
    "AliasGraphResult",
    "build_dataflow_graph",
    "DataflowGraphResult",
]
