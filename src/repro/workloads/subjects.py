"""The four synthetic subjects mirroring the paper's Tables 1 and 2.

Line counts keep the paper's relative sizes (ZooKeeper 206K : Hadoop 568K
: HDFS 546K : HBase 1.37M) at a scale a pure-Python engine can close over
in seconds-to-minutes (the calibration note in DESIGN.md); the seeded bug
mix per checker matches Table 2's TP/FP counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads.bugs import SeededBug
from repro.workloads.generator import (
    GeneratedSubject,
    SubjectProfile,
    generate_subject,
)

# Paper Table 1 (for reporting) and Table 2 (bug mix), with target_loc
# scaled down ~130x from the paper's line counts.
SUBJECT_PROFILES: dict[str, SubjectProfile] = {
    "zookeeper": SubjectProfile(
        name="zookeeper",
        version="3.5.0",
        description="distributed coordination service",
        target_loc=1_600,
        bugs={
            "io": (2, 0),
            "lock": (0, 0),
            "exception": (59, 0),
            "socket": (4, 0),
        },
        seed=11,
    ),
    "hadoop": SubjectProfile(
        name="hadoop",
        version="2.7.5",
        description="data-processing platform",
        target_loc=4_400,
        bugs={
            "io": (0, 0),
            "lock": (0, 0),
            "exception": (54, 2),
            "socket": (0, 0),
        },
        seed=22,
    ),
    "hdfs": SubjectProfile(
        name="hdfs",
        version="2.0.3",
        description="distributed file system",
        target_loc=4_200,
        bugs={
            "io": (1, 1),
            "lock": (1, 0),
            "exception": (43, 3),
            "socket": (4, 1),
        },
        seed=33,
    ),
    "hbase": SubjectProfile(
        name="hbase",
        version="1.1.6",
        description="distributed database",
        target_loc=10_600,
        bugs={
            "io": (15, 2),
            "lock": (0, 0),
            "exception": (176, 8),
            "socket": (0, 0),
        },
        seed=44,
    ),
}

# Paper Table 1 line counts, for side-by-side reporting.
PAPER_LOC = {
    "zookeeper": "206K",
    "hadoop": "568K",
    "hdfs": "546K",
    "hbase": "1.37M",
}


@dataclass
class Subject:
    """A generated subject plus its reporting metadata."""

    name: str
    version: str
    description: str
    source: str
    seeds: list[SeededBug]
    loc: int
    module_count: int
    paper_loc: str


def build_subject(name: str, scale: float = 1.0) -> Subject:
    """Generate one of the four subjects (optionally rescaled)."""
    try:
        profile = SUBJECT_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown subject {name!r}; available: {sorted(SUBJECT_PROFILES)}"
        ) from None
    if scale != 1.0:
        profile = SubjectProfile(
            name=profile.name,
            version=profile.version,
            description=profile.description,
            target_loc=max(200, int(profile.target_loc * scale)),
            bugs=profile.bugs,
            patterns_per_module=profile.patterns_per_module,
            seed=profile.seed,
        )
    generated: GeneratedSubject = generate_subject(profile)
    return Subject(
        name=profile.name,
        version=profile.version,
        description=profile.description,
        source=generated.source,
        seeds=generated.seeds,
        loc=generated.loc,
        module_count=generated.module_count,
        paper_loc=PAPER_LOC[name],
    )
