"""Code-pattern templates for the synthetic subject generator.

Each pattern function returns ``(source_text, seeds)`` where ``seeds``
lists the ground-truth bugs the pattern introduces (empty for clean
patterns).  Names are prefixed with a unique pattern id so that warnings
can be matched back to their seeds by allocation function.

Bug patterns follow the paper's examples: the Figure 1 socket leak via an
exception between open and close, missing-close-on-a-branch I/O leaks,
lock/unlock mis-ordering (the HDFS bug), and exceptions escaping without
handlers (Yuan et al.'s error-handling bugs).  FP patterns route the
resource through an *extern* sink (a function with no definition) that
would handle it at run time -- the mini-language analog of the paper's
try-with-resources and fetched-from-collection FP causes.
"""

from __future__ import annotations

import random

from repro.workloads.bugs import SeededBug


# -- true-positive bug patterns ------------------------------------------------


def io_leak_branch(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    var f = new FileWriter();
    f.write(x);
    if (x > {threshold}) {{
        f.close();
    }}
    return;
}}
"""
    return source, [SeededBug("io", name, "tp", "io_leak_branch")]


def io_leak_exception(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}_risky(x) {{
    if (x > {threshold}) {{
        var e = new IOException();
        throw e;
    }}
    return;
}}
func {name}_work(x) {{
    var f = new FileWriter();
    f.write(x);
    {name}_risky(x);
    f.close();
    return;
}}
func {name}(x) {{
    try {{
        {name}_work(x);
    }} catch (err) {{
    }}
    return;
}}
"""
    return source, [SeededBug("io", f"{name}_work", "tp", "io_leak_exception")]


def io_write_after_close(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var f = new FileWriter();
    f.write(x);
    f.close();
    if (x == {rng.randint(1, 9)}) {{
        f.write(x);
    }}
    return;
}}
"""
    return source, [SeededBug("io", name, "tp", "io_write_after_close")]


def lock_misorder(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var l = new ReentrantLock();
    l.unlock();
    var v = x + {rng.randint(1, 5)};
    l.lock();
    l.unlock();
    return;
}}
"""
    return source, [SeededBug("lock", name, "tp", "lock_misorder")]


def lock_held_at_exit(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    var l = new Lock();
    l.lock();
    if (x > {threshold}) {{
        return;
    }}
    l.unlock();
    return;
}}
"""
    return source, [SeededBug("lock", name, "tp", "lock_held_at_exit")]


def exception_unhandled(name: str, rng: random.Random):
    exc_type = rng.choice(["IOException", "TimeoutException", "KeeperException"])
    threshold = rng.randint(1, 9)
    source = f"""
func {name}_deep(x) {{
    if (x > {threshold}) {{
        var e = new {exc_type}();
        throw e;
    }}
    return;
}}
func {name}(x) {{
    {name}_deep(x);
    return;
}}
"""
    return source, [
        SeededBug("exception", f"{name}_deep", "tp", "exception_unhandled")
    ]


def exception_unhandled_deep_chain(name: str, rng: random.Random):
    exc_type = rng.choice(["IOException", "RuntimeException"])
    threshold = rng.randint(1, 9)
    source = f"""
func {name}_lvl3(x) {{
    if (x > {threshold}) {{
        var e = new {exc_type}();
        throw e;
    }}
    return;
}}
func {name}_lvl2(x) {{
    {name}_lvl3(x + 1);
    return;
}}
func {name}(x) {{
    {name}_lvl2(x);
    return;
}}
"""
    return source, [
        SeededBug("exception", f"{name}_lvl3", "tp", "exception_unhandled_deep")
    ]


def socket_leak_reconfigure(name: str, rng: random.Random):
    """The paper's Figure 1: an exception between open and close leaks the
    old channel in reconfigure()."""
    threshold = rng.randint(1, 9)
    source = f"""
func {name}_mayfail(x) {{
    if (x > {threshold}) {{
        var e = new IOException();
        throw e;
    }}
    return;
}}
func {name}_reconfigure(x) {{
    var old = new ServerSocketChannel();
    old.bind(x);
    old.configureBlocking(0);
    try {{
        {name}_mayfail(x);
        old.close();
    }} catch (err) {{
    }}
    return;
}}
func {name}(x) {{
    {name}_reconfigure(x);
    return;
}}
"""
    return source, [
        SeededBug("socket", f"{name}_reconfigure", "tp", "socket_leak_reconfigure")
    ]


def socket_leak_branch(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    var s = new Socket();
    s.connect(x);
    s.send(x);
    if (x > {threshold}) {{
        s.close();
    }}
    return;
}}
"""
    return source, [SeededBug("socket", name, "tp", "socket_leak_branch")]


# -- false-positive patterns (safe code the analysis will flag) -----------------


def io_fp_extern_close(name: str, rng: random.Random):
    """closeQuietly is extern (like Java 8 try-with-resources support the
    paper's frontend lacked): the stream IS closed, the checker can't see
    it."""
    source = f"""
func {name}(x) {{
    var f = new FileWriter();
    f.write(x);
    closeQuietly(f);
    return;
}}
"""
    return source, [SeededBug("io", name, "fp", "io_fp_extern_close")]


def socket_fp_pool(name: str, rng: random.Random):
    """Returning the socket to an extern pool closes it eventually -- the
    paper's 'object fetched from a collection' FP cause."""
    source = f"""
func {name}(x) {{
    var s = new Socket();
    s.connect(x);
    s.send(x);
    returnToPool(s);
    return;
}}
"""
    return source, [SeededBug("socket", name, "fp", "socket_fp_pool")]


def exception_fp_extern_handler(name: str, rng: random.Random):
    """An extern error-handler registration handles the exception at run
    time (the paper's imprecise-CFG-for-nested-try FP analogue)."""
    threshold = rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    if (x > {threshold}) {{
        var e = new RuntimeException();
        registerErrorHandler(e);
        throw e;
    }}
    return;
}}
"""
    return source, [SeededBug("exception", name, "fp", "exception_fp_extern")]


# -- clean patterns (no warnings expected) --------------------------------------


def clean_io(name: str, rng: random.Random):
    writes = "\n    ".join(f"f.write({i});" for i in range(rng.randint(1, 3)))
    source = f"""
func {name}(x) {{
    var f = new FileWriter();
    {writes}
    f.close();
    return;
}}
"""
    return source, []


def clean_io_alias(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var f = new FileWriter();
    var g = f;
    f.write(x);
    g.close();
    return;
}}
"""
    return source, []


def clean_io_field(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var holder = new Holder();
    var f = new FileWriter();
    holder.stream = f;
    f.write(x);
    var h = holder.stream;
    h.close();
    return;
}}
"""
    return source, []


def clean_io_interproc(name: str, rng: random.Random):
    source = f"""
func {name}_close(h) {{
    h.close();
    return;
}}
func {name}(x) {{
    var f = new FileWriter();
    f.write(x);
    {name}_close(f);
    return;
}}
"""
    return source, []


def clean_io_path_correlated(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    var f = null;
    if (x > {threshold}) {{
        f = new FileWriter();
    }}
    if (x > {threshold}) {{
        f.write(x);
        f.close();
    }}
    return;
}}
"""
    return source, []


def clean_lock(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var l = new ReentrantLock();
    l.lock();
    var v = x * {rng.randint(2, 5)};
    l.unlock();
    return;
}}
"""
    return source, []


def clean_exception_caught(name: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    source = f"""
func {name}_risky(x) {{
    if (x > {threshold}) {{
        var e = new IOException();
        throw e;
    }}
    return;
}}
func {name}(x) {{
    try {{
        {name}_risky(x);
    }} catch (err) {{
    }}
    return;
}}
"""
    return source, []


def clean_socket(name: str, rng: random.Random):
    source = f"""
func {name}(x) {{
    var s = new ServerSocketChannel();
    s.bind(x);
    s.configureBlocking(0);
    s.accept(x);
    s.close();
    return;
}}
"""
    return source, []


def clean_compute(name: str, rng: random.Random):
    a, b = rng.randint(1, 9), rng.randint(1, 9)
    source = f"""
func {name}(x) {{
    var acc = 0;
    var i = 0;
    while (i < {a}) {{
        acc = acc + x * {b};
        i = i + 1;
    }}
    if (acc > {a * b}) {{
        acc = acc - {b};
    }}
    return acc;
}}
"""
    return source, []


def clean_compute_calls(name: str, rng: random.Random):
    c = rng.randint(2, 6)
    source = f"""
func {name}_step(v) {{
    if (v > {c}) {{
        return v - {c};
    }}
    return v + 1;
}}
func {name}(x) {{
    var a = {name}_step(x);
    var b = {name}_step(a);
    if (a < b) {{
        return a;
    }}
    return b;
}}
"""
    return source, []


# Pattern registries the generator draws from.
TP_PATTERNS = {
    "io": [io_leak_branch, io_leak_exception, io_write_after_close],
    "lock": [lock_misorder, lock_held_at_exit],
    "exception": [exception_unhandled, exception_unhandled_deep_chain],
    "socket": [socket_leak_reconfigure, socket_leak_branch],
}

FP_PATTERNS = {
    "io": [io_fp_extern_close],
    "exception": [exception_fp_extern_handler],
    "socket": [socket_fp_pool],
}

CLEAN_PATTERNS = [
    clean_io,
    clean_io_alias,
    clean_io_field,
    clean_io_interproc,
    clean_io_path_correlated,
    clean_lock,
    clean_exception_caught,
    clean_socket,
    clean_compute,
    clean_compute_calls,
]
