"""Multi-file synthetic subjects with cross-module property-pack bugs.

The single-file generator (:mod:`repro.workloads.generator`) seeds the
paper's four checkers inside one translation unit.  This generator seeds
the *interprocedural* property packs -- taint, API ordering, iterator
invalidation, lock discipline -- with every pattern deliberately split
across three files:

* ``core.mini`` (``module core;``) -- factories that allocate the
  tracked object and return it;
* ``svc.mini`` (``module svc;``) -- middle-layer helpers that advance
  the object's protocol (sanitize, init, invalidate, acquire, ...);
* ``app.mini`` (root namespace, no ``module`` header) -- entry points
  that import both modules and drive the object to the sink / exit.

A warning's allocation function is therefore always a *qualified* core
symbol (``core.<pattern>_make``), which only exists if scope-graph
resolution (:mod:`repro.sa.scopes`) linked the qualified calls
correctly -- the TP/FP accounting doubles as an end-to-end resolution
oracle.  FP patterns route the object through an extern function (no
definition anywhere), mirroring the paper's FP causes.

``python -m repro.workloads.multifile --report`` prints the exact
accounting as JSON (the CI property-pack smoke diffs it against a
committed golden).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from repro.workloads.bugs import SeededBug

MODULES = ("core", "svc", "app")


@dataclass
class MultiFileProfile:
    """Shape parameters for one multi-file subject."""

    name: str
    description: str
    target_loc: int
    # checker -> (tp_count, fp_count)
    packs: dict = field(default_factory=dict)
    seed: int = 0


@dataclass
class MultiFileSubject:
    name: str
    #: path -> source text (``core.mini``, ``svc.mini``, ``app.mini``).
    sources: dict
    seeds: list[SeededBug]
    loc: int


# -- cross-module pattern templates ----------------------------------------
# Each returns ({module: fragment}, seeds); the allocation always lives in
# ``core`` so warnings point at a qualified symbol.


def taint_tp(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_make(x) {{
    var t = new UserInput();
    return t;
}}
""",
        "svc": f"""
func {n}_route(t) {{
    return t;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var t = core.{n}_make(x);
    var u = svc.{n}_route(t);
    u.exec();
    return;
}}
""",
    }
    return parts, [SeededBug("taint", f"core.{n}_make", "tp", "taint_tp")]


def taint_fp(n: str, rng: random.Random):
    """externScrub sanitizes at run time; the checker cannot see it."""
    parts = {
        "core": f"""
func {n}_make(x) {{
    var t = new NetPacket();
    return t;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var t = core.{n}_make(x);
    externScrub(t);
    t.query();
    return;
}}
""",
    }
    return parts, [SeededBug("taint", f"core.{n}_make", "fp", "taint_fp_extern")]


def taint_clean(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_make(x) {{
    var t = new UserInput();
    return t;
}}
""",
        "svc": f"""
func {n}_scrub(t) {{
    t.sanitize();
    return t;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var t = core.{n}_make(x);
    var u = svc.{n}_scrub(t);
    u.exec();
    return;
}}
""",
    }
    return parts, []


def order_tp_use_before_init(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_open(x) {{
    var h = new Handle();
    return h;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var h = core.{n}_open(x);
    h.use();
    h.dispose();
    return;
}}
""",
    }
    return parts, [
        SeededBug("order", f"core.{n}_open", "tp", "order_use_before_init")
    ]


def order_tp_undisposed(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_open(x) {{
    var h = new Codec();
    return h;
}}
""",
        "svc": f"""
func {n}_setup(h) {{
    h.init();
    return h;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var h = core.{n}_open(x);
    var r = svc.{n}_setup(h);
    r.use();
    return;
}}
""",
    }
    return parts, [SeededBug("order", f"core.{n}_open", "tp", "order_undisposed")]


def order_fp_extern_recycle(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_open(x) {{
    var h = new Handle();
    return h;
}}
""",
        "svc": f"""
func {n}_setup(h) {{
    h.init();
    return h;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var h = core.{n}_open(x);
    var r = svc.{n}_setup(h);
    r.use();
    externRecycle(r);
    return;
}}
""",
    }
    return parts, [SeededBug("order", f"core.{n}_open", "fp", "order_fp_extern")]


def order_clean(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_open(x) {{
    var h = new Parser();
    return h;
}}
""",
        "svc": f"""
func {n}_setup(h) {{
    h.init();
    return h;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var h = core.{n}_open(x);
    var r = svc.{n}_setup(h);
    r.process();
    r.dispose();
    return;
}}
""",
    }
    return parts, []


def iterator_tp(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_cursor(x) {{
    var it = new Cursor();
    return it;
}}
""",
        "svc": f"""
func {n}_mutate(it) {{
    it.invalidate();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var it = core.{n}_cursor(x);
    it.next();
    svc.{n}_mutate(it);
    it.next();
    return;
}}
""",
    }
    return parts, [
        SeededBug("iterator", f"core.{n}_cursor", "tp", "iterator_invalidated")
    ]


def iterator_clean(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_cursor(x) {{
    var it = new Iterator();
    return it;
}}
""",
        "svc": f"""
func {n}_mutate(it) {{
    it.invalidate();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var it = core.{n}_cursor(x);
    it.next();
    svc.{n}_mutate(it);
    it.refresh();
    it.next();
    return;
}}
""",
    }
    return parts, []


def lockdep_tp_wait(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_make(x) {{
    var m = new Monitor();
    return m;
}}
""",
        "svc": f"""
func {n}_enter(m) {{
    m.acquire();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var m = core.{n}_make(x);
    svc.{n}_enter(m);
    m.wait();
    m.release();
    return;
}}
""",
    }
    return parts, [
        SeededBug("lockdep", f"core.{n}_make", "tp", "lockdep_wait_holding")
    ]


def lockdep_tp_held_at_exit(n: str, rng: random.Random):
    threshold = rng.randint(1, 9)
    parts = {
        "core": f"""
func {n}_make(x) {{
    var m = new Semaphore();
    return m;
}}
""",
        "svc": f"""
func {n}_enter(m) {{
    m.acquire();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var m = core.{n}_make(x);
    svc.{n}_enter(m);
    if (x > {threshold}) {{
        return;
    }}
    m.release();
    return;
}}
""",
    }
    return parts, [
        SeededBug("lockdep", f"core.{n}_make", "tp", "lockdep_held_at_exit")
    ]


def lockdep_fp_extern_unlock(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_make(x) {{
    var m = new Monitor();
    return m;
}}
""",
        "svc": f"""
func {n}_enter(m) {{
    m.acquire();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var m = core.{n}_make(x);
    svc.{n}_enter(m);
    externUnlock(m);
    return;
}}
""",
    }
    return parts, [
        SeededBug("lockdep", f"core.{n}_make", "fp", "lockdep_fp_extern")
    ]


def lockdep_clean(n: str, rng: random.Random):
    parts = {
        "core": f"""
func {n}_make(x) {{
    var m = new Monitor();
    return m;
}}
""",
        "svc": f"""
func {n}_enter(m) {{
    m.acquire();
    return;
}}
func {n}_leave(m) {{
    m.release();
    return;
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var m = core.{n}_make(x);
    svc.{n}_enter(m);
    svc.{n}_leave(m);
    return;
}}
""",
    }
    return parts, []


def clean_compute_pipeline(n: str, rng: random.Random):
    """Cross-module scalar padding: no tracked objects at all."""
    a, b = rng.randint(2, 7), rng.randint(1, 5)
    parts = {
        "core": f"""
func {n}_base(v) {{
    if (v > {a}) {{
        return v - {a};
    }}
    return v + {b};
}}
""",
        "svc": f"""
func {n}_scale(v) {{
    return core.{n}_base(v) * {b};
}}
""",
        "app": f"""
func {n}_entry(x) {{
    var v = svc.{n}_scale(x + {a});
    if (v > {a * b}) {{
        return v;
    }}
    return 0;
}}
""",
    }
    return parts, []


TP_PACK_PATTERNS = {
    "taint": [taint_tp],
    "order": [order_tp_use_before_init, order_tp_undisposed],
    "iterator": [iterator_tp],
    "lockdep": [lockdep_tp_wait, lockdep_tp_held_at_exit],
}

FP_PACK_PATTERNS = {
    "taint": [taint_fp],
    "order": [order_fp_extern_recycle],
    "lockdep": [lockdep_fp_extern_unlock],
}

CLEAN_PACK_PATTERNS = [
    taint_clean,
    order_clean,
    iterator_clean,
    lockdep_clean,
    clean_compute_pipeline,
]


def _seeded_pieces(profile: MultiFileProfile, rng: random.Random,
                   name_prefix: str, pad_to: int = 0):
    """The profile's seeded (and padding) pieces, shuffled, as
    ``(fragments-per-module, seeds)``."""
    pieces: list[tuple[dict, list[SeededBug]]] = []
    index = 0

    def next_name() -> str:
        nonlocal index
        index += 1
        return f"{name_prefix}_p{index}"

    for checker, (tp_count, fp_count) in sorted(profile.packs.items()):
        templates = TP_PACK_PATTERNS.get(checker, [])
        for i in range(tp_count):
            pieces.append(templates[i % len(templates)](next_name(), rng))
        fp_templates = FP_PACK_PATTERNS.get(checker, [])
        for i in range(fp_count):
            pieces.append(fp_templates[i % len(fp_templates)](next_name(), rng))

    def current_loc() -> int:
        return sum(
            _loc(text) for parts, _ in pieces for text in parts.values()
        )

    while current_loc() < pad_to:
        template = rng.choice(CLEAN_PACK_PATTERNS)
        pieces.append(template(next_name(), rng))

    rng.shuffle(pieces)

    fragments: dict[str, list[str]] = {m: [] for m in MODULES}
    seeds: list[SeededBug] = []
    for parts, piece_seeds in pieces:
        for module, text in parts.items():
            fragments[module].append(text)
        seeds.extend(piece_seeds)
    return fragments, seeds


#: Deep-import-chain length inside each scaled cluster.
CLUSTER_CHAIN_DEPTH = 3


def _generate_cluster(profile: MultiFileProfile, k: int):
    """One independent module cluster of a scaled subject.

    Cluster ``k`` owns the namespaces ``g{k}core`` / ``g{k}svc`` /
    ``g{k}app`` plus a deep import chain (``g{k}mid0`` .. importing each
    other in sequence) and a re-export diamond (``g{k}left`` and
    ``g{k}right`` both single-symbol-importing the same core function,
    with the app converging on both).  Every cluster gets the profile's
    full pack set, retargeted by rewriting the templates' ``core.`` /
    ``svc.`` qualifiers -- so cluster warnings stay byte-predictable and
    clusters never share a name (or, downstream, a dependency stratum).
    """
    p = f"g{k}"
    rng = random.Random(profile.seed * 1000003 + k)
    fragments, seeds = _seeded_pieces(profile, rng, f"{profile.name}{k}")

    def retarget(text: str) -> str:
        return text.replace("core.", f"{p}core.").replace("svc.", f"{p}svc.")

    seeds = [replace(s, func=f"{p}{s.func}") for s in seeds]
    core_extra = (
        f"func {p}_depth(v) {{\n    return v + 1;\n}}\n"
        f"func {p}_shared(v) {{\n    return v * 2;\n}}\n"
    )
    sources = {
        f"{p}core.mini": f"module {p}core;\n"
        + "".join(retarget(t) for t in fragments["core"]) + core_extra,
        f"{p}svc.mini": f"module {p}svc;\nimport {p}core;\n"
        + "".join(retarget(t) for t in fragments["svc"]),
    }
    prev_mod, prev_func = f"{p}core", f"{p}_depth"
    for j in range(CLUSTER_CHAIN_DEPTH):
        mod, fn = f"{p}mid{j}", f"{p}_hop{j}"
        sources[f"{mod}.mini"] = (
            f"module {mod};\nimport {prev_mod};\n"
            f"func {fn}(v) {{\n    return {prev_mod}.{prev_func}(v);\n}}\n"
        )
        prev_mod, prev_func = mod, fn
    for side, bump in (("left", 1), ("right", 2)):
        sources[f"{p}{side}.mini"] = (
            f"module {p}{side};\nimport {p}core.{p}_shared;\n"
            f"func {p}_{side[0]}wrap(v) {{\n"
            f"    return {p}_shared(v + {bump});\n}}\n"
        )
    app_extra = (
        f"func {p}_chain_entry(x) {{\n"
        f"    return {prev_mod}.{prev_func}(x);\n}}\n"
        f"func {p}_diamond(x) {{\n"
        f"    var l = {p}left.{p}_lwrap(x);\n"
        f"    var r = {p}right.{p}_rwrap(x);\n"
        f"    return l + r;\n}}\n"
    )
    sources[f"{p}app.mini"] = (
        f"module {p}app;\nimport {p}core;\nimport {p}svc;\n"
        f"import {prev_mod};\nimport {p}left;\nimport {p}right;\n"
        + "".join(retarget(t) for t in fragments["app"]) + app_extra
    )
    return sources, seeds


def generate_multifile_subject(profile: MultiFileProfile,
                               scale: float = 1.0) -> MultiFileSubject:
    """Deterministically generate a multi-file subject from a profile.

    ``scale <= 1`` (the default) emits the canonical three-file subject,
    byte-identical to what every committed golden was built from.
    ``scale > 1`` emits ``round(scale)`` *independent clusters* of
    ``3 + CLUSTER_CHAIN_DEPTH + 2`` modules each (see
    :func:`_generate_cluster`) -- tens of modules at modest scales,
    with deep import chains and re-export diamonds, sized for the
    incremental daemon where an edit must stay confined to one cluster's
    dependency stratum.
    """
    if scale <= 1:
        rng = random.Random(profile.seed)
        fragments, seeds = _seeded_pieces(
            profile, rng, profile.name, pad_to=profile.target_loc
        )
        sources = {
            "core.mini": "module core;\n" + "".join(fragments["core"]),
            "svc.mini": "module svc;\nimport core;\n"
            + "".join(fragments["svc"]),
            "app.mini": "import core;\nimport svc;\n"
            + "".join(fragments["app"]),
        }
    else:
        sources = {}
        seeds = []
        for k in range(max(2, int(round(scale)))):
            cluster_sources, cluster_seeds = _generate_cluster(profile, k)
            sources.update(cluster_sources)
            seeds.extend(cluster_seeds)
    return MultiFileSubject(
        name=profile.name,
        sources=sources,
        seeds=seeds,
        loc=sum(_loc(text) for text in sources.values()),
    )


def _loc(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())


MULTIFILE_PROFILES: dict[str, MultiFileProfile] = {
    "gateway": MultiFileProfile(
        name="gateway",
        description="request gateway: taint, handle and lock discipline"
        " bugs seeded across core/svc/app modules",
        target_loc=420,
        packs={
            "taint": (2, 1),
            "order": (2, 1),
            "iterator": (2, 0),
            "lockdep": (2, 1),
        },
        seed=55,
    ),
}


def build_multifile_subject(name: str, scale: float = 1.0) -> MultiFileSubject:
    """Generate one of the named multi-file subjects (``gateway``)."""
    try:
        profile = MULTIFILE_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown multi-file subject {name!r};"
            f" available: {sorted(MULTIFILE_PROFILES)}"
        ) from None
    return generate_multifile_subject(profile, scale=scale)


def pack_accounting(name: str = "gateway", reduce: bool = True,
                    workers: int = 1, sources=None) -> dict:
    """Run the property packs over one subject; exact TP/FP accounting.

    The returned document is the CI golden: per-checker TP/FP/missed
    counts plus the scope-resolution counters, all deterministic.
    ``sources`` overrides the generated file set (same content, any
    order/shape) -- the accounting must not change.
    """
    from repro.analysis.pipeline import Grapple, GrappleOptions
    from repro.checkers.checker import pack_checkers
    from repro.engine.computation import EngineOptions
    from repro.workloads.bugs import classify_report

    subject = build_multifile_subject(name)
    options = GrappleOptions(
        reduce=reduce, engine=EngineOptions(workers=workers)
    )
    run = Grapple(
        sources if sources is not None else subject.sources,
        [c.fsm for c in pack_checkers()], options
    ).run()
    outcome = classify_report(subject.seeds, run.report)
    checkers = sorted({seed.checker for seed in subject.seeds})
    return {
        "schema": "grapple/property-pack-accounting",
        "version": 1,
        "subject": name,
        "loc": subject.loc,
        "files": sorted(subject.sources),
        "seeded": len(subject.seeds),
        "warnings": len(run.report),
        "by_checker": {
            checker: {
                "tp": outcome.tp.get(checker, 0),
                "fp": outcome.fp.get(checker, 0),
                "missed": outcome.missed.get(checker, 0),
            }
            for checker in checkers
        },
        "unexpected": sorted(w.describe() for w in outcome.unexpected),
        "scopes": run.compiled.resolution.stats.as_dict(),
    }


def _main(argv=None) -> int:
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads.multifile",
        description="generate or check the multi-file pack subjects",
    )
    parser.add_argument("--subject", default="gateway",
                        choices=sorted(MULTIFILE_PROFILES))
    parser.add_argument("--report", action="store_true",
                        help="run the property packs and print the exact"
                        " TP/FP accounting as JSON")
    parser.add_argument("--no-reduce", action="store_true")
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="scale > 1 emits round(scale) independent"
                        " module clusters instead of the canonical"
                        " three files (--report always uses scale 1)")
    args = parser.parse_args(argv)
    if args.report:
        doc = pack_accounting(
            args.subject, reduce=not args.no_reduce, workers=args.workers
        )
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    subject = build_multifile_subject(args.subject, scale=args.scale)
    for path in sorted(subject.sources):
        sys.stdout.write(f"// ---- {path} ----\n{subject.sources[path]}\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(_main())
