"""Ground-truth bug records and report classification."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.checkers.report import Report


@dataclass(frozen=True, slots=True)
class SeededBug:
    """One seeded pattern instance.

    ``expectation`` is ``"tp"`` (a real bug the checker should report) or
    ``"fp"`` (safe code that the analysis' documented over-approximations
    will flag -- the paper's false-positive causes).  ``func`` is the name
    of the function containing the allocation the warning will point at.
    """

    checker: str
    func: str
    expectation: str  # "tp" | "fp"
    pattern: str


@dataclass
class Classification:
    """Table-2-style accounting for one subject."""

    # checker -> counts
    tp: dict = field(default_factory=dict)
    fp: dict = field(default_factory=dict)
    missed: dict = field(default_factory=dict)  # seeded but not reported
    unexpected: list = field(default_factory=list)  # warnings at clean code

    def totals(self) -> tuple[int, int]:
        return sum(self.tp.values()), sum(self.fp.values())

    def row(self, checker: str) -> tuple[int, int]:
        return self.tp.get(checker, 0), self.fp.get(checker, 0)


def classify_report(seeds: list[SeededBug], report: Report) -> Classification:
    """Match warnings against the seeded ground truth.

    A warning matches a seed when its checker and allocation function
    agree.  Warnings matching "tp" seeds are true positives, those
    matching "fp" seeds are false positives, and any warning in a function
    with no seed is *unexpected* (a reproduction bug -- tests assert there
    are none).  Seeds with no warning are *missed*.
    """
    out = Classification()
    by_key = {(seed.checker, seed.func): seed for seed in seeds}
    reported: set = set()
    for warning in report.warnings:
        key = (warning.checker, warning.func)
        seed = by_key.get(key)
        if seed is None:
            out.unexpected.append(warning)
            continue
        if key in reported:
            continue  # count each seeded site once
        reported.add(key)
        bucket = out.tp if seed.expectation == "tp" else out.fp
        bucket[seed.checker] = bucket.get(seed.checker, 0) + 1
    for seed in seeds:
        if (seed.checker, seed.func) not in reported:
            out.missed[seed.checker] = out.missed.get(seed.checker, 0) + 1
    return out
