"""Synthetic subject programs with seeded, ground-truth FSM bugs.

The paper evaluates on ZooKeeper, Hadoop, HDFS and HBase.  Those codebases
(and a JVM frontend) are not available here, so this package generates
deterministic mini-language programs shaped like the four subjects:
relative sizes follow the paper's Table 1, and the seeded bug mix follows
Table 2 (true positives *and* the false-positive-inducing patterns --
resources handled through extern sinks the checker cannot see, mirroring
the paper's try-with-resources / collection-fetch FP causes).

Because every bug is seeded, TP/FP accounting is exact instead of manual.
"""

from repro.workloads.bugs import SeededBug, classify_report, Classification
from repro.workloads.generator import generate_subject, SubjectProfile
from repro.workloads.multifile import (
    MULTIFILE_PROFILES,
    MultiFileProfile,
    MultiFileSubject,
    build_multifile_subject,
    generate_multifile_subject,
    pack_accounting,
)
from repro.workloads.subjects import SUBJECT_PROFILES, build_subject, Subject

__all__ = [
    "SeededBug",
    "Classification",
    "classify_report",
    "generate_subject",
    "SubjectProfile",
    "SUBJECT_PROFILES",
    "build_subject",
    "Subject",
    "MULTIFILE_PROFILES",
    "MultiFileProfile",
    "MultiFileSubject",
    "build_multifile_subject",
    "generate_multifile_subject",
    "pack_accounting",
]
