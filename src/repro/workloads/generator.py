"""Deterministic synthetic-subject generator.

A subject is a collection of *modules*; each module has an entry function
(a root in the call graph, like a service's request handler) that invokes
a handful of pattern functions and a module-local helper (called several
times, exercising context-sensitive cloning).  The generator seeds exactly
the requested number of true-positive and false-positive bug patterns per
checker, then pads with clean patterns until the target line count is
reached.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads import patterns as P
from repro.workloads.bugs import SeededBug


@dataclass
class SubjectProfile:
    """Shape parameters for one synthetic subject."""

    name: str
    version: str
    description: str
    target_loc: int
    # checker -> (tp_count, fp_count)
    bugs: dict = field(default_factory=dict)
    patterns_per_module: int = 5
    seed: int = 0


@dataclass
class GeneratedSubject:
    name: str
    source: str
    seeds: list[SeededBug]
    loc: int
    module_count: int


def generate_subject(profile: SubjectProfile) -> GeneratedSubject:
    rng = random.Random(profile.seed)
    pieces: list[tuple[str, list[SeededBug]]] = []
    index = 0

    def next_name() -> str:
        nonlocal index
        index += 1
        return f"{profile.name}_p{index}"

    # Seeded bug patterns first (cycling through each checker's templates).
    for checker, (tp_count, fp_count) in sorted(profile.bugs.items()):
        templates = P.TP_PATTERNS.get(checker, [])
        for i in range(tp_count):
            template = templates[i % len(templates)]
            pieces.append(template(next_name(), rng))
        fp_templates = P.FP_PATTERNS.get(checker, [])
        for i in range(fp_count):
            template = fp_templates[i % len(fp_templates)]
            pieces.append(template(next_name(), rng))

    # Clean padding until the target size is reached.
    def current_loc() -> int:
        return sum(_loc(text) for text, _ in pieces)

    while current_loc() < profile.target_loc:
        template = rng.choice(P.CLEAN_PATTERNS)
        pieces.append(template(next_name(), rng))

    rng.shuffle(pieces)

    # Group into modules with entry functions and a shared helper.
    sources: list[str] = []
    seeds: list[SeededBug] = []
    module_count = 0
    for start in range(0, len(pieces), profile.patterns_per_module):
        chunk = pieces[start : start + profile.patterns_per_module]
        module_count += 1
        module = f"{profile.name}_m{module_count}"
        entry_names = []
        for text, piece_seeds in chunk:
            sources.append(text)
            seeds.extend(piece_seeds)
            entry_names.append(_entry_function(text))
        sources.append(_module_glue(module, entry_names, rng))

    source = "\n".join(sources)
    return GeneratedSubject(
        name=profile.name,
        source=source,
        seeds=seeds,
        loc=_loc(source),
        module_count=module_count,
    )


def _entry_function(pattern_source: str) -> str:
    """The last function defined by a pattern is its public entry."""
    name = None
    for line in pattern_source.splitlines():
        stripped = line.strip()
        if stripped.startswith("func "):
            name = stripped[len("func ") :].split("(")[0]
    if name is None:
        raise ValueError("pattern source defines no function")
    return name


def _module_glue(module: str, entry_names: list[str], rng: random.Random) -> str:
    """Module entry + a shared helper invoked from several call sites."""
    helper = f"{module}_util"
    threshold = rng.randint(2, 7)
    calls = []
    for i, name in enumerate(entry_names):
        calls.append(f"    var a{i} = {helper}(x + {i});")
        calls.append(f"    {name}(a{i});")
    body = "\n".join(calls)
    return f"""
func {helper}(v) {{
    if (v > {threshold}) {{
        return v - 1;
    }}
    return v + 1;
}}
func {module}_entry(x) {{
{body}
    return;
}}
"""


def _loc(source: str) -> int:
    return sum(1 for line in source.splitlines() if line.strip())
