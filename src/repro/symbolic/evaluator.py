"""Per-function symbolic evaluation of the core mini-language.

The evaluator maintains an environment mapping integer variables to SMT
expressions over the function's *symbolic variables*: its formal parameters,
``input()`` sites, and call-site return values (paper §3.3).  Object
variables evaluate to ``None`` -- their flow is the alias analysis' job, not
the constraint system's.

Symbol names are namespaced per function (``foo::x``) so that
interprocedural constraints from different methods do not collide; the
path decoder additionally instances them per call-segment occurrence.
"""

from __future__ import annotations

from repro.lang import ast
from repro.smt import expr as E


def symbol_name(func: str, var: str) -> str:
    """Namespaced symbol for variable ``var`` of function ``func``."""
    return f"{func}::{var}"


def call_result_symbol(func: str, call_site: int) -> str:
    """Symbol standing for the value returned at a call site."""
    return symbol_name(func, f"ret{call_site}")


def input_symbol(func: str, site: int) -> str:
    return symbol_name(func, f"in{site}")


class SymbolicEnv:
    """Mutable symbolic store for one control-flow path of one function."""

    def __init__(self, func: str, params: list[str]):
        self.func = func
        self.values: dict[str, E.Expr | None] = {
            p: E.IntVar(symbol_name(func, p)) for p in params
        }
        self._opaque_counter = 0

    def copy(self) -> "SymbolicEnv":
        clone = SymbolicEnv.__new__(SymbolicEnv)
        clone.func = self.func
        clone.values = dict(self.values)
        clone._opaque_counter = self._opaque_counter
        return clone

    # -- statement effects -------------------------------------------------

    def execute(self, stmt) -> None:
        """Apply the symbolic effect of one straight-line core statement."""
        if isinstance(stmt, ast.Assign):
            self.values[stmt.target] = self.eval(stmt.value)
        elif isinstance(stmt, ast.ExcLink):
            self.values[stmt.target] = None
        # FieldStore / Event / ExprStmt have no stack-value effect.

    # -- expression evaluation ----------------------------------------------

    def eval(self, expr) -> E.Expr | None:
        """Symbolic value of an expression, or None when not numeric."""
        if isinstance(expr, ast.IntLit):
            return E.IntConst(expr.value)
        if isinstance(expr, ast.BoolLit):
            return E.BoolConst(expr.value)
        if isinstance(expr, ast.VarRef):
            if expr.name in self.values:
                return self.values[expr.name]
            # Reads of never-written variables are unconstrained symbols.
            return E.IntVar(symbol_name(self.func, expr.name))
        if isinstance(expr, ast.Input):
            return E.IntVar(input_symbol(self.func, expr.site))
        if isinstance(expr, ast.Call):
            return E.IntVar(call_result_symbol(self.func, expr.site))
        if isinstance(expr, (ast.New, ast.NullLit, ast.FieldLoad)):
            return None
        if isinstance(expr, ast.ThrownFlagOf):
            # Bound precisely by the CFET builder (which knows the call
            # occurrence); standalone evaluation treats it as opaque.
            return None
        if isinstance(expr, ast.Unary):
            operand = self.eval(expr.operand)
            if operand is None:
                return None
            if expr.op == "-":
                return E.neg(operand)
            if expr.op == "!":
                return E.not_(operand)
            raise ValueError(f"unknown unary operator {expr.op!r}")
        if isinstance(expr, ast.Binary):
            return self._eval_binary(expr)
        raise ValueError(f"cannot evaluate {expr!r}")

    def _eval_binary(self, expr: ast.Binary) -> E.Expr | None:
        left = self.eval(expr.left)
        right = self.eval(expr.right)
        if left is None or right is None:
            return None
        ops = {
            "+": E.add,
            "-": E.sub,
            "*": E.mul,
            "<": E.lt,
            "<=": E.le,
            ">": E.gt,
            ">=": E.ge,
            "==": E.eq,
            "!=": E.ne,
            "&&": E.and_,
            "||": E.or_,
        }
        op = ops.get(expr.op)
        if op is None:
            raise ValueError(f"unknown binary operator {expr.op!r}")
        return op(left, right)

    def eval_condition(self, expr, opaque_hint: str) -> E.Expr:
        """Symbolic branch condition; unevaluable conditions (e.g. null
        comparisons over objects) become deterministic opaque booleans."""
        try:
            value = self.eval(expr)
        except TypeError:
            value = None
        if value is None or value.sort != "bool":
            return E.BoolVar(symbol_name(self.func, f"opaque_{opaque_hint}"))
        return value
