"""Symbolic execution substrate used to build CFETs and path constraints."""

from repro.symbolic.evaluator import SymbolicEnv, symbol_name

__all__ = ["SymbolicEnv", "symbol_name"]
