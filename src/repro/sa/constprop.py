"""Constant propagation with static branch folding.

A forward pass over the scalar environment: the abstract value is a dict
mapping variable names to known ``int``/``bool`` constants (absent =
unknown); join intersects agreeing bindings.  On top of the fixpoint,
:func:`fold_constant_branches` rewrites function bodies, replacing every
``if`` whose condition evaluates to a definite boolean with the taken arm
-- so the statically-infeasible arm never reaches the CFET builder, the
graph generators, or the solver.

Safety: the mini-language is deterministic and conditions are pure (calls
are hoisted by ``normalize_calls``), so a branch whose condition the
abstract environment proves constant takes the same arm on *every*
concrete execution; the dropped arm's path constraints were all
unsatisfiable.  Folding therefore preserves the feasible path set exactly
-- allocation sites, line numbers and call records in the surviving arm
are untouched (no reparse), so warning identity is preserved.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.cfg import build_cfg
from repro.sa.framework import DataflowProblem, solve

#: Evaluation result for expressions the environment cannot decide.
UNKNOWN = object()


def eval_expr(expr, env: dict):
    """Evaluate ``expr`` under ``env``; :data:`UNKNOWN` when undecidable."""
    if isinstance(expr, ast.IntLit):
        return expr.value
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.VarRef):
        return env.get(expr.name, UNKNOWN)
    if isinstance(expr, ast.Unary):
        operand = eval_expr(expr.operand, env)
        if operand is UNKNOWN:
            return UNKNOWN
        if expr.op == "-" and isinstance(operand, int):
            return -operand
        if expr.op == "!" and isinstance(operand, bool):
            return not operand
        return UNKNOWN
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, env)
    return UNKNOWN  # New/Call/Input/FieldLoad/ThrownFlagOf/NullLit


def _eval_binary(expr: ast.Binary, env: dict):
    left = eval_expr(expr.left, env)
    # Short-circuit forms that are decided by one known side.
    if expr.op == "&&" and left is False:
        return False
    if expr.op == "||" and left is True:
        return True
    right = eval_expr(expr.right, env)
    if expr.op == "&&" and right is False:
        return False
    if expr.op == "||" and right is True:
        return True
    if left is UNKNOWN or right is UNKNOWN:
        return UNKNOWN
    if expr.op in ("&&", "||"):
        if isinstance(left, bool) and isinstance(right, bool):
            return (left and right) if expr.op == "&&" else (left or right)
        return UNKNOWN
    # Arithmetic and comparisons require ints on both sides; note that
    # bool is an int subclass in Python but not in the mini-language.
    if isinstance(left, bool) or isinstance(right, bool):
        if expr.op == "==":
            return left == right
        if expr.op == "!=":
            return left != right
        return UNKNOWN
    if not (isinstance(left, int) and isinstance(right, int)):
        return UNKNOWN
    if expr.op == "+":
        return left + right
    if expr.op == "-":
        return left - right
    if expr.op == "*":
        return left * right
    if expr.op == "<":
        return left < right
    if expr.op == "<=":
        return left <= right
    if expr.op == ">":
        return left > right
    if expr.op == ">=":
        return left >= right
    if expr.op == "==":
        return left == right
    if expr.op == "!=":
        return left != right
    return UNKNOWN


class ConstProp(DataflowProblem):
    """Forward constant environments: ``{var: known constant}``."""

    direction = "forward"

    def boundary(self, cfg):
        return {}

    def join(self, a: dict, b: dict) -> dict:
        if a == b:
            return a
        return {
            var: value
            for var, value in a.items()
            if var in b and b[var] == value and type(b[var]) is type(value)
        }

    def transfer(self, block, env: dict) -> dict:
        out = dict(env)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                value = eval_expr(stmt.value, out)
                if value is UNKNOWN:
                    out.pop(stmt.target, None)
                else:
                    out[stmt.target] = value
            elif isinstance(stmt, ast.ExcLink):
                out.pop(stmt.target, None)
        return out


def branch_verdicts(fn: ast.Function) -> dict[int, bool]:
    """``id(cond) -> bool`` for every branch provably constant in ``fn``.

    Keyed by expression identity: the CFG shares condition objects with
    the AST's ``If`` nodes, so the verdict map carries straight back to
    the statements to rewrite.  Unreachable blocks get no verdict (their
    branches disappear when an enclosing fold removes them).
    """
    cfg = build_cfg(fn)
    solution = solve(cfg, ConstProp())
    verdicts: dict[int, bool] = {}
    for block in cfg.blocks.values():
        if block.branch_cond is None:
            continue
        env = solution.block_out.get(block.block_id)
        if env is None:
            continue
        value = eval_expr(block.branch_cond, env)
        if isinstance(value, bool):
            verdicts[id(block.branch_cond)] = value
    return verdicts


def fold_constant_branches(program: ast.Program) -> int:
    """Fold every provably-constant ``if`` in every function.

    Re-solves after each rewrite round, because folding one branch can
    make enclosing or subsequent conditions constant.  Returns the number
    of branches removed.
    """
    total = 0
    for fn in program.functions.values():
        while True:
            verdicts = branch_verdicts(fn)
            if not verdicts:
                break
            folded, body = _rewrite_body(fn.body, verdicts)
            if not folded:
                break
            fn.body = body
            total += folded
    return total


def _rewrite_body(body: list, verdicts: dict[int, bool]) -> tuple[int, list]:
    folded = 0
    out: list = []
    for stmt in body:
        if isinstance(stmt, ast.If):
            verdict = verdicts.get(id(stmt.cond))
            if verdict is not None:
                taken = stmt.then_body if verdict else stmt.else_body
                inner_folds, inner = _rewrite_body(taken, verdicts)
                folded += 1 + inner_folds
                out.extend(inner)
                continue
            then_folds, stmt.then_body = _rewrite_body(
                stmt.then_body, verdicts
            )
            else_folds, stmt.else_body = _rewrite_body(
                stmt.else_body, verdicts
            )
            folded += then_folds + else_folds
        out.append(stmt)
    return folded, out
