"""Reduction bookkeeping and the cf-chain compressor.

:class:`ReductionStats` counts what every pre-closure pass removed; the
pipeline threads one instance through the frontend, both graph builders
and the compressor, exports it in the run report's ``reduction`` section
and prints it under ``--stats``.

:func:`compress_cf_chains` is the last reduction: it contracts linear
control-flow chains ``a -> b -> c`` of the phase-2 graph (in-degree and
out-degree exactly 1 at ``b``, all labels counted) into a single edge
whose encoding is :func:`repro.cfet.encoding.merge` of the parts -- the
exact operation the closure would have performed at ``b`` -- so every
surviving state fact carries a byte-identical encoding.  Guards:

* ``b`` must not be an exit vertex, an object/seed vertex, or carry any
  non-cf edge (in-degree counts every label).
* Only one side of the chain may carry FSM events.  Two event segments
  must stay separate: the grammar applies an edge's events in statement
  order within one compose, so concatenating them would change the order
  and the per-edge sticky-error boundary.
* When the *first* edge carries events, the second must be constraint-free
  (``C`` elements and ``[i, i]`` intervals only -- no branch literals, no
  return equations).  The grammar checks an event's alias feasibility
  against the merged state+cf encoding, so a constraining suffix would
  strengthen the very query the unreduced closure asks at ``a -> b``.
  (Call elements only equate *fresh* callee-instance symbols with caller
  expressions, which can never flip satisfiability; return elements bind
  caller-visible result/thrown symbols and are excluded.)
* If a merge overflows :data:`repro.cfet.encoding.MAX_ELEMENTS` the chain
  is kept as-is (no witness may be silently dropped), and a chain whose
  contraction would collide with an existing ``a -> c`` edge or its event
  metadata is skipped rather than conflated.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.cfet import encoding as enc
from repro.grammar.dataflow import CF


@dataclass
class ReductionStats:
    """Counters for every pre-closure reduction pass."""

    branches_folded: int = 0
    dead_stores_removed: int = 0
    alias_vars_sliced: int = 0
    functions_sliced: int = 0
    alias_edges_avoided: int = 0
    clones_skipped: int = 0
    calls_stepped_over: int = 0
    cf_chains_merged: int = 0
    cf_edges_removed: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def total_removals(self) -> int:
        return sum(getattr(self, f.name) for f in fields(self))

    def summary(self) -> str:
        return (
            f"branches folded {self.branches_folded}"
            f" · dead stores {self.dead_stores_removed}"
            f" · alias vars sliced {self.alias_vars_sliced}"
            f" ({self.functions_sliced} whole functions,"
            f" {self.alias_edges_avoided} edges avoided)"
            f" · clones skipped {self.clones_skipped}"
            f" ({self.calls_stepped_over} calls stepped over)"
            f" · cf chains merged {self.cf_chains_merged}"
            f" (-{self.cf_edges_removed} edges)"
        )


def _constraint_free(encoding: tuple) -> bool:
    """True when decoding the encoding adds no literals or equations."""
    for elem in encoding:
        if elem[0] == enc.CALL:
            continue  # equations over fresh callee instances only
        if elem[0] == enc.INTERVAL and elem[2] == elem[3]:
            continue  # single-node interval: no branch literal
        return False
    return True


def compress_cf_chains(graph_result, icfet, rstats: ReductionStats) -> None:
    """Contract linear cf chains of the phase-2 graph in place."""
    graph = graph_result.graph
    events_meta = graph_result.events_meta
    cf_id = graph.labels.intern(CF)
    protected = set(graph_result.exit_vertices)
    protected |= set(graph_result.objects)

    # Global degree maps over *all* labels.
    in_slots: dict[int, list] = {}
    out_count: dict[int, int] = {}
    for src, targets in graph.edges.items():
        out_count[src] = len(targets)
        for (dst, label_id) in targets:
            in_slots.setdefault(dst, []).append((src, label_id))

    changed = True
    while changed:
        changed = False
        for b in sorted(in_slots):
            if b in protected:
                continue
            slots_in = in_slots.get(b)
            if slots_in is None or len(slots_in) != 1:
                continue
            if out_count.get(b, 0) != 1:
                continue
            a, in_label = slots_in[0]
            if in_label != cf_id or a == b:
                continue
            ((c, out_label),) = graph.edges.get(b, {}).keys()
            if out_label != cf_id or c == b or c == a:
                continue
            e1_encs = graph.edges[a][(b, cf_id)]
            e2_encs = graph.edges[b][(c, cf_id)]
            ev1 = events_meta.get((a, b))
            ev2 = events_meta.get((b, c))
            if ev1 and ev2:
                continue
            if ev1 and not all(_constraint_free(e) for e in e2_encs):
                continue
            if (c, cf_id) in graph.edges.get(a, {}):
                continue  # contraction would conflate parallel edges
            if (ev1 or ev2) and (a, c) in events_meta:
                continue
            merged = set()
            overflow = False
            for e1 in e1_encs:
                for e2 in e2_encs:
                    m = enc.merge(e1, e2, icfet)
                    if m is None:
                        overflow = True
                        break
                    merged.add(m)
                if overflow:
                    break
            if overflow:
                continue

            # Rewire: drop a->b and b->c, add a->c.
            removed = len(e1_encs) + len(e2_encs)
            del graph.edges[a][(b, cf_id)]
            del graph.edges[b]
            graph.edges[a][(c, cf_id)] = merged
            events_meta.pop((a, b), None)
            events_meta.pop((b, c), None)
            moved = ev1 or ev2
            if moved:
                events_meta[(a, c)] = moved
            # Degree maintenance.
            del in_slots[b]
            out_count.pop(b, None)
            slots_c = in_slots[c]
            slots_c[slots_c.index((b, cf_id))] = (a, cf_id)
            rstats.cf_chains_merged += 1
            rstats.cf_edges_removed += removed - len(merged)
            changed = True
