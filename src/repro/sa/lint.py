"""A mini-language linter on the :mod:`repro.sa` dataflow framework.

Diagnostic kinds, all deterministic and ordered
(:meth:`repro.checkers.report.LintReport.sorted`):

* ``unreachable-code`` -- statements following a ``return``/``throw`` in
  the same block (surface AST, before any lowering touches bodies);
* ``constant-branch`` -- an ``if`` condition constant propagation proves
  always true/false (user-written conditions only; compiler-introduced
  ``__``-registers from exception lowering are excluded);
* ``use-before-init`` -- a variable read on some structural path before
  any assignment (forward must-assignment, join = intersection);
* ``dead-store`` -- a pure-scalar assignment whose value is never read
  (the :mod:`repro.sa.liveness` fixpoint, reporting instead of
  rewriting);
* ``shadowed-variable`` -- a ``var`` declaration hiding a parameter, an
  enclosing declaration, or an imported module alias (surface AST scope
  stack);
* ``tainted-sink`` -- a taint-source object reaches a sink event with no
  sanitizer on some path (the taint property pack's FSM run abstractly
  over the CFG);
* ``lock-order`` -- acquire/release discipline violations on lock
  objects: release-unheld, double-acquire, wait-while-holding (the
  lockdep pack's FSM, same abstract runner);
* ``escape-without-close`` -- an allocation of a checker-tracked type
  that can reach function exit without any tracked FSM event, without
  being returned, stored, passed on, or copied (forward may-analysis,
  join = union);
* ``unresolved-name`` / ``ambiguous-import`` -- scope-graph resolution
  findings, produced by :mod:`repro.sa.scopes` and merged in by the
  multi-file entry point :func:`run_lint_files`.

Unlike the checkers, lint consults no path constraints -- it is the
fast, flow-sensitive-but-path-insensitive first line of feedback.
"""

from __future__ import annotations

from repro.checkers.fsm import FSM
from repro.checkers.lockdep_checker import lockdep_checker
from repro.checkers.report import Diagnostic, LintReport
from repro.checkers.taint_checker import taint_checker
from repro.lang import ast
from repro.lang.cfg import build_cfg
from repro.lang.parser import parse_program
from repro.lang.transform import (
    lower_exceptions,
    normalize_calls,
    unroll_loops,
)
from repro.lang.types import infer_object_vars
from repro.sa.constprop import branch_verdicts
from repro.sa.framework import DataflowProblem, solve
from repro.sa.liveness import _dead_stores, expr_uses

KIND_UNREACHABLE = "unreachable-code"
KIND_CONSTANT_BRANCH = "constant-branch"
KIND_USE_BEFORE_INIT = "use-before-init"
KIND_ESCAPE = "escape-without-close"
KIND_DEAD_STORE = "dead-store"
KIND_SHADOWED = "shadowed-variable"
KIND_TAINTED_SINK = "tainted-sink"
KIND_LOCK_ORDER = "lock-order"


def _internal(name: str) -> bool:
    """Compiler-introduced register (lowering/normalisation temporary)."""
    return name.startswith("__")


def run_lint(source: str, fsms: list[FSM] | None = None,
             unroll: int = 1) -> LintReport:
    """Lint a source program; ``fsms`` enable the escape analysis."""
    report = LintReport()
    surface = parse_program(source)
    for name, fn in surface.functions.items():
        _lint_unreachable(name, fn.body, report)
        _lint_shadowed(name, fn, report)

    core = parse_program(source)
    normalize_calls(core)
    unroll_loops(core, unroll)
    lower_exceptions(core)
    _lint_core(core, fsms, report)
    return report


def run_lint_files(sources, fsms: list[FSM] | None = None,
                   unroll: int = 1) -> LintReport:
    """Lint a multi-file program (``{path: text}`` or ``(path, text)``
    pairs).

    Scope-graph resolution runs first and its ``unresolved-name`` /
    ``ambiguous-import`` diagnostics are merged into the report; every
    per-function rule then runs over the linked program with file
    attribution, so the sorted output is byte-identical no matter in
    which order the files were discovered.
    """
    from repro.sa.scopes import load_modules, symbol_id

    report = LintReport()
    surface = load_modules(sources)
    for diag in surface.resolution.diagnostics:
        report.add(diag)
    file_of = dict(surface.resolution.file_of)

    for mf in surface.module_files:
        aliases = frozenset(imp.module for imp in mf.imports)
        for raw, fn in mf.functions.items():
            name = symbol_id(mf.module, raw)
            _lint_unreachable(name, fn.body, report, file=mf.path)
            _lint_shadowed(name, fn, report, file=mf.path, aliases=aliases)

    # Transforms mutate bodies, so the core pass links a fresh copy.
    core = load_modules(sources).program
    normalize_calls(core)
    unroll_loops(core, unroll)
    lower_exceptions(core)
    _lint_core(core, fsms, report, file_of=file_of)
    return report


def _lint_core(core: ast.Program, fsms, report: LintReport,
               file_of: dict | None = None) -> None:
    """The core-AST rules shared by both lint entry points."""
    tracked_types: set[str] = set()
    tracked_events: set[str] = set()
    for fsm in fsms or ():
        tracked_types |= set(fsm.types)
        tracked_events |= fsm.events()

    taint_fsm = taint_checker()
    lockdep_fsm = lockdep_checker()
    info = infer_object_vars(core)
    for name, fn in core.functions.items():
        file = (file_of or {}).get(name, "")
        _lint_constant_branches(name, fn, report, file=file)
        _lint_use_before_init(name, fn, report, file=file)
        _lint_dead_stores(
            name, fn, info.object_vars.get(name, set()), report, file=file
        )
        _lint_typestate(
            name, fn, taint_fsm, KIND_TAINTED_SINK, _taint_message,
            report, file=file,
        )
        _lint_typestate(
            name, fn, lockdep_fsm, KIND_LOCK_ORDER, _lockdep_message,
            report, file=file,
        )
        if tracked_types:
            _lint_escapes(
                name, fn, tracked_types, tracked_events, report, file=file
            )


# -- unreachable code (surface AST) ----------------------------------------


def _lint_unreachable(func: str, body: list, report: LintReport,
                      file: str = "") -> None:
    terminated = False
    for stmt in body:
        if terminated:
            report.add(
                Diagnostic(
                    kind=KIND_UNREACHABLE,
                    func=func,
                    line=getattr(stmt, "line", 0),
                    subject=type(stmt).__name__,
                    message="statement is unreachable (follows a"
                    " return/throw in the same block)",
                    file=file,
                )
            )
            break  # one diagnostic per dead region, not per statement
        if isinstance(stmt, (ast.Return, ast.Throw)):
            terminated = True
        elif isinstance(stmt, ast.If):
            _lint_unreachable(func, stmt.then_body, report, file=file)
            _lint_unreachable(func, stmt.else_body, report, file=file)
        elif isinstance(stmt, ast.While):
            _lint_unreachable(func, stmt.body, report, file=file)
        elif isinstance(stmt, ast.TryCatch):
            _lint_unreachable(func, stmt.try_body, report, file=file)
            _lint_unreachable(func, stmt.catch_body, report, file=file)


# -- shadowed variables (surface AST scope stack) --------------------------


def _lint_shadowed(func: str, fn: ast.Function, report: LintReport,
                   file: str = "", aliases: frozenset = frozenset()) -> None:
    """``var x`` hiding a parameter, an enclosing ``var x``, or an
    imported module alias.  Plain re-assignment (``x = ...``) is not a
    declaration and never shadows."""

    def declare(name: str, line: int, scopes: list) -> None:
        hidden = None
        if name in aliases:
            hidden = "the imported module alias"
        else:
            for scope in scopes:
                if name in scope:
                    hidden = (
                        "a parameter" if scope is scopes[0]
                        else "an enclosing declaration"
                    )
                    break
        if hidden is not None:
            report.add(
                Diagnostic(
                    kind=KIND_SHADOWED,
                    func=func,
                    line=line,
                    subject=name,
                    message=f"declaration of {name!r} shadows"
                    f" {hidden} of {name!r}",
                    file=file,
                )
            )
        scopes[-1].add(name)

    def walk(body: list, scopes: list) -> None:
        scopes.append(set())
        for stmt in body:
            if isinstance(stmt, ast.Assign) and stmt.decl:
                declare(stmt.target, stmt.line, scopes)
            elif isinstance(stmt, ast.If):
                walk(stmt.then_body, scopes)
                walk(stmt.else_body, scopes)
            elif isinstance(stmt, ast.While):
                walk(stmt.body, scopes)
            elif isinstance(stmt, ast.TryCatch):
                walk(stmt.try_body, scopes)
                scopes.append(set())
                declare(stmt.catch_var, stmt.line, scopes)
                walk(stmt.catch_body, scopes)
                scopes.pop()
        scopes.pop()

    walk(fn.body, [set(fn.params)])


# -- constant branches (core AST + constprop) ------------------------------


def _mentions_internal(expr) -> bool:
    return any(_internal(name) for name in expr_uses(expr))


def _lint_constant_branches(func: str, fn: ast.Function,
                            report: LintReport, file: str = "") -> None:
    verdicts = branch_verdicts(fn)
    for stmt in ast.walk_statements(fn.body):
        if not isinstance(stmt, ast.If):
            continue
        verdict = verdicts.get(id(stmt.cond))
        if verdict is None or _mentions_internal(stmt.cond):
            continue
        report.add(
            Diagnostic(
                kind=KIND_CONSTANT_BRANCH,
                func=func,
                line=stmt.line,
                subject="condition",
                message=f"condition is always"
                f" {'true' if verdict else 'false'}; the"
                f" {'else' if verdict else 'then'} branch never runs",
                file=file,
            )
        )


# -- dead stores (liveness fixpoint, reporting not rewriting) --------------


def _lint_dead_stores(func: str, fn: ast.Function, object_vars: set,
                      report: LintReport, file: str = "") -> None:
    def scalar_ok(var: str) -> bool:
        return not _internal(var) and var not in object_vars

    for stmt in _dead_stores(fn, scalar_ok):
        report.add(
            Diagnostic(
                kind=KIND_DEAD_STORE,
                func=func,
                line=stmt.line,
                subject=stmt.target,
                message=f"value assigned to {stmt.target!r} is never read"
                " (dead store)",
                file=file,
            )
        )


# -- use before init (forward must-assignment) -----------------------------


class _DefiniteAssignment(DataflowProblem):
    direction = "forward"

    def __init__(self, params: frozenset):
        self.params = params

    def boundary(self, cfg):
        return self.params

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, block, assigned: frozenset) -> frozenset:
        out = set(assigned)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                out.add(stmt.target)
            elif isinstance(stmt, ast.ExcLink):
                out.add(stmt.target)
        return frozenset(out)


def _lint_use_before_init(func: str, fn: ast.Function,
                          report: LintReport, file: str = "") -> None:
    cfg = build_cfg(fn)
    problem = _DefiniteAssignment(frozenset(fn.params))
    solution = solve(cfg, problem)
    cond_lines = {
        id(stmt.cond): stmt.line
        for stmt in ast.walk_statements(fn.body)
        if isinstance(stmt, ast.If)
    }
    flagged: set[str] = set()

    def check(expr, assigned: set, line: int) -> None:
        for name in sorted(expr_uses(expr)):
            if name in assigned or _internal(name) or name in flagged:
                continue
            flagged.add(name)
            report.add(
                Diagnostic(
                    kind=KIND_USE_BEFORE_INIT,
                    func=func,
                    line=line,
                    subject=name,
                    message=f"variable {name!r} may be read before"
                    " assignment",
                    file=file,
                )
            )

    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        incoming = solution.block_in.get(block_id)
        if incoming is None:
            continue  # structurally unreachable
        assigned = set(incoming)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                check(stmt.value, assigned, stmt.line)
                assigned.add(stmt.target)
            elif isinstance(stmt, ast.ExcLink):
                assigned.add(stmt.target)
            elif isinstance(stmt, (ast.FieldStore, ast.Event, ast.ExprStmt)):
                for name in sorted(_stmt_reads(stmt)):
                    check(ast.VarRef(name), assigned, stmt.line)
        if block.branch_cond is not None:
            check(
                block.branch_cond,
                assigned,
                cond_lines.get(id(block.branch_cond), 0),
            )
        if block.return_value is not None:
            check(block.return_value, assigned, 0)


def _stmt_reads(stmt) -> set:
    if isinstance(stmt, ast.FieldStore):
        return {stmt.base, stmt.value}
    if isinstance(stmt, ast.Event):
        reads = {stmt.base}
        for arg in stmt.args:
            expr_uses(arg, reads)
        return reads
    if isinstance(stmt, ast.ExprStmt):
        return expr_uses(stmt.call)
    return set()


# -- abstract typestate (property-pack FSMs over the CFG) ------------------


def _drop_var(tracked: set, var: str) -> None:
    for entry in [e for e in tracked if e[0] == var]:
        tracked.discard(entry)


def _typestate_step(fsm: FSM, stmt, tracked: set, on_error=None) -> set:
    """Advance the may-set of ``(var, line, type, state)`` over one core
    statement, invoking ``on_error`` when an event enters an FSM error
    state.  Error entries are reported and dropped, not propagated, so
    each violation is diagnosed once."""
    if isinstance(stmt, ast.Assign):
        if isinstance(stmt.value, ast.New):
            _drop_var(tracked, stmt.target)
            if stmt.value.type_name in fsm.types:
                tracked.add(
                    (stmt.target, stmt.line, stmt.value.type_name, fsm.initial)
                )
        elif isinstance(stmt.value, ast.VarRef):
            _drop_var(tracked, stmt.target)
            for entry in [e for e in tracked if e[0] == stmt.value.name]:
                tracked.add((stmt.target,) + entry[1:])
        else:
            # A call might transition the object arbitrarily; stop
            # tracking anything passed in (path-insensitive modesty).
            if isinstance(stmt.value, ast.Call):
                for name in expr_uses(stmt.value):
                    _drop_var(tracked, name)
            _drop_var(tracked, stmt.target)
    elif isinstance(stmt, ast.Event):
        for entry in [e for e in tracked if e[0] == stmt.base]:
            var, line, type_name, state = entry
            target = fsm.step(state, stmt.method)
            if target == state:
                continue
            tracked.discard(entry)
            if fsm.is_error(target):
                if on_error is not None:
                    on_error(stmt, entry, target)
            else:
                tracked.add((var, line, type_name, target))
        for arg in stmt.args:
            for name in expr_uses(arg):
                _drop_var(tracked, name)
    elif isinstance(stmt, ast.ExprStmt):
        for name in expr_uses(stmt.call):
            _drop_var(tracked, name)
    elif isinstance(stmt, ast.FieldStore):
        _drop_var(tracked, stmt.value)
        _drop_var(tracked, stmt.base)
    elif isinstance(stmt, ast.ExcLink):
        _drop_var(tracked, stmt.target)
    return tracked


class _Typestate(DataflowProblem):
    """May-analysis: ``{(var, alloc_line, type, fsm_state)}``."""

    direction = "forward"

    def __init__(self, fsm: FSM):
        self.fsm = fsm

    def boundary(self, cfg):
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block, value: frozenset) -> frozenset:
        tracked = set(value)
        for stmt in block.statements:
            tracked = _typestate_step(self.fsm, stmt, tracked)
        if block.return_value is not None:
            for name in expr_uses(block.return_value):
                _drop_var(tracked, name)
        return frozenset(tracked)


def _taint_message(stmt: ast.Event, entry: tuple, state: str) -> str:
    var, _line, type_name, _state = entry
    return (
        f"{type_name} in {var!r} reaches sink {stmt.method!r} while"
        " still tainted (no sanitize/validate on some path)"
    )


def _lockdep_message(stmt: ast.Event, entry: tuple, state: str) -> str:
    var, _line, type_name, _state = entry
    if state == "ReleaseUnheld":
        return f"{type_name} in {var!r} released while not held"
    if state == "DoubleAcquire":
        return f"{type_name} in {var!r} acquired twice without release"
    return f"blocking {stmt.method!r} while holding {type_name} in {var!r}"


def _lint_typestate(func: str, fn: ast.Function, fsm: FSM, kind: str,
                    describe, report: LintReport, file: str = "") -> None:
    cfg = build_cfg(fn)
    solution = solve(cfg, _Typestate(fsm))
    emitted: set = set()
    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        incoming = solution.block_in.get(block_id)
        if incoming is None:
            continue

        def on_error(stmt, entry, state):
            key = (entry[0], stmt.method, state, entry[1])
            if key in emitted:
                return
            emitted.add(key)
            report.add(
                Diagnostic(
                    kind=kind,
                    func=func,
                    line=stmt.line,
                    subject=entry[0],
                    message=describe(stmt, entry, state),
                    file=file,
                )
            )

        tracked = set(incoming)
        for stmt in block.statements:
            tracked = _typestate_step(fsm, stmt, tracked, on_error)


# -- tracked-object escape (forward may-analysis) --------------------------


class _FreshObjects(DataflowProblem):
    """May-analysis: ``{(var, alloc_line)}`` allocated-and-untouched."""

    direction = "forward"

    def __init__(self, tracked_types: set[str], tracked_events: set[str]):
        self.tracked_types = tracked_types
        self.tracked_events = tracked_events

    def boundary(self, cfg):
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def _drop(self, fresh: set, var: str) -> None:
        for entry in [e for e in fresh if e[0] == var]:
            fresh.discard(entry)

    def transfer(self, block, value: frozenset) -> frozenset:
        fresh = set(value)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.New):
                    self._drop(fresh, stmt.target)
                    if stmt.value.type_name in self.tracked_types:
                        fresh.add((stmt.target, stmt.line, stmt.value.type_name))
                    continue
                # Copying the reference hands responsibility elsewhere;
                # passing it to a call might close it.  Both suppress.
                if isinstance(stmt.value, ast.VarRef):
                    self._drop(fresh, stmt.value.name)
                elif isinstance(stmt.value, ast.Call):
                    for name in expr_uses(stmt.value):
                        self._drop(fresh, name)
                self._drop(fresh, stmt.target)
            elif isinstance(stmt, ast.Event):
                if stmt.method in self.tracked_events:
                    self._drop(fresh, stmt.base)
            elif isinstance(stmt, ast.FieldStore):
                self._drop(fresh, stmt.value)
                self._drop(fresh, stmt.base)
            elif isinstance(stmt, ast.ExprStmt):
                for name in expr_uses(stmt.call):
                    self._drop(fresh, name)
            elif isinstance(stmt, ast.ExcLink):
                self._drop(fresh, stmt.target)
        if block.return_value is not None:
            for name in expr_uses(block.return_value):
                self._drop(fresh, name)
        return frozenset(fresh)


def _lint_escapes(func: str, fn: ast.Function, tracked_types: set[str],
                  tracked_events: set[str], report: LintReport,
                  file: str = "") -> None:
    cfg = build_cfg(fn)
    problem = _FreshObjects(tracked_types, tracked_events)
    solution = solve(cfg, problem)
    leaked: set = set()
    for block in cfg.exit_blocks:
        final = solution.block_out.get(block.block_id)
        if final is None:
            continue
        leaked |= set(final)
    for var, line, type_name in sorted(leaked):
        report.add(
            Diagnostic(
                kind=KIND_ESCAPE,
                func=func,
                line=line,
                subject=var,
                message=f"{type_name} in {var!r} can reach function exit"
                " without a tracked event (possible resource leak)",
                file=file,
            )
        )
