"""A mini-language linter on the :mod:`repro.sa` dataflow framework.

Four diagnostic kinds, all deterministic and ordered
(:meth:`repro.checkers.report.LintReport.sorted`):

* ``unreachable-code`` -- statements following a ``return``/``throw`` in
  the same block (surface AST, before any lowering touches bodies);
* ``constant-branch`` -- an ``if`` condition constant propagation proves
  always true/false (user-written conditions only; compiler-introduced
  ``__``-registers from exception lowering are excluded);
* ``use-before-init`` -- a variable read on some structural path before
  any assignment (forward must-assignment, join = intersection);
* ``escape-without-close`` -- an allocation of a checker-tracked type
  that can reach function exit without any tracked FSM event, without
  being returned, stored, passed on, or copied (forward may-analysis,
  join = union).

Unlike the checkers, lint consults no path constraints -- it is the
fast, flow-sensitive-but-path-insensitive first line of feedback.
"""

from __future__ import annotations

from repro.checkers.fsm import FSM
from repro.checkers.report import Diagnostic, LintReport
from repro.lang import ast
from repro.lang.cfg import build_cfg
from repro.lang.parser import parse_program
from repro.lang.transform import (
    lower_exceptions,
    normalize_calls,
    unroll_loops,
)
from repro.sa.constprop import branch_verdicts
from repro.sa.framework import DataflowProblem, solve
from repro.sa.liveness import expr_uses

KIND_UNREACHABLE = "unreachable-code"
KIND_CONSTANT_BRANCH = "constant-branch"
KIND_USE_BEFORE_INIT = "use-before-init"
KIND_ESCAPE = "escape-without-close"


def _internal(name: str) -> bool:
    """Compiler-introduced register (lowering/normalisation temporary)."""
    return name.startswith("__")


def run_lint(source: str, fsms: list[FSM] | None = None,
             unroll: int = 1) -> LintReport:
    """Lint a source program; ``fsms`` enable the escape analysis."""
    report = LintReport()
    surface = parse_program(source)
    for name, fn in surface.functions.items():
        _lint_unreachable(name, fn.body, report)

    core = parse_program(source)
    normalize_calls(core)
    unroll_loops(core, unroll)
    lower_exceptions(core)

    tracked_types: set[str] = set()
    tracked_events: set[str] = set()
    for fsm in fsms or ():
        tracked_types |= set(fsm.types)
        tracked_events |= fsm.events()

    for name, fn in core.functions.items():
        _lint_constant_branches(name, fn, report)
        _lint_use_before_init(name, fn, report)
        if tracked_types:
            _lint_escapes(name, fn, tracked_types, tracked_events, report)
    return report


# -- unreachable code (surface AST) ----------------------------------------


def _lint_unreachable(func: str, body: list, report: LintReport) -> None:
    terminated = False
    for stmt in body:
        if terminated:
            report.add(
                Diagnostic(
                    kind=KIND_UNREACHABLE,
                    func=func,
                    line=getattr(stmt, "line", 0),
                    subject=type(stmt).__name__,
                    message="statement is unreachable (follows a"
                    " return/throw in the same block)",
                )
            )
            break  # one diagnostic per dead region, not per statement
        if isinstance(stmt, (ast.Return, ast.Throw)):
            terminated = True
        elif isinstance(stmt, ast.If):
            _lint_unreachable(func, stmt.then_body, report)
            _lint_unreachable(func, stmt.else_body, report)
        elif isinstance(stmt, ast.While):
            _lint_unreachable(func, stmt.body, report)
        elif isinstance(stmt, ast.TryCatch):
            _lint_unreachable(func, stmt.try_body, report)
            _lint_unreachable(func, stmt.catch_body, report)


# -- constant branches (core AST + constprop) ------------------------------


def _mentions_internal(expr) -> bool:
    return any(_internal(name) for name in expr_uses(expr))


def _lint_constant_branches(func: str, fn: ast.Function,
                            report: LintReport) -> None:
    verdicts = branch_verdicts(fn)
    for stmt in ast.walk_statements(fn.body):
        if not isinstance(stmt, ast.If):
            continue
        verdict = verdicts.get(id(stmt.cond))
        if verdict is None or _mentions_internal(stmt.cond):
            continue
        report.add(
            Diagnostic(
                kind=KIND_CONSTANT_BRANCH,
                func=func,
                line=stmt.line,
                subject="condition",
                message=f"condition is always"
                f" {'true' if verdict else 'false'}; the"
                f" {'else' if verdict else 'then'} branch never runs",
            )
        )


# -- use before init (forward must-assignment) -----------------------------


class _DefiniteAssignment(DataflowProblem):
    direction = "forward"

    def __init__(self, params: frozenset):
        self.params = params

    def boundary(self, cfg):
        return self.params

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a & b

    def transfer(self, block, assigned: frozenset) -> frozenset:
        out = set(assigned)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                out.add(stmt.target)
            elif isinstance(stmt, ast.ExcLink):
                out.add(stmt.target)
        return frozenset(out)


def _lint_use_before_init(func: str, fn: ast.Function,
                          report: LintReport) -> None:
    cfg = build_cfg(fn)
    problem = _DefiniteAssignment(frozenset(fn.params))
    solution = solve(cfg, problem)
    cond_lines = {
        id(stmt.cond): stmt.line
        for stmt in ast.walk_statements(fn.body)
        if isinstance(stmt, ast.If)
    }
    flagged: set[str] = set()

    def check(expr, assigned: set, line: int) -> None:
        for name in sorted(expr_uses(expr)):
            if name in assigned or _internal(name) or name in flagged:
                continue
            flagged.add(name)
            report.add(
                Diagnostic(
                    kind=KIND_USE_BEFORE_INIT,
                    func=func,
                    line=line,
                    subject=name,
                    message=f"variable {name!r} may be read before"
                    " assignment",
                )
            )

    for block_id in sorted(cfg.blocks):
        block = cfg.blocks[block_id]
        incoming = solution.block_in.get(block_id)
        if incoming is None:
            continue  # structurally unreachable
        assigned = set(incoming)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                check(stmt.value, assigned, stmt.line)
                assigned.add(stmt.target)
            elif isinstance(stmt, ast.ExcLink):
                assigned.add(stmt.target)
            elif isinstance(stmt, (ast.FieldStore, ast.Event, ast.ExprStmt)):
                for name in sorted(_stmt_reads(stmt)):
                    check(ast.VarRef(name), assigned, stmt.line)
        if block.branch_cond is not None:
            check(
                block.branch_cond,
                assigned,
                cond_lines.get(id(block.branch_cond), 0),
            )
        if block.return_value is not None:
            check(block.return_value, assigned, 0)


def _stmt_reads(stmt) -> set:
    if isinstance(stmt, ast.FieldStore):
        return {stmt.base, stmt.value}
    if isinstance(stmt, ast.Event):
        reads = {stmt.base}
        for arg in stmt.args:
            expr_uses(arg, reads)
        return reads
    if isinstance(stmt, ast.ExprStmt):
        return expr_uses(stmt.call)
    return set()


# -- tracked-object escape (forward may-analysis) --------------------------


class _FreshObjects(DataflowProblem):
    """May-analysis: ``{(var, alloc_line)}`` allocated-and-untouched."""

    direction = "forward"

    def __init__(self, tracked_types: set[str], tracked_events: set[str]):
        self.tracked_types = tracked_types
        self.tracked_events = tracked_events

    def boundary(self, cfg):
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def _drop(self, fresh: set, var: str) -> None:
        for entry in [e for e in fresh if e[0] == var]:
            fresh.discard(entry)

    def transfer(self, block, value: frozenset) -> frozenset:
        fresh = set(value)
        for stmt in block.statements:
            if isinstance(stmt, ast.Assign):
                if isinstance(stmt.value, ast.New):
                    self._drop(fresh, stmt.target)
                    if stmt.value.type_name in self.tracked_types:
                        fresh.add((stmt.target, stmt.line, stmt.value.type_name))
                    continue
                # Copying the reference hands responsibility elsewhere;
                # passing it to a call might close it.  Both suppress.
                if isinstance(stmt.value, ast.VarRef):
                    self._drop(fresh, stmt.value.name)
                elif isinstance(stmt.value, ast.Call):
                    for name in expr_uses(stmt.value):
                        self._drop(fresh, name)
                self._drop(fresh, stmt.target)
            elif isinstance(stmt, ast.Event):
                if stmt.method in self.tracked_events:
                    self._drop(fresh, stmt.base)
            elif isinstance(stmt, ast.FieldStore):
                self._drop(fresh, stmt.value)
                self._drop(fresh, stmt.base)
            elif isinstance(stmt, ast.ExprStmt):
                for name in expr_uses(stmt.call):
                    self._drop(fresh, name)
            elif isinstance(stmt, ast.ExcLink):
                self._drop(fresh, stmt.target)
        if block.return_value is not None:
            for name in expr_uses(block.return_value):
                self._drop(fresh, name)
        return frozenset(fresh)


def _lint_escapes(func: str, fn: ast.Function, tracked_types: set[str],
                  tracked_events: set[str], report: LintReport) -> None:
    cfg = build_cfg(fn)
    problem = _FreshObjects(tracked_types, tracked_events)
    solution = solve(cfg, problem)
    leaked: set = set()
    for block in cfg.exit_blocks:
        final = solution.block_out.get(block.block_id)
        if final is None:
            continue
        leaked |= set(final)
    for var, line, type_name in sorted(leaked):
        report.add(
            Diagnostic(
                kind=KIND_ESCAPE,
                func=func,
                line=line,
                subject=var,
                message=f"{type_name} in {var!r} can reach function exit"
                " without a tracked event (possible resource leak)",
            )
        )
