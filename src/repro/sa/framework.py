"""Lattice-parameterized worklist dataflow solving over the basic-block CFG.

This is the reusable core of the pre-closure static-analysis layer: a
classic iterative dataflow solver over
:class:`repro.lang.cfg.ControlFlowGraph`, parameterized by a
:class:`DataflowProblem` (direction, join, transfer, optional widening).
Concrete passes -- constant propagation (:mod:`repro.sa.constprop`),
liveness (:mod:`repro.sa.liveness`) and the lint analyses
(:mod:`repro.sa.lint`) -- only supply lattice operations; the fixpoint
loop, predecessor indexing and reachability live here.

Conventions:

* ``block_in[b]`` is the dataflow value at the *entry point* of block
  ``b`` and ``block_out[b]`` the value at its *exit point*, regardless of
  direction.  A forward problem computes ``out = transfer(block, in)``; a
  backward problem computes ``in = transfer(block, out)``.
* The solver-internal bottom is the :data:`UNREACHED` sentinel, joined as
  the identity, so problems never need an explicit bottom element.
* Iteration order is deterministic (blocks seeded and re-queued in id
  order), so downstream consumers -- the linter in particular -- produce
  stable output across runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.lang.cfg import BasicBlock, ControlFlowGraph

#: Solver-internal bottom: the value of a block not yet visited.  Join is
#: defined so that ``join(UNREACHED, v) == v``.
UNREACHED = object()


class DataflowProblem:
    """One dataflow analysis: direction plus lattice operations.

    Subclasses set :attr:`direction` and implement :meth:`boundary`,
    :meth:`transfer` and :meth:`join`; :meth:`equal` and :meth:`widen`
    have sensible defaults (structural equality; no widening).
    """

    direction: str = "forward"  # or "backward"

    def boundary(self, cfg: ControlFlowGraph):
        """Initial value at the entry (forward) or every exit (backward)."""
        raise NotImplementedError

    def transfer(self, block: BasicBlock, value):
        """Value after flowing through ``block`` (statements + terminator)."""
        raise NotImplementedError

    def join(self, a, b):
        """Least upper bound of two non-UNREACHED values."""
        raise NotImplementedError

    def equal(self, a, b) -> bool:
        return a == b

    def widen(self, old, new):
        """Widening hook, applied once a block exceeds the visit budget."""
        return new


@dataclass
class DataflowSolution:
    """Fixpoint values per block plus iteration accounting."""

    block_in: dict = field(default_factory=dict)
    block_out: dict = field(default_factory=dict)
    iterations: int = 0

    def value_in(self, block_id: int):
        return self.block_in.get(block_id, UNREACHED)

    def value_out(self, block_id: int):
        return self.block_out.get(block_id, UNREACHED)


def predecessors(cfg: ControlFlowGraph) -> dict[int, list[int]]:
    """Predecessor lists (sorted, deduplicated) for every block."""
    preds: dict[int, set[int]] = {bid: set() for bid in cfg.blocks}
    for block in cfg.blocks.values():
        for succ in block.successors:
            if succ in preds:
                preds[succ].add(block.block_id)
    return {bid: sorted(ids) for bid, ids in preds.items()}


def reachable_blocks(cfg: ControlFlowGraph) -> set[int]:
    """Block ids reachable from the entry block along successor edges."""
    seen: set[int] = set()
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        if bid in seen or bid not in cfg.blocks:
            continue
        seen.add(bid)
        stack.extend(cfg.blocks[bid].successors)
    return seen


def solve(
    cfg: ControlFlowGraph,
    problem: DataflowProblem,
    widen_after: int | None = None,
) -> DataflowSolution:
    """Run ``problem`` to fixpoint over ``cfg``.

    ``widen_after`` bounds the visits per block before :meth:`widen` is
    consulted; None disables widening (the default -- the CFG of a core
    function is acyclic after loop unrolling, so plain iteration
    terminates).
    """
    forward = problem.direction == "forward"
    preds = predecessors(cfg)
    succs = {bid: list(cfg.blocks[bid].successors) for bid in cfg.blocks}
    sources = preds if forward else succs
    boundary = problem.boundary(cfg)

    solution = DataflowSolution()
    computed = solution.block_out if forward else solution.block_in

    worklist = deque(sorted(cfg.blocks))
    queued = set(worklist)
    visits: dict[int, int] = {}

    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        block = cfg.blocks[bid]

        incoming = UNREACHED
        for source in sources[bid]:
            value = computed.get(source, UNREACHED)
            if value is UNREACHED:
                continue
            incoming = value if incoming is UNREACHED else problem.join(
                incoming, value
            )
        at_boundary = (bid == cfg.entry) if forward else block.is_return
        if at_boundary:
            incoming = boundary if incoming is UNREACHED else problem.join(
                incoming, boundary
            )
        if incoming is UNREACHED:
            continue  # unreachable in this direction

        if forward:
            solution.block_in[bid] = incoming
        else:
            solution.block_out[bid] = incoming
        result = problem.transfer(block, incoming)

        visits[bid] = visits.get(bid, 0) + 1
        old = computed.get(bid, UNREACHED)
        if widen_after is not None and visits[bid] > widen_after and (
            old is not UNREACHED
        ):
            result = problem.widen(old, result)
        solution.iterations += 1
        if old is not UNREACHED and problem.equal(old, result):
            continue
        computed[bid] = result
        for dependent in (succs if forward else preds)[bid]:
            if dependent not in queued:
                queued.add(dependent)
                worklist.append(dependent)
    return solution
