"""Interprocedural FSM-relevance slicing (tentpole pass 3).

Walks backward from the checker specs' tracked types and events to decide
which variables, fields and functions can possibly affect a tracked
object, so the graph generators skip everything else *before* the closure
ever sees an edge.

Two levels, with two distinct safety arguments:

**Alias-level variable relevance.**  Build an undirected adjacency over
``(func, var)`` nodes and field names: assignments link their two
variables, field stores/loads link both the base and the value/target to
the field node, parameter passing links actuals to formals, returns link
callee return variables to caller LHSs, and ``ExcLink`` links the catch
target to the callee's ``__exc`` register.  Every edge the alias-graph
builder can emit connects vertices whose names are adjacent here (field
edges via the shared field node), and an allocation's object vertex
attaches to its target variable -- so the name-level connected component
of a variable *over-approximates* the alias-graph connected component of
all its vertices.  Seeding from tracked-type allocation targets therefore
yields: any alias-graph edge with an irrelevant endpoint lies in a
component containing no tracked object.  The closure grammar only
composes edges sharing a vertex, so facts computed inside such a
component can never meet a tracked object's flows-to facts, never seed a
state edge, and never answer an event's alias query (the phase-2 index
only keeps flows-to edges out of tracked objects).  Dropping those edges
changes no retained fact.

**Flow-level (phase 2) function relevance.**  A function subtree is
relevant when it allocates a tracked type, performs a tracked-FSM event
on a relevant base, or (transitively) calls a relevant function.  Calls
into irrelevant subtrees are built as step-over cf edges -- exactly the
encoding the builder already uses for extern callees -- instead of
call/return edges plus the callee clone.  A state fact traversing the
through-callee path acquires ``(C cid, I[0, leaf], R rid)``, which the
encoding algebra cancels to nothing once the callee path completes
(:func:`repro.cfet.encoding._normalize` case 3), leaving the same
encoding as the single-interval step-over; at least one callee leaf is
always feasible because the leaves' branch constraints partition the
input space.  Irrelevant subtrees contain no tracked events or
allocations by construction, so no state change and no seed is lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.callgraph import CallGraph
from repro.lang.transform import EXC_REGISTER
from repro.lang.types import ObjectInfo


@dataclass
class RelevanceInfo:
    """Which names and functions can affect a tracked object."""

    relevant_vars: set = field(default_factory=set)  # (func, var)
    relevant_fields: set = field(default_factory=set)
    #: Functions whose clone subtrees phase 2 must build.
    flow_relevant_funcs: set = field(default_factory=set)
    #: Functions with at least one relevant object variable (phase 1).
    alias_relevant_funcs: set = field(default_factory=set)

    def var_relevant(self, func: str, var: str) -> bool:
        return (func, var) in self.relevant_vars

    def func_flow_relevant(self, func: str) -> bool:
        return func in self.flow_relevant_funcs


def compute_relevance(
    program: ast.Program,
    callgraph: CallGraph,
    info: ObjectInfo,
    tracked_types: set[str],
    tracked_events: set[str],
) -> RelevanceInfo:
    """Backward slice from tracked types/events to relevant names."""
    adjacency: dict = {}
    seeds: set = set()

    def link(a, b) -> None:
        adjacency.setdefault(a, set()).add(b)
        adjacency.setdefault(b, set()).add(a)

    return_vars: dict[str, set[str]] = {}
    for name, fn in program.functions.items():
        returns = return_vars.setdefault(name, set())
        for stmt in ast.walk_statements(fn.body):
            if isinstance(stmt, ast.Return) and isinstance(
                stmt.value, ast.VarRef
            ):
                returns.add(stmt.value.name)

    def link_call(func: str, call: ast.Call, lhs: str | None) -> None:
        callee = program.functions.get(call.func)
        if callee is None:
            return
        for formal, actual in zip(callee.params, call.args):
            if isinstance(actual, ast.VarRef):
                link(("v", func, actual.name), ("v", call.func, formal))
        if lhs is not None:
            for ret in return_vars.get(call.func, ()):
                link(("v", func, lhs), ("v", call.func, ret))

    for name, fn in program.functions.items():
        for stmt in ast.walk_statements(fn.body):
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                if isinstance(value, ast.New):
                    if value.type_name in tracked_types:
                        seeds.add(("v", name, stmt.target))
                elif isinstance(value, ast.VarRef):
                    link(("v", name, stmt.target), ("v", name, value.name))
                elif isinstance(value, ast.FieldLoad):
                    link(("v", name, stmt.target), ("fld", value.fieldname))
                    link(("v", name, value.base), ("fld", value.fieldname))
                elif isinstance(value, ast.Call):
                    link_call(name, value, stmt.target)
            elif isinstance(stmt, ast.FieldStore):
                link(("v", name, stmt.value), ("fld", stmt.fieldname))
                link(("v", name, stmt.base), ("fld", stmt.fieldname))
            elif isinstance(stmt, ast.ExcLink):
                link(("v", name, stmt.target), ("v", stmt.callee, EXC_REGISTER))
            elif isinstance(stmt, ast.ExprStmt):
                link_call(name, stmt.call, None)

    # Flood from the tracked allocation targets.
    reached: set = set()
    stack = [node for node in seeds]
    while stack:
        node = stack.pop()
        if node in reached:
            continue
        reached.add(node)
        stack.extend(adjacency.get(node, ()))

    out = RelevanceInfo()
    for node in reached:
        if node[0] == "v":
            out.relevant_vars.add((node[1], node[2]))
        else:
            out.relevant_fields.add(node[1])
    for func, vars_ in info.object_vars.items():
        if any((func, v) in out.relevant_vars for v in vars_):
            out.alias_relevant_funcs.add(func)

    out.flow_relevant_funcs = _flow_relevant(
        program, callgraph, tracked_types, tracked_events, out
    )
    return out


def _flow_relevant(
    program: ast.Program,
    callgraph: CallGraph,
    tracked_types: set[str],
    tracked_events: set[str],
    rel: RelevanceInfo,
) -> set[str]:
    """Functions whose subtree can allocate or step a tracked object."""
    local: set[str] = set()
    for name, fn in program.functions.items():
        for stmt in ast.walk_statements(fn.body):
            if (
                isinstance(stmt, ast.Assign)
                and isinstance(stmt.value, ast.New)
                and stmt.value.type_name in tracked_types
            ):
                local.add(name)
                break
            if (
                isinstance(stmt, ast.Event)
                and stmt.method in tracked_events
                and rel.var_relevant(name, stmt.base)
            ):
                local.add(name)
                break

    # Propagate relevance from callees to callers to fixpoint (reverse
    # call-graph reachability; handles recursion/SCCs by iteration).
    relevant = set(local)
    changed = True
    while changed:
        changed = False
        for caller, callees in callgraph.edges.items():
            if caller in relevant:
                continue
            if any(callee in relevant for callee in callees):
                relevant.add(caller)
                changed = True
    return relevant
