"""Pre-closure static analysis: dataflow framework, reductions, lint.

The closure computation dominates Grapple's cost (paper §2.2, §4), so
everything here runs *before* the engine to shrink its input:

* :mod:`repro.sa.framework` -- the lattice-parameterized worklist solver
  over :class:`repro.lang.cfg.ControlFlowGraph`;
* :mod:`repro.sa.constprop` -- constant propagation + branch folding;
* :mod:`repro.sa.liveness` -- liveness + dead-store elimination;
* :mod:`repro.sa.relevance` -- interprocedural FSM-relevance slicing;
* :mod:`repro.sa.reduce` -- reduction counters + cf-chain compression;
* :mod:`repro.sa.lint` -- the mini-language linter on the same framework.
"""

from repro.sa.framework import (
    DataflowProblem,
    DataflowSolution,
    UNREACHED,
    predecessors,
    reachable_blocks,
    solve,
)
from repro.sa.constprop import ConstProp, fold_constant_branches
from repro.sa.liveness import Liveness, eliminate_dead_stores
from repro.sa.lint import run_lint
from repro.sa.reduce import ReductionStats, compress_cf_chains
from repro.sa.relevance import RelevanceInfo, compute_relevance

__all__ = [
    "ConstProp",
    "DataflowProblem",
    "DataflowSolution",
    "Liveness",
    "ReductionStats",
    "RelevanceInfo",
    "UNREACHED",
    "compress_cf_chains",
    "compute_relevance",
    "eliminate_dead_stores",
    "fold_constant_branches",
    "predecessors",
    "reachable_blocks",
    "run_lint",
    "solve",
]
