"""Scope-graph name resolution for multi-file programs (DESIGN.md §15).

Stack-graph style (van Antwerpen et al., PAPERS.md): each file compiles
*independently* to a small scope graph whose nodes carry push/pop symbol
discipline, and cross-file name binding is a path search over the union
of the per-file graphs plus one program root.  Nothing about a file's
graph depends on any other file, so the per-file artifact is keyed by a
content digest and can be cached, shipped, and re-resolved incrementally
-- exactly the shape the planned analysis daemon needs.

Node kinds
----------

* ``scope`` -- a lexical region: the program root, one exports scope and
  one lookup scope per file.  Traversal passes through unchanged.
* ``push`` -- pushes its symbol onto the resolution stack (references
  and import re-routing).
* ``pop`` -- pops its symbol; traversal continues only when the symbol
  matches the top of the stack.  A ``pop`` node carrying a definition
  payload *resolves* the reference when the stack empties there.
* ``ref`` -- the root of one reference's search.

Wiring per file (module ``m``, path ``p``):

* every top-level ``func f`` becomes a ``pop f`` definition node hanging
  off the file's *exports* scope;
* the exports scope hangs off the program root behind ``pop m`` (so a
  qualified reference must first pop the module name), or directly for
  the root namespace (files without a ``module`` header);
* a bare reference ``g(...)`` pushes ``g`` and searches the file's
  *lookup* scope: local exports first, then each ``import a.g;`` which
  re-routes through ``pop g -> push a -> push g -> program root``;
* a qualified reference ``a.f(...)`` pushes ``f`` then ``a`` and
  searches the program root directly (gated on ``import a;`` -- the
  parser only produces qualified calls for imported aliases).

Resolution rules
----------------

Deterministic by construction: candidate definitions are collected by a
breadth-first search with sorted tie-breaks, so the outcome never
depends on dict order or file discovery order.

* 0 candidates: the reference is *extern* (single-file semantics keep
  unknown bare callees as opaque extern calls; only *qualified*
  references and import declarations earn an ``unresolved-name``
  diagnostic, because those name a module explicitly).
* 1 candidate: resolved; the linker rewrites the call to the symbol id.
* >1 candidates: an ``ambiguous-import`` diagnostic; the local
  definition wins when present, else the lexicographically smallest
  symbol id, so the pipeline still proceeds deterministically.

Symbol ids are ``m.f`` for module ``m`` ("" for the root namespace,
whose symbols stay unqualified -- single-file programs link to a
byte-identical :class:`~repro.lang.ast.Program`).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import deque
from dataclasses import dataclass, field, fields

from repro.checkers.report import Diagnostic
from repro.engine.cache import LRUCache
from repro.lang import ast
from repro.lang.lexer import tokenize
from repro.lang.parser import ParseError, parse_module, scan_module_name

ARTIFACT_SCHEMA = "grapple/scope-artifact"
ARTIFACT_VERSION = 1

KIND_UNRESOLVED = "unresolved-name"
KIND_AMBIGUOUS_IMPORT = "ambiguous-import"

SCOPE, PUSH, POP, REF = "scope", "push", "pop", "ref"

#: The shared program-root node every file graph composes against.
PROGRAM_ROOT = ("<program>", "root")


def symbol_id(module: str, name: str) -> str:
    """Global symbol id: ``m.f`` for module ``m``, bare for the root."""
    return f"{module}.{name}" if module else name


def source_digest(text: str) -> str:
    """Content digest keying a file's scope artifact."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- per-file artifact ---------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DefRecord:
    name: str
    line: int
    params: int


@dataclass(frozen=True, slots=True)
class ImportRecord:
    module: str
    symbol: str | None  # None = whole-module import
    line: int


@dataclass(frozen=True, slots=True)
class RefRecord:
    """One distinct callee name referenced by a file.

    ``name`` is ``g`` (bare) or ``a.f`` (qualified); ``func`` and
    ``line`` locate the first occurrence for diagnostics.
    """

    name: str
    func: str
    line: int


@dataclass
class FileArtifact:
    """The serialized per-file resolution artifact (digest-keyed)."""

    digest: str
    path: str
    module: str
    defs: list[DefRecord] = field(default_factory=list)
    imports: list[ImportRecord] = field(default_factory=list)
    refs: list[RefRecord] = field(default_factory=list)

    def to_json(self) -> dict:
        return {
            "schema": ARTIFACT_SCHEMA,
            "version": ARTIFACT_VERSION,
            "digest": self.digest,
            "path": self.path,
            "module": self.module,
            "defs": [[d.name, d.line, d.params] for d in self.defs],
            "imports": [[i.module, i.symbol, i.line] for i in self.imports],
            "refs": [[r.name, r.func, r.line] for r in self.refs],
        }

    @classmethod
    def from_json(cls, doc: dict) -> "FileArtifact":
        if doc.get("schema") != ARTIFACT_SCHEMA:
            raise ValueError(f"not a scope artifact: {doc.get('schema')!r}")
        if doc.get("version") != ARTIFACT_VERSION:
            raise ValueError(f"unsupported artifact version {doc.get('version')!r}")
        return cls(
            digest=doc["digest"],
            path=doc["path"],
            module=doc["module"],
            defs=[DefRecord(n, l, p) for n, l, p in doc["defs"]],
            imports=[ImportRecord(m, s, l) for m, s, l in doc["imports"]],
            refs=[RefRecord(n, f, l) for n, f, l in doc["refs"]],
        )


def _collect_calls(expr, out: list) -> None:
    if isinstance(expr, ast.Call):
        out.append(expr)
        for arg in expr.args:
            _collect_calls(arg, out)
    elif isinstance(expr, ast.Binary):
        _collect_calls(expr.left, out)
        _collect_calls(expr.right, out)
    elif isinstance(expr, ast.Unary):
        _collect_calls(expr.operand, out)


def file_references(mf: ast.ModuleFile) -> list[RefRecord]:
    """Every distinct callee name in a file, first occurrence wins."""
    first: dict[str, RefRecord] = {}
    for fname, fn in mf.functions.items():
        for stmt in ast.walk_statements(fn.body):
            calls: list = []
            for expr in ast.walk_expressions(stmt):
                _collect_calls(expr, calls)
            if isinstance(stmt, ast.Event):
                for arg in stmt.args:
                    _collect_calls(arg, calls)
            line = getattr(stmt, "line", 0)
            for call in calls:
                if call.func not in first:
                    first[call.func] = RefRecord(call.func, fname, line)
    return sorted(first.values(), key=lambda r: (r.name, r.func, r.line))


def build_artifact(mf: ast.ModuleFile, digest: str) -> FileArtifact:
    """Compile one parsed file to its scope artifact."""
    return FileArtifact(
        digest=digest,
        path=mf.path,
        module=mf.module,
        defs=sorted(
            (DefRecord(fn.name, fn.line, len(fn.params))
             for fn in mf.functions.values()),
            key=lambda d: (d.name, d.line),
        ),
        imports=list(mf.imports and [
            ImportRecord(i.module, i.symbol, i.line) for i in mf.imports
        ] or []),
        refs=file_references(mf),
    )


#: Default bound on cached artifacts.  Every edit mints a new digest, so
#: a long-running daemon would otherwise grow the store without limit;
#: 1024 entries comfortably covers a large workspace plus edit churn.
ARTIFACT_CACHE_CAPACITY = 1024


class ScopeArtifactCache:
    """Digest-keyed on-disk store of per-file scope artifacts.

    Size-bounded: an in-memory :class:`~repro.engine.cache.LRUCache`
    indexes the store, and evicting an entry unlinks its file, so the
    directory never holds more than ``capacity`` artifacts.  Artifacts
    already on disk (a daemon restart) are adopted into the index
    oldest-first, so a warm directory obeys the same bound.  ``get``
    returns a private copy -- the loader rewrites ``path`` on cache
    hits, which must not corrupt the cached entry.
    """

    def __init__(self, directory: str,
                 capacity: int = ARTIFACT_CACHE_CAPACITY):
        self.directory = directory
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._index = LRUCache(capacity)
        self._adopt_existing()

    def _adopt_existing(self) -> None:
        try:
            names = os.listdir(self.directory)
        except OSError:
            return
        found = []
        for name in names:
            if not name.endswith(".scope.json"):
                continue
            digest = name[: -len(".scope.json")]
            try:
                mtime = os.path.getmtime(os.path.join(self.directory, name))
            except OSError:
                continue
            found.append((mtime, digest))
        # Oldest first: they evict first when over capacity.  None marks
        # "on disk, not yet parsed"; the first get() fills it in.
        for _, digest in sorted(found):
            self._insert(digest, None)

    def _path(self, digest: str) -> str:
        return os.path.join(self.directory, f"{digest}.scope.json")

    def _insert(self, digest: str, artifact: FileArtifact | None) -> None:
        evicted = self._index.put(digest, artifact)
        if evicted is not None:
            self.evictions += 1
            try:
                os.unlink(self._path(evicted[0]))
            except OSError:
                pass

    @staticmethod
    def _copy(artifact: FileArtifact) -> FileArtifact:
        # Records are frozen; only ``path`` is ever rewritten, so a
        # list-sharing shallow copy is enough.
        return FileArtifact(
            digest=artifact.digest, path=artifact.path,
            module=artifact.module, defs=artifact.defs,
            imports=artifact.imports, refs=artifact.refs,
        )

    def __len__(self) -> int:
        return len(self._index)

    def get(self, digest: str) -> FileArtifact | None:
        cached = self._index.get(digest)
        if cached is not None:
            self.hits += 1
            return self._copy(cached)
        try:
            with open(self._path(digest)) as f:
                artifact = FileArtifact.from_json(json.load(f))
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            self.misses += 1
            return None
        self.hits += 1
        self._insert(digest, artifact)
        return self._copy(artifact)

    def put(self, artifact: FileArtifact) -> None:
        os.makedirs(self.directory, exist_ok=True)
        path = self._path(artifact.digest)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as f:
            json.dump(artifact.to_json(), f, sort_keys=True)
            f.write("\n")
        os.replace(tmp, path)
        self._insert(artifact.digest, self._copy(artifact))


# -- scope graph ---------------------------------------------------------------


@dataclass
class ScopeGraph:
    """Push/pop scope graph over one or more file artifacts.

    ``nodes`` maps a node id to ``(kind, symbol, payload)`` where
    ``symbol`` is the pushed/popped symbol (None for scopes/refs) and
    ``payload`` is the resolved symbol id for definition ``pop`` nodes.
    Edges keep insertion order; resolution sorts candidates, so order
    only affects traversal, never the outcome.
    """

    nodes: dict = field(default_factory=dict)
    edges: dict = field(default_factory=dict)

    def add_node(self, node_id, kind, symbol=None, payload=None):
        self.nodes.setdefault(node_id, (kind, symbol, payload))
        return node_id

    def add_edge(self, src, dst) -> None:
        targets = self.edges.setdefault(src, [])
        if dst not in targets:
            targets.append(dst)

    def node_count(self, kind: str | None = None) -> int:
        if kind is None:
            return len(self.nodes)
        return sum(1 for k, _, _ in self.nodes.values() if k == kind)


def extend_graph(graph: ScopeGraph, artifact: FileArtifact) -> None:
    """Add one file's nodes and edges to a composed scope graph."""
    p = artifact.path
    graph.add_node(PROGRAM_ROOT, SCOPE)
    exports = graph.add_node((p, "exports"), SCOPE)
    lookup = graph.add_node((p, "lookup"), SCOPE)

    # Exports hang off the program root, behind ``pop module`` when the
    # file declares a namespace.
    if artifact.module:
        gate = graph.add_node((p, "popmod"), POP, artifact.module)
        graph.add_edge(PROGRAM_ROOT, gate)
        graph.add_edge(gate, exports)
    else:
        graph.add_edge(PROGRAM_ROOT, exports)

    # Definitions: ``pop f`` nodes carrying the global symbol id.
    for d in artifact.defs:
        node = graph.add_node(
            (p, "def", d.name), POP, d.name,
            payload=symbol_id(artifact.module, d.name),
        )
        graph.add_edge(exports, node)

    # Bare lookup sees local exports first...
    graph.add_edge(lookup, exports)
    # ...then each single-symbol import, as the stack-graph re-route
    # ``pop g -> push g -> push a -> program root`` (restricting the
    # import to exactly one symbol; the module name ends on top of the
    # stack because the provider's root gate pops it first).
    for index, imp in enumerate(artifact.imports):
        if imp.symbol is None:
            continue
        pop_g = graph.add_node((p, "imp", index, "pop"), POP, imp.symbol)
        push_g = graph.add_node((p, "imp", index, "pushsym"), PUSH, imp.symbol)
        push_a = graph.add_node((p, "imp", index, "pushmod"), PUSH, imp.module)
        graph.add_edge(lookup, pop_g)
        graph.add_edge(pop_g, push_g)
        graph.add_edge(push_g, push_a)
        graph.add_edge(push_a, PROGRAM_ROOT)

    # References: bare names search the lookup scope, qualified names
    # push member-then-module and search the program root.
    imported_modules = {i.module for i in artifact.imports}
    for ref in artifact.refs:
        node = graph.add_node((p, "ref", ref.name), REF)
        if "." in ref.name:
            alias, member = ref.name.split(".", 1)
            if alias not in imported_modules:
                continue  # dangling qualified ref: no search path at all
            push_member = graph.add_node(
                (p, "ref", ref.name, "pushsym"), PUSH, member
            )
            push_alias = graph.add_node(
                (p, "ref", ref.name, "pushmod"), PUSH, alias
            )
            graph.add_edge(node, push_member)
            graph.add_edge(push_member, push_alias)
            graph.add_edge(push_alias, PROGRAM_ROOT)
        else:
            push = graph.add_node((p, "ref", ref.name, "push"), PUSH, ref.name)
            graph.add_edge(node, push)
            graph.add_edge(push, lookup)


def resolve_node(graph: ScopeGraph, start) -> list[str]:
    """All definition symbol ids reachable from one node under the
    push/pop discipline, sorted (deterministic ambiguity reporting)."""
    results: set[str] = set()
    queue = deque([(start, ())])
    seen = {(start, ())}
    while queue:
        node, stack = queue.popleft()
        for succ in graph.edges.get(node, ()):
            kind, symbol, payload = graph.nodes[succ]
            if kind == PUSH:
                next_stack = stack + (symbol,)
            elif kind == POP:
                if not stack or stack[-1] != symbol:
                    continue
                next_stack = stack[:-1]
                if payload is not None and not next_stack:
                    results.add(payload)
                    continue
            else:
                next_stack = stack
            state = (succ, next_stack)
            if state not in seen and len(next_stack) <= 8:
                seen.add(state)
                queue.append(state)
    return sorted(results)


# -- resolution ----------------------------------------------------------------


@dataclass
class ScopeStats:
    """Counters exported to the run report's ``scopes`` section."""

    files: int = 0
    modules: int = 0
    imports: int = 0
    definitions: int = 0
    references: int = 0
    scope_resolutions: int = 0
    unresolved_refs: int = 0
    ambiguous_refs: int = 0
    artifact_cache_hits: int = 0
    artifact_cache_misses: int = 0
    artifact_cache_evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


@dataclass
class Resolution:
    """The outcome of cross-file scope-graph resolution."""

    artifacts: list[FileArtifact] = field(default_factory=list)
    graph: ScopeGraph = field(default_factory=ScopeGraph)
    stats: ScopeStats = field(default_factory=ScopeStats)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: (path, raw callee name) -> resolved global symbol id.
    bindings: dict = field(default_factory=dict)
    #: global symbol id -> source file path (lint/report attribution).
    file_of: dict = field(default_factory=dict)
    #: path -> (site_base, next_site): the half-open range of call-site
    #: ids assigned to each file in canonical order.  A file's site
    #: count depends only on its own content, so per-file *offsets*
    #: (site - base) are stable across runs that include different
    #: neighbours -- the incremental daemon rebases warnings with this.
    site_ranges: dict = field(default_factory=dict)

    def diagnostic_count(self, kind: str) -> int:
        return sum(1 for d in self.diagnostics if d.kind == kind)


def _diag(kind, func, line, subject, message, file) -> Diagnostic:
    return Diagnostic(kind=kind, func=func, line=line, subject=subject,
                      message=message, file=file)


def resolve_files(artifacts: list[FileArtifact]) -> Resolution:
    """Resolve every reference across a set of per-file artifacts.

    Input order is irrelevant: artifacts are processed in canonical
    (module, path) order and all tie-breaks are lexicographic.
    """
    ordered = sorted(artifacts, key=lambda a: (a.module, a.path))
    out = Resolution(artifacts=ordered)
    stats = out.stats
    stats.files = len(ordered)
    stats.modules = len({a.module for a in ordered if a.module})

    modules: dict[str, FileArtifact] = {}
    for artifact in ordered:
        if artifact.module and artifact.module in modules:
            other = modules[artifact.module]
            out.diagnostics.append(_diag(
                KIND_AMBIGUOUS_IMPORT, "<module>", 0, artifact.module,
                f"module {artifact.module!r} is declared by both"
                f" {other.path!r} and {artifact.path!r}",
                artifact.path,
            ))
        else:
            modules.setdefault(artifact.module, artifact)
        for d in artifact.defs:
            out.file_of[symbol_id(artifact.module, d.name)] = artifact.path
        stats.definitions += len(artifact.defs)

    graph = out.graph
    for artifact in ordered:
        extend_graph(graph, artifact)

    for artifact in ordered:
        local_defs = {d.name for d in artifact.defs}
        exported: dict[str, str] = {}  # bare name -> providing module
        stats.imports += len(artifact.imports)
        for imp in artifact.imports:
            target = modules.get(imp.module)
            if target is None or (imp.module and not target.module):
                out.diagnostics.append(_diag(
                    KIND_UNRESOLVED, "<import>", imp.line, imp.module,
                    f"import of unknown module {imp.module!r}",
                    artifact.path,
                ))
                continue
            if imp.symbol is None:
                continue
            if imp.symbol not in {d.name for d in target.defs}:
                out.diagnostics.append(_diag(
                    KIND_UNRESOLVED, "<import>", imp.line, imp.symbol,
                    f"module {imp.module!r} does not define"
                    f" {imp.symbol!r}",
                    artifact.path,
                ))
                continue
            if imp.symbol in local_defs:
                out.diagnostics.append(_diag(
                    KIND_AMBIGUOUS_IMPORT, "<import>", imp.line, imp.symbol,
                    f"imported {imp.module}.{imp.symbol} collides with a"
                    f" local definition of {imp.symbol!r}"
                    " (the local definition wins)",
                    artifact.path,
                ))
            elif imp.symbol in exported:
                out.diagnostics.append(_diag(
                    KIND_AMBIGUOUS_IMPORT, "<import>", imp.line, imp.symbol,
                    f"{imp.symbol!r} is imported from both"
                    f" {exported[imp.symbol]!r} and {imp.module!r}"
                    " (the lexicographically first module wins)",
                    artifact.path,
                ))
            else:
                exported[imp.symbol] = imp.module

        for ref in artifact.refs:
            stats.references += 1
            in_func = symbol_id(artifact.module, ref.func)
            candidates = resolve_node(graph, (artifact.path, "ref", ref.name))
            if not candidates:
                stats.unresolved_refs += 1
                if "." in ref.name:
                    alias, member = ref.name.split(".", 1)
                    known = modules.get(alias) is not None
                    out.diagnostics.append(_diag(
                        KIND_UNRESOLVED, in_func, ref.line, ref.name,
                        (f"module {alias!r} does not define {member!r}"
                         if known else
                         f"qualified call into unknown module {alias!r}"),
                        artifact.path,
                    ))
                continue
            if len(candidates) > 1:
                stats.ambiguous_refs += 1
                local = symbol_id(artifact.module, ref.name)
                winner = local if local in candidates else candidates[0]
                out.diagnostics.append(_diag(
                    KIND_AMBIGUOUS_IMPORT, in_func, ref.line, ref.name,
                    f"{ref.name!r} resolves to any of"
                    f" {', '.join(candidates)}; using {winner!r}",
                    artifact.path,
                ))
            else:
                winner = candidates[0]
            stats.scope_resolutions += 1
            out.bindings[(artifact.path, ref.name)] = winner
    return out


# -- linking -------------------------------------------------------------------


class LinkError(ParseError):
    """Raised when multi-file linking cannot produce a single program."""


def _rewrite_expr(expr, rewrite):
    if isinstance(expr, ast.Call):
        args = tuple(_rewrite_expr(a, rewrite) for a in expr.args)
        return ast.Call(rewrite(expr.func), args, expr.site)
    if isinstance(expr, ast.Binary):
        return ast.Binary(
            expr.op, _rewrite_expr(expr.left, rewrite),
            _rewrite_expr(expr.right, rewrite),
        )
    if isinstance(expr, ast.Unary):
        return ast.Unary(expr.op, _rewrite_expr(expr.operand, rewrite))
    return expr


def _rewrite_body(body: list, rewrite) -> None:
    for stmt in body:
        if isinstance(stmt, ast.Assign):
            stmt.value = _rewrite_expr(stmt.value, rewrite)
        elif isinstance(stmt, ast.ExprStmt):
            stmt.call = _rewrite_expr(stmt.call, rewrite)
        elif isinstance(stmt, ast.Event):
            stmt.args = tuple(_rewrite_expr(a, rewrite) for a in stmt.args)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                stmt.value = _rewrite_expr(stmt.value, rewrite)
        elif isinstance(stmt, ast.If):
            stmt.cond = _rewrite_expr(stmt.cond, rewrite)
            _rewrite_body(stmt.then_body, rewrite)
            _rewrite_body(stmt.else_body, rewrite)
        elif isinstance(stmt, ast.While):
            stmt.cond = _rewrite_expr(stmt.cond, rewrite)
            _rewrite_body(stmt.body, rewrite)
        elif isinstance(stmt, ast.TryCatch):
            _rewrite_body(stmt.try_body, rewrite)
            _rewrite_body(stmt.catch_body, rewrite)


def link_modules(
    module_files: list[ast.ModuleFile], resolution: Resolution
) -> ast.Program:
    """Fuse resolved files into one :class:`~repro.lang.ast.Program`.

    Function names become global symbol ids and every call site is
    rewritten to its resolved target, so the call graph, relevance
    slicing, constant propagation and DSE all consume resolved symbol
    ids -- interprocedural analysis crosses file boundaries for free.
    Unresolved (extern) callees keep their raw name, preserving the
    single-file extern-call semantics.
    """
    program = ast.Program()
    for mf in sorted(module_files, key=lambda m: (m.module, m.path)):
        bindings = resolution.bindings

        def rewrite(name: str, _path=mf.path) -> str:
            return bindings.get((_path, name), name)

        for fname, fn in mf.functions.items():
            global_name = symbol_id(mf.module, fname)
            if global_name in program.functions:
                raise LinkError(
                    f"duplicate symbol {global_name!r}"
                    f" (redefined in {mf.path!r})"
                )
            _rewrite_body(fn.body, rewrite)
            program.functions[global_name] = ast.Function(
                global_name, fn.params, fn.body, line=fn.line
            )
    return program


# -- the loader ----------------------------------------------------------------


@dataclass
class LoadedProgram:
    """A linked multi-file program plus its resolution record."""

    program: ast.Program
    resolution: Resolution
    module_files: list[ast.ModuleFile] = field(default_factory=list)


def _as_items(sources) -> list[tuple[str, str]]:
    if isinstance(sources, dict):
        return list(sources.items())
    return [(str(path), text) for path, text in sources]


def load_modules(sources, cache: ScopeArtifactCache | None = None) -> LoadedProgram:
    """Parse, resolve and link a multi-file program.

    ``sources`` is ``{path: text}`` or ``[(path, text), ...]`` in any
    order -- files are canonicalised by (module, path) before site ids
    are assigned, so the resulting program is byte-identical however
    the files were discovered.  ``cache`` (optional) persists per-file
    artifacts keyed by content digest.
    """
    items = _as_items(sources)
    scanned = []
    for path, text in items:
        tokens = tokenize(text)
        scanned.append((scan_module_name(tokens), path, text, tokens))
    scanned.sort(key=lambda entry: (entry[0], entry[1]))

    module_files: list[ast.ModuleFile] = []
    artifacts: list[FileArtifact] = []
    site_ranges: dict = {}
    site_base = 0
    cache_hits = 0
    cache_misses = 0
    evictions_before = cache.evictions if cache is not None else 0
    for module, path, text, tokens in scanned:
        mf = parse_module(text, path=path, site_base=site_base, tokens=tokens)
        site_ranges[path] = (site_base, mf.next_site)
        site_base = mf.next_site
        module_files.append(mf)
        digest = source_digest(text)
        artifact = cache.get(digest) if cache is not None else None
        if artifact is not None and artifact.module == mf.module:
            cache_hits += 1
            artifact.path = path  # digests key content, paths may move
        else:
            if cache is not None:
                cache_misses += 1
            artifact = build_artifact(mf, digest)
            if cache is not None:
                cache.put(artifact)
        artifacts.append(artifact)

    resolution = resolve_files(artifacts)
    resolution.stats.artifact_cache_hits = cache_hits
    resolution.stats.artifact_cache_misses = cache_misses
    if cache is not None:
        resolution.stats.artifact_cache_evictions = (
            cache.evictions - evictions_before
        )
    resolution.site_ranges = site_ranges
    program = link_modules(module_files, resolution)
    return LoadedProgram(
        program=program, resolution=resolution, module_files=module_files
    )
