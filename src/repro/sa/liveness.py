"""Backward liveness and dead-store elimination for scalar assignments.

The abstract value is the set of variable names that may be read later.
:func:`eliminate_dead_stores` removes only *pure scalar* stores: the
target is not an object variable (those feed the alias graph) and the
right-hand side is built solely from literals, variable reads and
arithmetic -- no calls (call records allocate cid/rid), no ``input()``
(occurrence numbering feeds constraint symbols), no allocation, no heap
or thrown-flag reads.  A store passing that filter writes a value no
branch condition, return value, call argument, event or thrown-flag read
ever observes, so the CFET's symbolic environments and every path
constraint are unchanged -- the closure input shrinks with byte-identical
reports.

``__thrown`` is pinned live at every exit: the CFET builder reads it off
the leaf environment to build return-correlation equations even though no
statement mentions it.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.cfg import build_cfg
from repro.lang.transform import THROWN_FLAG
from repro.lang.types import ObjectInfo
from repro.sa.framework import DataflowProblem, solve

_PURE_LEAVES = (ast.IntLit, ast.BoolLit, ast.VarRef)


def expr_uses(expr, out: set | None = None) -> set:
    """Variable names read by ``expr`` (transitively)."""
    if out is None:
        out = set()
    if isinstance(expr, ast.VarRef):
        out.add(expr.name)
    elif isinstance(expr, ast.FieldLoad):
        out.add(expr.base)
    elif isinstance(expr, ast.Binary):
        expr_uses(expr.left, out)
        expr_uses(expr.right, out)
    elif isinstance(expr, ast.Unary):
        expr_uses(expr.operand, out)
    elif isinstance(expr, ast.Call):
        for arg in expr.args:
            expr_uses(arg, out)
    return out


def stmt_uses(stmt) -> set:
    """Variable names read by one core statement (ignoring its writes)."""
    if isinstance(stmt, ast.Assign):
        return expr_uses(stmt.value)
    if isinstance(stmt, ast.FieldStore):
        return {stmt.base, stmt.value}
    if isinstance(stmt, ast.Event):
        uses = {stmt.base}
        for arg in stmt.args:
            expr_uses(arg, uses)
        return uses
    if isinstance(stmt, ast.ExprStmt):
        return expr_uses(stmt.call)
    return set()


def is_pure_scalar_expr(expr) -> bool:
    """True when ``expr`` reads no heap/input/call state and allocates
    nothing -- removable without touching constraints or the alias graph."""
    if isinstance(expr, _PURE_LEAVES):
        return True
    if isinstance(expr, ast.Binary):
        return is_pure_scalar_expr(expr.left) and is_pure_scalar_expr(
            expr.right
        )
    if isinstance(expr, ast.Unary):
        return is_pure_scalar_expr(expr.operand)
    return False


class Liveness(DataflowProblem):
    """May-liveness of variable names, backward over the CFG."""

    direction = "backward"

    def boundary(self, cfg):
        return frozenset((THROWN_FLAG,))

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, block, live_out: frozenset) -> frozenset:
        live = set(live_out)
        if block.branch_cond is not None:
            expr_uses(block.branch_cond, live)
        if block.return_value is not None:
            expr_uses(block.return_value, live)
        for stmt in reversed(block.statements):
            if isinstance(stmt, ast.Assign):
                live.discard(stmt.target)
                expr_uses(stmt.value, live)
            else:
                live |= stmt_uses(stmt)
        return frozenset(live)


def _dead_stores(fn: ast.Function, scalar_ok) -> list:
    """Assign statements (by identity) provably dead in ``fn``."""
    cfg = build_cfg(fn)
    solution = solve(cfg, Liveness())
    dead: list = []
    for block in cfg.blocks.values():
        live_out = solution.block_out.get(block.block_id)
        if live_out is None:
            continue  # unreachable backwards: no exit below, keep stores
        live = set(live_out)
        if block.branch_cond is not None:
            expr_uses(block.branch_cond, live)
        if block.return_value is not None:
            expr_uses(block.return_value, live)
        for stmt in reversed(block.statements):
            if isinstance(stmt, ast.Assign):
                if (
                    stmt.target not in live
                    and scalar_ok(stmt.target)
                    and is_pure_scalar_expr(stmt.value)
                ):
                    dead.append(stmt)
                    continue  # removed: its reads don't count as uses
                live.discard(stmt.target)
                expr_uses(stmt.value, live)
            else:
                live |= stmt_uses(stmt)
    return dead


def eliminate_dead_stores(program: ast.Program, info: ObjectInfo) -> int:
    """Remove dead pure-scalar stores everywhere; returns the count.

    Iterates per function until no store is removable, so chains
    (``a = b; b`` otherwise unread) cascade.
    """
    total = 0
    for name, fn in program.functions.items():
        object_vars = info.object_vars.get(name, set())

        def scalar_ok(var: str) -> bool:
            return var != THROWN_FLAG and var not in object_vars

        while True:
            dead = _dead_stores(fn, scalar_ok)
            if not dead:
                break
            dead_ids = {id(stmt) for stmt in dead}
            _filter_body(fn.body, dead_ids)
            total += len(dead)
    return total


def _filter_body(body: list, dead_ids: set) -> None:
    body[:] = [stmt for stmt in body if id(stmt) not in dead_ids]
    for stmt in body:
        if isinstance(stmt, ast.If):
            _filter_body(stmt.then_body, dead_ids)
            _filter_body(stmt.else_body, dead_ids)
