"""Call graph construction and SCC condensation.

The paper (§2.1) clones callee graphs bottom-up over a pre-computed call
graph, collapsing strongly connected components (recursion) and treating
them context-insensitively.  This module computes that structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.lang import ast


@dataclass
class CallGraph:
    """Direct call edges plus the SCC condensation used for cloning."""

    edges: dict[str, set[str]] = field(default_factory=dict)
    # scc_of[f] is a frozenset of mutually recursive functions containing f.
    scc_of: dict[str, frozenset] = field(default_factory=dict)
    # SCCs in reverse topological order (callees before callers).
    scc_order: list[frozenset] = field(default_factory=list)

    def callees(self, func: str) -> set[str]:
        return self.edges.get(func, set())

    def is_recursive_edge(self, caller: str, callee: str) -> bool:
        """True when the call stays inside one SCC (handled without cloning)."""
        return self.scc_of[caller] == self.scc_of[callee]

    def bottom_up_functions(self) -> list[str]:
        """All functions, callees before callers."""
        out: list[str] = []
        for scc in self.scc_order:
            out.extend(sorted(scc))
        return out


def call_sites(fn: ast.Function):
    """Yield every :class:`repro.lang.ast.Call` in a function body."""
    for stmt in ast.walk_statements(fn.body):
        for expr in ast.walk_expressions(stmt):
            yield from _calls_in(expr)


def _calls_in(expr):
    if isinstance(expr, ast.Call):
        yield expr
        for arg in expr.args:
            yield from _calls_in(arg)
    elif isinstance(expr, ast.Binary):
        yield from _calls_in(expr.left)
        yield from _calls_in(expr.right)
    elif isinstance(expr, ast.Unary):
        yield from _calls_in(expr.operand)


def build_call_graph(program: ast.Program) -> CallGraph:
    """Build the call graph; unknown callees are ignored (extern calls)."""
    graph = nx.DiGraph()
    edges: dict[str, set[str]] = {}
    for name, fn in program.functions.items():
        graph.add_node(name)
        targets = edges.setdefault(name, set())
        for call in call_sites(fn):
            if call.func in program.functions:
                targets.add(call.func)
                graph.add_edge(name, call.func)

    condensation = nx.condensation(graph)
    scc_of: dict[str, frozenset] = {}
    members: dict[int, frozenset] = {}
    for node_id, data in condensation.nodes(data=True):
        scc = frozenset(data["members"])
        members[node_id] = scc
        for func in scc:
            scc_of[func] = scc
    # Topological order of the condensation is callers-first; reverse it.
    order = [members[n] for n in nx.topological_sort(condensation)]
    order.reverse()
    return CallGraph(edges=edges, scc_of=scc_of, scc_order=order)
