"""Recursive-descent parser for the mini-language.

Grammar (lowered later by :mod:`repro.lang.transform`)::

    file      := module? import* function*
    module    := "module" IDENT ";"
    import    := "import" IDENT ("." IDENT)? ";"
    program   := function*
    function  := "func" IDENT "(" params? ")" block
    block     := "{" stmt* "}"
    stmt      := "var" IDENT ("=" expr)? ";"
               | IDENT "=" expr ";"
               | IDENT "." IDENT "=" IDENT ";"         -- field store
               | IDENT "." IDENT "(" args? ")" ";"     -- event (method call)
               | IDENT "(" args? ")" ";"               -- call statement
               | "if" "(" expr ")" block ("else" (block | if-stmt))?
               | "while" "(" expr ")" block
               | "return" expr? ";"
               | "throw" IDENT ";"
               | "try" block "catch" "(" IDENT ")" block
    expr      := disjunction of comparisons over arithmetic; atoms are
                 INT, "true", "false", "null", IDENT, IDENT "." IDENT,
                 "new" IDENT "(" ")", IDENT "(" args ")", "input" "(" ")"

Qualified names: ``alias.sym(...)`` where ``alias`` names an imported
module parses as a *qualified call* ``Call("alias.sym", ...)`` -- in
both statement and expression position -- instead of an FSM event or a
field load.  The disambiguation is purely syntactic (the alias set of
the file's ``import`` headers); actual name binding is the scope-graph
resolver's job (:mod:`repro.sa.scopes`).  Files without a ``module``
header live in the root namespace with unqualified symbols, which keeps
single-file programs byte-identical under resolution.
"""

from __future__ import annotations

from repro.lang import ast
from repro.lang.lexer import Token, tokenize


class ParseError(Exception):
    """Raised on a syntax error; carries the offending line."""


class _Parser:
    def __init__(self, tokens: list[Token], site_base: int = 0):
        self.tokens = tokens
        self.pos = 0
        self.next_site = site_base  # allocation-site / input-site counter
        #: Module names imported by the current file; ``alias.sym(...)``
        #: with ``alias`` in this set parses as a qualified call.
        self.module_aliases: set[str] = set()

    # -- token helpers ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.current
        if tok.kind != kind or (text is not None and tok.text != text):
            wanted = text or kind
            raise ParseError(
                f"line {tok.line}: expected {wanted!r}, found {tok.text!r}"
            )
        return self.advance()

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.current
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def fresh_site(self) -> int:
        site = self.next_site
        self.next_site += 1
        return site

    # -- declarations ------------------------------------------------------

    def parse_module_file(self, path: str = "") -> ast.ModuleFile:
        """Parse one file: optional module header, imports, functions."""
        module = ""
        if self.current.kind == "keyword" and self.current.text == "module":
            self.advance()
            module = self.expect("ident").text
            self.expect(";")
        imports: list[ast.ImportDecl] = []
        while self.current.kind == "keyword" and self.current.text == "import":
            line = self.advance().line
            target = self.expect("ident").text
            symbol = None
            if self.accept("."):
                symbol = self.expect("ident").text
            self.expect(";")
            imports.append(ast.ImportDecl(target, symbol, line))
            self.module_aliases.add(target)
        out = ast.ModuleFile(module=module, path=path, imports=imports)
        while self.current.kind != "eof":
            fn = self.parse_function()
            if fn.name in out.functions:
                raise ParseError(f"line {fn.line}: duplicate function {fn.name!r}")
            out.functions[fn.name] = fn
        out.next_site = self.next_site
        return out

    def parse_program(self) -> ast.Program:
        program = ast.Program()
        while self.current.kind != "eof":
            fn = self.parse_function()
            if fn.name in program.functions:
                raise ParseError(f"line {fn.line}: duplicate function {fn.name!r}")
            program.functions[fn.name] = fn
        return program

    def parse_function(self) -> ast.Function:
        start = self.expect("keyword", "func")
        name = self.expect("ident").text
        self.expect("(")
        params: list[str] = []
        if not self.accept(")"):
            params.append(self.expect("ident").text)
            while self.accept(","):
                params.append(self.expect("ident").text)
            self.expect(")")
        body = self.parse_block()
        return ast.Function(name, params, body, line=start.line)

    def parse_block(self) -> list:
        self.expect("{")
        body: list = []
        while not self.accept("}"):
            body.append(self.parse_statement())
        return body

    # -- statements --------------------------------------------------------

    def parse_statement(self):
        tok = self.current
        if tok.kind == "keyword":
            handler = {
                "var": self._parse_var,
                "if": self._parse_if,
                "while": self._parse_while,
                "return": self._parse_return,
                "throw": self._parse_throw,
                "try": self._parse_try,
            }.get(tok.text)
            if handler is None:
                raise ParseError(
                    f"line {tok.line}: unexpected keyword {tok.text!r}"
                )
            return handler()
        if tok.kind == "ident":
            return self._parse_ident_statement()
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")

    def _parse_var(self):
        line = self.advance().line  # "var"
        name = self.expect("ident").text
        value: object = ast.NullLit()
        if self.accept("="):
            value = self.parse_expression()
        self.expect(";")
        return ast.Assign(name, value, line=line, decl=True)

    def _parse_ident_statement(self):
        name_tok = self.advance()
        name, line = name_tok.text, name_tok.line
        if self.accept("."):
            member = self.expect("ident").text
            if self.accept("("):
                args = self._parse_args()
                self.expect(";")
                if name in self.module_aliases:
                    return ast.ExprStmt(
                        ast.Call(f"{name}.{member}", args, self.fresh_site()),
                        line=line,
                    )
                return ast.Event(name, member, args, line=line)
            self.expect("=")
            value = self.expect("ident").text
            self.expect(";")
            return ast.FieldStore(name, member, value, line=line)
        if self.accept("("):
            args = self._parse_args()
            self.expect(";")
            return ast.ExprStmt(
                ast.Call(name, args, self.fresh_site()), line=line
            )
        self.expect("=")
        value = self.parse_expression()
        self.expect(";")
        return ast.Assign(name, value, line=line)

    def _parse_args(self) -> tuple:
        args: list = []
        if self.accept(")"):
            return tuple(args)
        args.append(self.parse_expression())
        while self.accept(","):
            args.append(self.parse_expression())
        self.expect(")")
        return tuple(args)

    def _parse_if(self):
        line = self.advance().line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        then_body = self.parse_block()
        else_body: list = []
        if self.accept("keyword", "else"):
            if self.current.kind == "keyword" and self.current.text == "if":
                else_body = [self._parse_if()]
            else:
                else_body = self.parse_block()
        return ast.If(cond, then_body, else_body, line=line)

    def _parse_while(self):
        line = self.advance().line
        self.expect("(")
        cond = self.parse_expression()
        self.expect(")")
        body = self.parse_block()
        return ast.While(cond, body, line=line)

    def _parse_return(self):
        line = self.advance().line
        value = None
        if not self.accept(";"):
            value = self.parse_expression()
            self.expect(";")
        return ast.Return(value, line=line)

    def _parse_throw(self):
        line = self.advance().line
        var = self.expect("ident").text
        self.expect(";")
        return ast.Throw(var, line=line)

    def _parse_try(self):
        line = self.advance().line
        try_body = self.parse_block()
        self.expect("keyword", "catch")
        self.expect("(")
        catch_var = self.expect("ident").text
        self.expect(")")
        catch_body = self.parse_block()
        return ast.TryCatch(try_body, catch_var, catch_body, line=line)

    # -- expressions -------------------------------------------------------
    # precedence: || < && < comparison < additive < multiplicative < unary

    def parse_expression(self):
        return self._parse_or()

    def _parse_or(self):
        left = self._parse_and()
        while self.accept("||"):
            left = ast.Binary("||", left, self._parse_and())
        return left

    def _parse_and(self):
        left = self._parse_comparison()
        while self.accept("&&"):
            left = ast.Binary("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self):
        left = self._parse_additive()
        for op in ("==", "!=", "<=", ">=", "<", ">"):
            if self.accept(op):
                return ast.Binary(op, left, self._parse_additive())
        return left

    def _parse_additive(self):
        left = self._parse_multiplicative()
        while True:
            if self.accept("+"):
                left = ast.Binary("+", left, self._parse_multiplicative())
            elif self.accept("-"):
                left = ast.Binary("-", left, self._parse_multiplicative())
            else:
                return left

    def _parse_multiplicative(self):
        left = self._parse_unary()
        while self.accept("*"):
            left = ast.Binary("*", left, self._parse_unary())
        return left

    def _parse_unary(self):
        if self.accept("-"):
            return ast.Unary("-", self._parse_unary())
        if self.accept("!"):
            return ast.Unary("!", self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self):
        tok = self.current
        if tok.kind == "int":
            self.advance()
            return ast.IntLit(int(tok.text))
        if tok.kind == "keyword":
            if tok.text == "true":
                self.advance()
                return ast.BoolLit(True)
            if tok.text == "false":
                self.advance()
                return ast.BoolLit(False)
            if tok.text == "null":
                self.advance()
                return ast.NullLit()
            if tok.text == "new":
                self.advance()
                type_name = self.expect("ident").text
                self.expect("(")
                self._parse_args()  # constructor args are ignored semantically
                return ast.New(type_name, self.fresh_site())
            if tok.text == "input":
                self.advance()
                self.expect("(")
                self.expect(")")
                return ast.Input(self.fresh_site())
            raise ParseError(f"line {tok.line}: unexpected {tok.text!r}")
        if tok.kind == "ident":
            self.advance()
            if self.accept("("):
                return ast.Call(tok.text, self._parse_args(), self.fresh_site())
            if self.current.kind == "." and self.tokens[self.pos + 1].kind == "ident":
                if (
                    tok.text in self.module_aliases
                    and self.tokens[self.pos + 2].kind == "("
                ):
                    # qualified call: alias.sym(args)
                    self.advance()
                    member = self.expect("ident").text
                    self.expect("(")
                    return ast.Call(
                        f"{tok.text}.{member}",
                        self._parse_args(),
                        self.fresh_site(),
                    )
                # field load: base.field (only in expression position)
                self.advance()
                fieldname = self.expect("ident").text
                return ast.FieldLoad(tok.text, fieldname)
            return ast.VarRef(tok.text)
        if self.accept("("):
            inner = self.parse_expression()
            self.expect(")")
            return inner
        raise ParseError(f"line {tok.line}: unexpected token {tok.text!r}")


def parse_program(source: str) -> ast.Program:
    """Parse source text into a :class:`repro.lang.ast.Program`."""
    return _Parser(tokenize(source)).parse_program()


def parse_module(
    source: str,
    path: str = "",
    site_base: int = 0,
    tokens: list[Token] | None = None,
) -> ast.ModuleFile:
    """Parse one file of a (possibly multi-file) program.

    ``site_base`` offsets the allocation/call/input site counter so the
    multi-file loader can keep site ids unique program-wide; ``tokens``
    reuses an existing token stream (the loader tokenizes once to read
    the module header before parsing in canonical order).
    """
    if tokens is None:
        tokens = tokenize(source)
    return _Parser(tokens, site_base=site_base).parse_module_file(path)


def scan_module_name(tokens: list[Token]) -> str:
    """The declared module name of a token stream ("" when header-less)."""
    if (
        len(tokens) >= 2
        and tokens[0].kind == "keyword"
        and tokens[0].text == "module"
        and tokens[1].kind == "ident"
    ):
        return tokens[1].text
    return ""
