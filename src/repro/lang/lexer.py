"""Tokenizer for the mini-language."""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "func",
    "module",
    "import",
    "var",
    "if",
    "else",
    "while",
    "return",
    "throw",
    "try",
    "catch",
    "new",
    "null",
    "true",
    "false",
    "input",
}

# Multi-character operators must be matched before their prefixes.
OPERATORS = ["==", "!=", "<=", ">=", "&&", "||", "<", ">", "=", "+", "-", "*",
              "!", "(", ")", "{", "}", ";", ",", "."]


class LexError(Exception):
    """Raised on an unrecognised character."""


@dataclass(frozen=True, slots=True)
class Token:
    kind: str  # "ident", "int", "keyword", or the operator text itself
    text: str
    line: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text}@{self.line}"


def tokenize(source: str) -> list[Token]:
    """Split source text into tokens; comments run from ``//`` to newline."""
    tokens: list[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("int", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(op, op, line))
                i += len(op)
                break
        else:
            raise LexError(f"line {line}: unexpected character {ch!r}")
    tokens.append(Token("eof", "", line))
    return tokens
