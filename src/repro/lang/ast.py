"""AST node definitions for the mini-language.

Surface statements include ``while``, ``try``/``catch`` and ``throw``;
the transformation passes in :mod:`repro.lang.transform` remove them so
that downstream consumers (CFG, CFET, graph generators) only ever see the
*core* statements: assignments, calls, events, ``if``/``else`` and
``return``.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- expressions -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IntLit:
    value: int


@dataclass(frozen=True, slots=True)
class BoolLit:
    value: bool


@dataclass(frozen=True, slots=True)
class NullLit:
    pass


@dataclass(frozen=True, slots=True)
class VarRef:
    name: str


@dataclass(frozen=True, slots=True)
class FieldLoad:
    base: str
    fieldname: str


@dataclass(frozen=True, slots=True)
class New:
    """Object allocation ``new TypeName()``; the allocation site id is
    assigned by the parser and is unique program-wide."""

    type_name: str
    site: int


@dataclass(frozen=True, slots=True)
class Call:
    """Direct function call ``f(a, b)``.  Arguments are variable names or
    literal expressions.  ``site`` is a unique call-site id assigned by the
    parser (used to wire exceptional value-return edges)."""

    func: str
    args: tuple
    site: int = -1


@dataclass(frozen=True, slots=True)
class Input:
    """``input()`` -- an unconstrained symbolic integer (program input)."""

    site: int


@dataclass(frozen=True, slots=True)
class ThrownFlagOf:
    """Core expression produced by exception lowering: the value of the
    callee's ``__thrown`` register after the call at ``call_site`` (1 when
    an exception escaped, 0 otherwise).  The CFET builder correlates it
    with the callee's per-leaf symbolic ``__thrown`` value via a return
    equation, so caller-side exception branches are path-correlated with
    the callee's actual throws."""

    callee: str
    call_site: int


@dataclass(frozen=True, slots=True)
class Binary:
    op: str  # + - * < <= > >= == != && ||
    left: object
    right: object


@dataclass(frozen=True, slots=True)
class Unary:
    op: str  # - !
    operand: object


Expr = (IntLit, BoolLit, NullLit, VarRef, FieldLoad, New, Call, Input, Binary, Unary)


# -- statements ------------------------------------------------------------


@dataclass(slots=True)
class Assign:
    """``x = <expr>`` or ``var x = <expr>`` (``decl`` marks the latter)."""

    target: str
    value: object
    line: int = 0
    decl: bool = False


@dataclass(slots=True)
class FieldStore:
    """``x.f = y``."""

    base: str
    fieldname: str
    value: str
    line: int = 0


@dataclass(slots=True)
class Event:
    """``x.m(a, b)`` -- a method call on an object, i.e. an FSM event."""

    base: str
    method: str
    args: tuple = ()
    line: int = 0


@dataclass(slots=True)
class ExprStmt:
    """A bare call statement ``f(a, b);``."""

    call: Call
    line: int = 0


@dataclass(slots=True)
class ExcLink:
    """Core statement produced by exception lowering: ``target`` receives
    the exception object thrown out of the callee invoked at ``call_site``.
    The graph generators realise it as an exceptional value-return edge
    from the callee clone's ``__exc`` variable."""

    target: str
    callee: str
    call_site: int
    line: int = 0


@dataclass(slots=True)
class If:
    cond: object
    then_body: list
    else_body: list
    line: int = 0


@dataclass(slots=True)
class While:
    cond: object
    body: list
    line: int = 0


@dataclass(slots=True)
class Return:
    value: object | None = None
    line: int = 0


@dataclass(slots=True)
class Throw:
    var: str
    line: int = 0


@dataclass(slots=True)
class TryCatch:
    try_body: list
    catch_var: str
    catch_body: list
    line: int = 0


# -- declarations ----------------------------------------------------------


@dataclass(slots=True)
class Function:
    name: str
    params: list[str]
    body: list
    line: int = 0

    def __repr__(self) -> str:
        return f"Function({self.name}/{len(self.params)})"


@dataclass(frozen=True, slots=True)
class ImportDecl:
    """``import mod;`` (symbol None) or ``import mod.sym;``."""

    module: str
    symbol: str | None
    line: int


@dataclass(slots=True)
class ModuleFile:
    """One parsed source file of a multi-file program.

    ``module`` is the declared module name (``module m;``) or ``""`` for
    a header-less file, whose symbols stay unqualified -- exactly the
    single-file namespace, so legacy programs resolve byte-identically.
    ``next_site`` is the first unused allocation/call/input site id after
    this file (the loader threads it through files in canonical module
    order so site ids stay unique and deterministic program-wide).
    """

    module: str
    path: str
    imports: list[ImportDecl] = field(default_factory=list)
    functions: dict[str, Function] = field(default_factory=dict)
    next_site: int = 0


@dataclass(slots=True)
class Program:
    functions: dict[str, Function] = field(default_factory=dict)

    def function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"no function named {name!r}") from None

    @property
    def entry(self) -> Function:
        return self.function("main")


def walk_statements(body: list):
    """Yield every statement in a body, recursing into nested blocks."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, TryCatch):
            yield from walk_statements(stmt.try_body)
            yield from walk_statements(stmt.catch_body)


def walk_expressions(stmt):
    """Yield the expressions directly referenced by one statement."""
    if isinstance(stmt, Assign):
        yield stmt.value
    elif isinstance(stmt, ExprStmt):
        yield stmt.call
    elif isinstance(stmt, (If, While)):
        yield stmt.cond
    elif isinstance(stmt, Return) and stmt.value is not None:
        yield stmt.value
