"""Basic-block control-flow graph for core (lowered) function bodies.

The CFET (:mod:`repro.cfet`) is built directly from the structured AST; this
CFG exists for the traditional baseline, for tests, and for program metrics
(block/edge counts).  It only accepts *core* statements -- run
:func:`repro.lang.transform.unroll_loops` and
:func:`repro.lang.transform.lower_exceptions` first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast


@dataclass
class BasicBlock:
    """A straight-line sequence of core statements."""

    block_id: int
    statements: list = field(default_factory=list)
    # Terminator: exactly one of the following shapes.
    branch_cond: object | None = None  # expression, when a conditional branch
    true_target: int | None = None
    false_target: int | None = None
    goto_target: int | None = None
    return_value: object | None = None
    is_return: bool = False

    @property
    def successors(self) -> tuple[int, ...]:
        """Successor block ids; never contains None.

        A conditional block under construction (or a hand-built one) may
        have only one arm wired up; filtering here keeps every traversal
        -- edge_count, the dataflow solvers -- total instead of crashing
        on a half-initialised terminator.
        """
        if self.branch_cond is not None:
            return tuple(
                t
                for t in (self.true_target, self.false_target)
                if t is not None
            )
        if self.goto_target is not None:
            return (self.goto_target,)
        return ()


@dataclass
class ControlFlowGraph:
    function: str
    blocks: dict[int, BasicBlock] = field(default_factory=dict)
    entry: int = 0

    def new_block(self) -> BasicBlock:
        block = BasicBlock(len(self.blocks))
        self.blocks[block.block_id] = block
        return block

    @property
    def exit_blocks(self) -> list[BasicBlock]:
        return [b for b in self.blocks.values() if b.is_return]

    def edge_count(self) -> int:
        return sum(len(b.successors) for b in self.blocks.values())


def build_cfg(fn: ast.Function) -> ControlFlowGraph:
    """Build the basic-block CFG of a core-form function."""
    cfg = ControlFlowGraph(fn.name)
    entry = cfg.new_block()
    last = _build_body(cfg, entry, fn.body)
    if last is not None and not last.is_return:
        last.is_return = True  # implicit return at end of function
    return cfg


def _build_body(cfg: ControlFlowGraph, block: BasicBlock, body: list):
    """Append statements of ``body`` starting at ``block``.

    Returns the open block control falls out of, or None if all paths
    returned.
    """
    for idx, stmt in enumerate(body):
        if isinstance(stmt, ast.Return):
            block.is_return = True
            block.return_value = stmt.value
            return None
        if isinstance(stmt, ast.If):
            then_block = cfg.new_block()
            else_block = cfg.new_block()
            block.branch_cond = stmt.cond
            block.true_target = then_block.block_id
            block.false_target = else_block.block_id
            then_end = _build_body(cfg, then_block, stmt.then_body)
            else_end = _build_body(cfg, else_block, stmt.else_body)
            rest = body[idx + 1 :]
            if then_end is None and else_end is None:
                return None
            join = cfg.new_block()
            for end in (then_end, else_end):
                if end is not None and not end.is_return:
                    end.goto_target = join.block_id
            return _build_body(cfg, join, rest)
        if isinstance(stmt, (ast.While, ast.Throw, ast.TryCatch)):
            raise ValueError(
                f"{type(stmt).__name__} is not a core statement; run the"
                " transform passes first"
            )
        block.statements.append(stmt)
    return block
