"""Lightweight reference-type inference.

The alias graph only needs vertices for *object* (reference-typed)
variables; integer/boolean variables live in path constraints instead.
This pass computes, per function, the set of object variables, the set of
object-returning functions, and the allocation type observable for each
allocation site.  It is a flow-insensitive fixpoint over the whole program.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.transform import EXC_REGISTER


@dataclass
class ObjectInfo:
    """Result of reference-type inference."""

    object_vars: dict[str, set[str]] = field(default_factory=dict)
    returns_object: set[str] = field(default_factory=set)
    # allocation site id -> type name
    site_types: dict[int, str] = field(default_factory=dict)

    def is_object_var(self, func: str, var: str) -> bool:
        return var in self.object_vars.get(func, set())


def infer_object_vars(program: ast.Program) -> ObjectInfo:
    """Fixpoint inference of which variables hold references."""
    info = ObjectInfo()
    for name in program.functions:
        info.object_vars[name] = set()

    changed = True
    while changed:
        changed = False
        for name, fn in program.functions.items():
            obj = info.object_vars[name]
            before = len(obj), len(info.returns_object)
            for stmt in ast.walk_statements(fn.body):
                _mark_statement(stmt, name, fn, program, info)
            if (len(obj), len(info.returns_object)) != before:
                changed = True
    return info


def _mark_statement(stmt, func: str, fn: ast.Function,
                    program: ast.Program, info: ObjectInfo) -> None:
    obj = info.object_vars[func]
    if isinstance(stmt, ast.Assign):
        value = stmt.value
        if isinstance(value, ast.New):
            obj.add(stmt.target)
            info.site_types[value.site] = value.type_name
        elif isinstance(value, (ast.NullLit, ast.FieldLoad)):
            obj.add(stmt.target)
        elif isinstance(value, ast.VarRef) and value.name in obj:
            obj.add(stmt.target)
        elif isinstance(value, ast.Call):
            if value.func in info.returns_object:
                obj.add(stmt.target)
            _mark_call(value, func, program, info)
    elif isinstance(stmt, ast.FieldStore):
        obj.add(stmt.base)
        obj.add(stmt.value)
    elif isinstance(stmt, ast.Event):
        obj.add(stmt.base)
    elif isinstance(stmt, ast.ExcLink):
        obj.add(stmt.target)
    elif isinstance(stmt, ast.ExprStmt):
        _mark_call(stmt.call, func, program, info)
    elif isinstance(stmt, ast.Return):
        value = stmt.value
        if isinstance(value, (ast.New, ast.NullLit, ast.FieldLoad)):
            info.returns_object.add(func)
            if isinstance(value, ast.New):
                info.site_types[value.site] = value.type_name
        elif isinstance(value, ast.VarRef) and value.name in obj:
            info.returns_object.add(func)
        elif isinstance(value, ast.Call) and value.func in info.returns_object:
            info.returns_object.add(func)
    # Every function's exception register is an object variable.
    if EXC_REGISTER in _assigned_names(stmt):
        obj.add(EXC_REGISTER)


def _assigned_names(stmt) -> tuple:
    if isinstance(stmt, ast.Assign):
        return (stmt.target,)
    if isinstance(stmt, ast.ExcLink):
        return (stmt.target,)
    return ()


def _mark_call(call: ast.Call, caller: str, program: ast.Program,
               info: ObjectInfo) -> None:
    """Propagate object-ness through parameter passing (both directions)."""
    callee = program.functions.get(call.func)
    if callee is None:
        return
    caller_obj = info.object_vars[caller]
    callee_obj = info.object_vars[call.func]
    for formal, actual in zip(callee.params, call.args):
        if isinstance(actual, ast.VarRef):
            if actual.name in caller_obj:
                callee_obj.add(formal)
            elif formal in callee_obj:
                caller_obj.add(actual.name)
        elif isinstance(actual, (ast.New, ast.NullLit)):
            callee_obj.add(formal)
            if isinstance(actual, ast.New):
                info.site_types[actual.site] = actual.type_name
