"""AST transformation passes.

Two passes turn the surface language into core form:

* :func:`unroll_loops` -- statically unrolls every ``while`` loop ``k``
  times (the paper, §3.1, bounds loop iterations to keep the CFET finite);
* :func:`lower_exceptions` -- removes ``throw``/``try``/``catch`` using a
  flag-based lowering.  Every throw becomes an FSM ``throw`` event plus
  assignments to a handler frame's flag/exception registers; statements
  after a possibly-throwing statement are guarded by ``flag == 0`` checks
  that the path-sensitive analyses resolve precisely.  A call to a function
  whose exceptions escape gets an explicit exceptional branch guarded by an
  unconstrained input (exceptions may or may not occur at run time), with an
  :class:`repro.lang.ast.ExcLink` binding the caller-side exception object
  to the callee's ``__exc`` register.

Run order: parse, then :func:`unroll_loops`, then :func:`lower_exceptions`.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.lang import ast

DEFAULT_UNROLL = 2

THROWN_FLAG = "__thrown"
EXC_REGISTER = "__exc"


# -- loop unrolling ---------------------------------------------------------


def unroll_loops(program: ast.Program, k: int = DEFAULT_UNROLL) -> ast.Program:
    """Replace each ``while (c) B`` with ``k`` nested ``if (c) { B ... }``.

    Iterations beyond the bound are dropped, turning every function body
    into cycle-free code (a requirement for interval path encoding).
    The transformation is applied in place and the program is returned.
    """
    if k < 1:
        raise ValueError("unroll factor must be >= 1")
    for fn in program.functions.values():
        fn.body = _unroll_body(fn.body, k)
    return program


def _unroll_body(body: list, k: int) -> list:
    out: list = []
    for stmt in body:
        if isinstance(stmt, ast.While):
            out.append(_unroll_while(stmt, k))
        elif isinstance(stmt, ast.If):
            stmt.then_body = _unroll_body(stmt.then_body, k)
            stmt.else_body = _unroll_body(stmt.else_body, k)
            out.append(stmt)
        elif isinstance(stmt, ast.TryCatch):
            stmt.try_body = _unroll_body(stmt.try_body, k)
            stmt.catch_body = _unroll_body(stmt.catch_body, k)
            out.append(stmt)
        else:
            out.append(stmt)
    return out


def _unroll_while(loop: ast.While, k: int) -> ast.If:
    body = _unroll_body(loop.body, k)
    unrolled: list = []
    for _ in range(k):
        iteration = copy.deepcopy(body)
        unrolled = [ast.If(copy.deepcopy(loop.cond), iteration + unrolled, [],
                           line=loop.line)]
    return unrolled[0]


# -- exception lowering -----------------------------------------------------


@dataclass
class _Frame:
    """A handler frame: either a ``try`` region or the function itself."""

    flag: str  # int variable, 0 = no exception pending, 1 = pending
    exc: str  # object variable holding the pending exception
    is_function: bool


class _Lowerer:
    def __init__(self, program: ast.Program, may_throw: set[str]):
        self.program = program
        self.may_throw = may_throw
        self.counter = 0

    def fresh(self, prefix: str) -> str:
        self.counter += 1
        return f"__{prefix}_{self.counter}"

    def lower_function(self, fn: ast.Function) -> None:
        frame = _Frame(THROWN_FLAG, EXC_REGISTER, is_function=True)
        body, activated = self.lower_body(fn.body, [frame])
        if fn.name in self.may_throw or activated:
            prologue = [
                ast.Assign(THROWN_FLAG, ast.IntLit(0), line=fn.line),
                ast.Assign(EXC_REGISTER, ast.NullLit(), line=fn.line),
            ]
            body = prologue + body
        fn.body = body

    def lower_body(self, body: list, frames: list[_Frame]):
        """Lower a statement list; returns (stmts, activated_frames)."""
        out: list = []
        activated: set[int] = set()  # indices into `frames`
        for idx, stmt in enumerate(body):
            rest = body[idx + 1 :]
            if isinstance(stmt, ast.Throw):
                out.extend(self._lower_throw(stmt, frames))
                activated.add(len(frames) - 1)
                # Statements after an unconditional throw are dead code.
                return out, activated
            if isinstance(stmt, ast.TryCatch):
                stmts, act = self._lower_try(stmt, frames)
                out.extend(stmts)
                activated |= act
                out_rest, act_rest = self._guarded_rest(rest, frames, act)
                out.extend(out_rest)
                return out, activated | act_rest
            if isinstance(stmt, ast.If):
                then_body, act_t = self.lower_body(stmt.then_body, frames)
                else_body, act_e = self.lower_body(stmt.else_body, frames)
                out.append(ast.If(stmt.cond, then_body, else_body, stmt.line))
                act = act_t | act_e
                activated |= act
                out_rest, act_rest = self._guarded_rest(rest, frames, act)
                out.extend(out_rest)
                return out, activated | act_rest
            call = _direct_call(stmt)
            if call is not None and call.func in self.may_throw:
                out.append(stmt)
                branch, act = self._exceptional_branch(call, frames, stmt.line)
                out.extend(branch)
                activated |= act
                out_rest, act_rest = self._guarded_rest(rest, frames, act)
                out.extend(out_rest)
                return out, activated | act_rest
            out.append(stmt)
        return out, activated

    def _guarded_rest(self, rest: list, frames: list[_Frame], act: set[int]):
        """Lower the continuation, guarded by the flags just activated."""
        stmts, activated = self.lower_body(rest, frames)
        if not stmts:
            return [], activated
        for index in sorted(act):
            frame = frames[index]
            guard = ast.Binary("==", ast.VarRef(frame.flag), ast.IntLit(0))
            stmts = [ast.If(guard, stmts, [])]
        return stmts, activated

    def _lower_throw(self, stmt: ast.Throw, frames: list[_Frame]) -> list:
        frame = frames[-1]
        return [
            ast.Event(stmt.var, "throw", line=stmt.line),
            ast.Assign(frame.exc, ast.VarRef(stmt.var), line=stmt.line),
            ast.Assign(frame.flag, ast.IntLit(1), line=stmt.line),
        ]

    def _lower_try(self, stmt: ast.TryCatch, frames: list[_Frame]):
        frame = _Frame(self.fresh("caught"), self.fresh("excv"), False)
        try_body, act_try = self.lower_body(stmt.try_body, frames + [frame])
        catch_body, act_catch = self.lower_body(stmt.catch_body, frames)
        local_index = len(frames)
        dispatch_cond = ast.Binary("==", ast.VarRef(frame.flag), ast.IntLit(1))
        dispatch = ast.If(
            dispatch_cond,
            [
                ast.Assign(stmt.catch_var, ast.VarRef(frame.exc), stmt.line),
                ast.Event(stmt.catch_var, "catch", line=stmt.line),
            ]
            + catch_body,
            [],
            line=stmt.line,
        )
        stmts = [
            ast.Assign(frame.flag, ast.IntLit(0), line=stmt.line),
            ast.Assign(frame.exc, ast.NullLit(), line=stmt.line),
            *try_body,
            dispatch,
        ]
        activated = {i for i in act_try if i != local_index} | act_catch
        return stmts, activated

    def _exceptional_branch(self, call: ast.Call, frames: list[_Frame], line):
        """The ``if (maybe-thrown) { bind; mark }`` branch after a call."""
        frame_index = len(frames) - 1
        frame = frames[frame_index]
        probe = self.fresh("excp")
        cond = ast.Binary(">", ast.VarRef(probe), ast.IntLit(0))
        branch = ast.If(
            cond,
            [
                ast.ExcLink(frame.exc, call.func, call.site, line=line),
                ast.Assign(frame.flag, ast.IntLit(1), line=line),
            ],
            [],
            line=line,
        )
        probe_value = ast.ThrownFlagOf(call.func, call.site)
        return (
            [ast.Assign(probe, probe_value, line=line), branch],
            {frame_index},
        )


def lower_exceptions(program: ast.Program) -> ast.Program:
    """Remove throw/try/catch from every function (in place)."""
    may_throw = compute_may_throw(program)
    lowerer = _Lowerer(program, may_throw)
    for fn in program.functions.values():
        lowerer.lower_function(fn)
    return program


def compute_may_throw(program: ast.Program) -> set[str]:
    """Functions out of which an exception can escape to the caller.

    Fixpoint: a function may throw if it contains a ``throw`` outside any
    ``try``, or calls a may-throw function outside any ``try``.
    """
    may_throw: set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, fn in program.functions.items():
            if name in may_throw:
                continue
            if _escapes(fn.body, 0, may_throw, program):
                may_throw.add(name)
                changed = True
    return may_throw


def _escapes(body: list, try_depth: int, may_throw: set[str],
             program: ast.Program) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Throw) and try_depth == 0:
            return True
        if isinstance(stmt, ast.TryCatch):
            if _escapes(stmt.try_body, try_depth + 1, may_throw, program):
                return True
            if _escapes(stmt.catch_body, try_depth, may_throw, program):
                return True
        elif isinstance(stmt, ast.If):
            if _escapes(stmt.then_body, try_depth, may_throw, program):
                return True
            if _escapes(stmt.else_body, try_depth, may_throw, program):
                return True
        elif isinstance(stmt, ast.While):
            if _escapes(stmt.body, try_depth, may_throw, program):
                return True
        elif try_depth == 0:
            call = _direct_call(stmt)
            if call is not None and call.func in may_throw:
                return True
    return False


# -- call normalisation ------------------------------------------------------


def normalize_calls(program: ast.Program) -> ast.Program:
    """Hoist nested calls/allocations so they appear only as direct RHS.

    After this pass, every :class:`~repro.lang.ast.Call` is the sole value
    of an ``Assign`` or the payload of an ``ExprStmt``, and every ``New`` is
    the sole value of an ``Assign`` -- the forms the CFET builder and graph
    generators consume.  ``return f(x)`` becomes ``__t = f(x); return __t``.
    """
    normalizer = _Normalizer()
    for fn in program.functions.values():
        fn.body = normalizer.normalize_body(fn.body)
    return program


class _Normalizer:
    def __init__(self) -> None:
        self.counter = 0

    def fresh(self) -> str:
        self.counter += 1
        return f"__t_{self.counter}"

    def normalize_body(self, body: list) -> list:
        out: list = []
        for stmt in body:
            out.extend(self.normalize_statement(stmt))
        return out

    def normalize_statement(self, stmt) -> list:
        pre: list = []
        if isinstance(stmt, ast.Assign):
            if isinstance(stmt.value, (ast.Call, ast.New)):
                # Already direct; only normalise call arguments.
                if isinstance(stmt.value, ast.Call):
                    stmt.value = self._normalize_call(stmt.value, pre, stmt.line)
                return pre + [stmt]
            stmt.value = self._hoist(stmt.value, pre, stmt.line)
            return pre + [stmt]
        if isinstance(stmt, ast.ExprStmt):
            stmt.call = self._normalize_call(stmt.call, pre, stmt.line)
            return pre + [stmt]
        if isinstance(stmt, ast.Return):
            if isinstance(stmt.value, (ast.Call, ast.New)):
                tmp = self.fresh()
                pre.append(ast.Assign(tmp, stmt.value, line=stmt.line))
                stmt.value = ast.VarRef(tmp)
            elif stmt.value is not None:
                stmt.value = self._hoist(stmt.value, pre, stmt.line)
            return pre + [stmt]
        if isinstance(stmt, ast.If):
            stmt.cond = self._hoist(stmt.cond, pre, stmt.line)
            stmt.then_body = self.normalize_body(stmt.then_body)
            stmt.else_body = self.normalize_body(stmt.else_body)
            return pre + [stmt]
        if isinstance(stmt, ast.While):
            stmt.cond = self._hoist(stmt.cond, pre, stmt.line)
            stmt.body = self.normalize_body(stmt.body)
            return pre + [stmt]
        if isinstance(stmt, ast.TryCatch):
            stmt.try_body = self.normalize_body(stmt.try_body)
            stmt.catch_body = self.normalize_body(stmt.catch_body)
            return pre + [stmt]
        return [stmt]

    def _normalize_call(self, call: ast.Call, pre: list, line: int) -> ast.Call:
        args = tuple(self._hoist(a, pre, line) for a in call.args)
        if args == call.args:
            return call
        return ast.Call(call.func, args, call.site)

    def _hoist(self, expr, pre: list, line: int):
        """Pull nested Call/New nodes out of an expression tree."""
        if isinstance(expr, (ast.Call, ast.New)):
            tmp = self.fresh()
            if isinstance(expr, ast.Call):
                expr = self._normalize_call(expr, pre, line)
            pre.append(ast.Assign(tmp, expr, line=line))
            return ast.VarRef(tmp)
        if isinstance(expr, ast.Binary):
            left = self._hoist(expr.left, pre, line)
            right = self._hoist(expr.right, pre, line)
            if left is expr.left and right is expr.right:
                return expr
            return ast.Binary(expr.op, left, right)
        if isinstance(expr, ast.Unary):
            operand = self._hoist(expr.operand, pre, line)
            if operand is expr.operand:
                return expr
            return ast.Unary(expr.op, operand)
        return expr


def _direct_call(stmt) -> ast.Call | None:
    """The called function if the statement is a direct call, else None."""
    if isinstance(stmt, ast.ExprStmt):
        return stmt.call
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
        return stmt.value
    return None
