"""Mini-language frontend: the substitute for the paper's Java/Soot frontend.

The analyses only consume the four statement forms of the paper's Figure 4
(allocation, assignment, field store, field load) plus control flow, calls
and method-call *events*.  This package provides a small imperative language
with exactly those constructs -- including ``while`` loops (statically
unrolled), ``try``/``catch``/``throw`` (lowered to explicit branches) -- a
lexer, a recursive-descent parser, AST transformation passes, a basic-block
CFG builder and a call graph.
"""

from repro.lang.ast import Program, Function
from repro.lang.parser import parse_program, ParseError
from repro.lang.lexer import LexError
from repro.lang.transform import unroll_loops, lower_exceptions
from repro.lang.cfg import build_cfg, ControlFlowGraph, BasicBlock
from repro.lang.callgraph import CallGraph, build_call_graph

__all__ = [
    "Program",
    "Function",
    "parse_program",
    "ParseError",
    "LexError",
    "unroll_loops",
    "lower_exceptions",
    "build_cfg",
    "ControlFlowGraph",
    "BasicBlock",
    "CallGraph",
    "build_call_graph",
]
