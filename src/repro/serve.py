"""Incremental analysis daemon: ``repro serve`` (DESIGN.md §16).

The batch pipeline answers "what warnings does this program have?" by
recomputing everything.  The daemon answers the question *per edit*:
it watches a workspace of ``.mini`` files, and for every observed
change re-derives only what the edit can influence, replying with the
warning *delta* as a ``grapple/run-report`` fragment.

The incremental spine has three layers, mirroring the spans it emits:

``incr-diff``
    Workspace scan (mtime+size fast path, content digest to confirm).
    Changed files re-parse once; their scope artifacts land in the
    digest-keyed :class:`~repro.sa.scopes.ScopeArtifactCache` shared
    with the per-stratum Grapple runs, so an edit re-derives exactly
    one artifact.  File-level dependency edges (imports + same-module
    chains -- a proven over-approximation of scope-graph connectivity)
    are re-extracted and diffed against the current base relation as a
    weighted :class:`~repro.engine.incremental.ZSet` delta.

``incr-join``
    The edge delta feeds :class:`~repro.engine.incremental
    .IncrementalClosure` -- level-stratified semi-naive joins against
    delayed per-round integrals, insertion *and* retraction safe.  The
    closure's weakly-connected components are the daemon's **strata**:
    an edit is confined to the strata of its touched files.

``incr-retract``
    Each stratum is checked by an ordinary (deterministic, serial)
    Grapple run, cached by a digest over its membership, content, and
    analysis config.  Warnings are stored *rebased*: as ``(file,
    offset)`` against the stratum-local site numbering, so the
    accumulated state is byte-identical to a from-scratch run over the
    final sources once global site bases are re-applied.  Warnings
    whose stratum result was superseded are retracted from the
    accumulated state and reported in the fragment.

``edits_served`` / ``edges_rederived`` / ``warnings_retracted`` ride
the ordinary :class:`~repro.engine.stats.EngineStats` metadata path
into the fragment's ``counters`` section.  State (file metadata,
stratum results, counters) persists in ``workdir/serve-state.json``
across restarts; the scope-artifact store and per-phase checkpoint
workdirs live under the same workdir.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sys
import time
from dataclasses import dataclass

from repro.analysis.pipeline import Grapple, GrappleOptions
from repro.engine import serialize
from repro.engine.computation import EngineOptions
from repro.engine.incremental import IncrementalClosure, ZSet
from repro.engine.stats import EngineStats
from repro.lang.lexer import tokenize
from repro.lang.parser import ParseError, parse_module, scan_module_name
from repro.sa.scopes import ScopeArtifactCache, build_artifact, source_digest

STATE_FILE = "serve-state.json"
STATE_SCHEMA = "grapple/serve-state"
STATE_VERSION = 1

#: Warning identity under edits: stable against *other* files growing
#: or shrinking (offsets are file-local; global site ids are not).
_IDENTITY = ("file", "offset", "checker", "kind", "type_name", "state",
             "func", "line")


@dataclass
class FileMeta:
    """What the daemon remembers about one workspace file."""

    path: str
    digest: str
    module: str
    imports: tuple
    sites: int  # site ids this file consumes (content-determined)
    mtime: float
    size: int

    def to_json(self) -> dict:
        return {
            "digest": self.digest, "module": self.module,
            "imports": list(self.imports), "sites": self.sites,
            "mtime": self.mtime, "size": self.size,
        }

    @classmethod
    def from_json(cls, path: str, doc: dict) -> "FileMeta":
        return cls(
            path=path, digest=doc["digest"], module=doc["module"],
            imports=tuple(doc["imports"]), sites=doc["sites"],
            mtime=doc["mtime"], size=doc["size"],
        )


def _identity(warning: dict) -> tuple:
    return tuple(warning[k] for k in _IDENTITY)


class ServeEngine:
    """The daemon's state machine; :class:`Server` wraps it in I/O.

    Drive it directly for tests and benchmarks: :meth:`scan` observes
    the workspace and returns one run-report fragment; :meth:`report`
    returns the full accumulated state, byte-comparable (modulo
    witnesses, which are engine-order informational payloads) to a
    from-scratch ``repro check`` over the current sources.
    """

    def __init__(self, workspace: str, workdir: str, fsms,
                 *, unroll: int = 2, reduce: bool = True, trace=None):
        self.workspace = workspace
        self.workdir = workdir
        self.fsms = list(fsms)
        self.unroll = unroll
        self.reduce = reduce
        self.trace = trace
        self.stats = EngineStats()
        os.makedirs(workdir, exist_ok=True)
        self.cache = ScopeArtifactCache(os.path.join(workdir, "scope-cache"))
        self.closure = IncrementalClosure()
        self.files: dict[str, FileMeta] = {}
        self.texts: dict[str, str] = {}
        #: stratum digest -> {"files": [...], "warnings": [local dicts]}
        self.strata: dict[str, dict] = {}
        self.errors: dict[str, str] = {}
        self._load_state()

    # -- config ------------------------------------------------------------

    def config_digest(self) -> str:
        payload = {
            "unroll": self.unroll,
            "reduce": self.reduce,
            "fsms": sorted(fsm.name for fsm in self.fsms),
        }
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    # -- persistence -------------------------------------------------------

    def _state_path(self) -> str:
        return os.path.join(self.workdir, STATE_FILE)

    def _save_state(self) -> None:
        doc = {
            "schema": STATE_SCHEMA,
            "version": STATE_VERSION,
            "config": self.config_digest(),
            "files": {p: m.to_json() for p, m in sorted(self.files.items())},
            "strata": {
                digest: entry for digest, entry in sorted(self.strata.items())
            },
            "counters": {
                "edits_served": self.stats.edits_served,
                "edges_rederived": self.stats.edges_rederived,
                "warnings_retracted": self.stats.warnings_retracted,
            },
        }
        data = json.dumps(doc, sort_keys=True).encode()
        serialize.atomic_write_bytes(self._state_path(), data)

    def _load_state(self) -> None:
        try:
            with open(self._state_path()) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            return
        if (doc.get("schema") != STATE_SCHEMA
                or doc.get("version") != STATE_VERSION
                or doc.get("config") != self.config_digest()):
            return  # different analysis config: results are not reusable
        self.files = {
            path: FileMeta.from_json(path, meta)
            for path, meta in doc.get("files", {}).items()
        }
        self.strata = dict(doc.get("strata", {}))
        counters = doc.get("counters", {})
        self.stats.edits_served = counters.get("edits_served", 0)
        self.stats.edges_rederived = counters.get("edges_rederived", 0)
        self.stats.warnings_retracted = counters.get("warnings_retracted", 0)
        # Rebuild the closure from the remembered metadata; the next
        # scan() diffs the real workspace against it.
        delta = [(edge, 1) for edge, _ in self._desired_edges().items()]
        if delta:
            self.closure.apply(delta)

    # -- workspace observation ---------------------------------------------

    def _workspace_files(self) -> list[str]:
        try:
            names = os.listdir(self.workspace)
        except OSError:
            return []
        return sorted(n for n in names if n.endswith(".mini"))

    def _read(self, path: str) -> str:
        with open(os.path.join(self.workspace, path)) as f:
            return f.read()

    def _text(self, path: str) -> str:
        if path not in self.texts:
            self.texts[path] = self._read(path)
        return self.texts[path]

    def _observe(self, path: str, text: str, mtime: float,
                 size: int) -> FileMeta:
        """Parse one changed file and refresh its cached artifact."""
        digest = source_digest(text)
        tokens = tokenize(text)
        module = scan_module_name(tokens)
        mf = parse_module(text, path=path, tokens=tokens)
        if self.cache.get(digest) is None:
            self.cache.put(build_artifact(mf, digest))
        return FileMeta(
            path=path, digest=digest, module=module,
            imports=tuple(i.module for i in mf.imports),
            sites=mf.next_site, mtime=mtime, size=size,
        )

    def _diff_workspace(self, only=None) -> tuple[list[str], list[str]]:
        """Observe the workspace; returns (changed, removed) paths.

        ``only`` restricts the stat scan to the named paths (the socket
        edit op knows exactly what it wrote); removal detection always
        sees the full listing.
        """
        present = self._workspace_files()
        removed = [p for p in self.files if p not in present]
        for path in removed:
            del self.files[path]
            self.texts.pop(path, None)
            self.errors.pop(path, None)
        changed: list[str] = []
        candidates = present if only is None else [
            p for p in present if p in only
        ]
        for path in candidates:
            try:
                st = os.stat(os.path.join(self.workspace, path))
            except OSError:
                continue
            meta = self.files.get(path)
            if (meta is not None and path not in self.errors
                    and meta.mtime == st.st_mtime and meta.size == st.st_size):
                continue
            text = self._read(path)
            digest = source_digest(text)
            if meta is not None and meta.digest == digest \
                    and path not in self.errors:
                meta.mtime, meta.size = st.st_mtime, st.st_size
                continue
            try:
                new_meta = self._observe(path, text, st.st_mtime, st.st_size)
            except ParseError as exc:
                # A broken file keeps its last good analysis (if any);
                # the fragment carries the error instead of a crash.
                self.errors[path] = str(exc)
                continue
            self.errors.pop(path, None)
            self.files[path] = new_meta
            self.texts[path] = text
            changed.append(path)
        return changed, removed

    # -- dependency edges and strata ---------------------------------------

    def _desired_edges(self) -> ZSet:
        """File-level dependency edges implied by current metadata:
        importer -> provider for every import, plus a chain linking
        files that declare the same module (they share a namespace).
        This over-approximates scope-graph connectivity, so distinct
        strata can never influence each other's warnings."""
        providers: dict[str, list[str]] = {}
        for meta in self.files.values():
            providers.setdefault(meta.module, []).append(meta.path)
        pairs: set = set()
        for paths in providers.values():
            paths.sort()
            pairs.update(zip(paths, paths[1:]))
        for meta in self.files.values():
            for module in meta.imports:
                for path in providers.get(module, ()):
                    if path != meta.path:
                        pairs.add((meta.path, path))
        edges = ZSet()
        for pair in pairs:
            edges.add(pair, 1)
        return edges

    def _edge_delta(self) -> list:
        desired = self._desired_edges()
        current = self.closure.edges
        delta = []
        for edge, weight in desired.items():
            diff = weight - current.weight(edge)
            if diff:
                delta.append((edge, diff))
        for edge, weight in current.items():
            if edge not in desired:
                delta.append((edge, -weight))
        return delta

    def _stratum_digest(self, membership: list[str]) -> str:
        payload = [[p, self.files[p].digest] for p in membership]
        payload.append(["<config>", self.config_digest()])
        text = json.dumps(payload, sort_keys=True)
        return hashlib.sha256(text.encode()).hexdigest()

    def _run_stratum(self, membership: list[str]):
        sources = {p: self._text(p) for p in membership}
        options = GrappleOptions(
            unroll=self.unroll, reduce=self.reduce, scope_cache=self.cache,
            engine=EngineOptions(trace=self.trace),
        )
        return Grapple(sources, self.fsms, options).run()

    @staticmethod
    def _localize(run) -> list[dict]:
        """Stratum warnings rebased to (file, offset) site coordinates."""
        ranges = run.compiled.resolution.site_ranges
        out = []
        for w in run.report.warnings:
            for path, (base, end) in ranges.items():
                if base <= w.site < end:
                    out.append({
                        "file": path, "offset": w.site - base,
                        "checker": w.checker, "kind": w.kind,
                        "type_name": w.type_name, "state": w.state,
                        "func": w.func, "line": w.line,
                        "witness": list(w.witness),
                    })
                    break
        out.sort(key=_identity)
        return out

    # -- the edit loop -----------------------------------------------------

    def scan(self, only=None) -> dict:
        """Observe the workspace once; re-derive what changed; return
        the edit's ``grapple/run-report`` fragment."""
        t0 = time.perf_counter()
        tick = self.trace.begin() if self.trace is not None else 0.0
        misses_before = self.cache.misses
        changed, removed = self._diff_workspace(only=only)
        rederived = self.cache.misses - misses_before
        delta = self._edge_delta()
        if self.trace is not None:
            self.trace.end("incr-diff", tick, cat="serve",
                           changed=len(changed), removed=len(removed))
        if not changed and not removed and not delta:
            return self._fragment(t0, [], [], [], [], [], None, 0)

        tick = self.trace.begin() if self.trace is not None else 0.0
        closure_delta = self.closure.apply(delta)
        self.stats.edits_served += 1
        self.stats.edges_rederived += closure_delta.edges_rederived
        if self.trace is not None:
            self.trace.end("incr-join", tick, cat="serve",
                           rounds=closure_delta.rounds,
                           joins=closure_delta.joins)

        before = {
            _identity(w): w
            for entry in self.strata.values() for w in entry["warnings"]
        }
        new_strata: dict[str, dict] = {}
        runs = []
        for component in self.closure.components(self.files):
            membership = sorted(component)
            digest = self._stratum_digest(membership)
            entry = self.strata.get(digest)
            if entry is None:
                try:
                    run = self._run_stratum(membership)
                except ParseError as exc:
                    # LinkError (duplicate symbols after an edit) and
                    # friends: the stratum contributes no warnings but
                    # the daemon keeps serving; the fragment says why.
                    self.errors[membership[0]] = str(exc)
                    entry = {"files": membership, "warnings": [],
                             "error": str(exc)}
                else:
                    runs.append(run)
                    for path in membership:
                        self.errors.pop(path, None)
                    entry = {
                        "files": membership,
                        "warnings": self._localize(run),
                    }
            new_strata[digest] = entry

        tick = self.trace.begin() if self.trace is not None else 0.0
        self.strata = new_strata
        after = {
            _identity(w): w
            for entry in self.strata.values() for w in entry["warnings"]
        }
        added = [after[k] for k in sorted(after.keys() - before.keys())]
        retracted = [before[k] for k in sorted(before.keys() - after.keys())]
        self.stats.warnings_retracted += len(retracted)
        if self.trace is not None:
            self.trace.end("incr-retract", tick, cat="serve",
                           retracted=len(retracted))
        self._save_state()
        return self._fragment(
            t0, runs, changed, removed, added, retracted, closure_delta,
            rederived,
        )

    def edit(self, path: str, text: str) -> dict:
        """Apply one edit (write-through to the workspace) and answer."""
        full = os.path.join(self.workspace, path)
        serialize.atomic_write_bytes(full, text.encode())
        return self.scan(only={path})

    def remove(self, path: str) -> dict:
        try:
            os.remove(os.path.join(self.workspace, path))
        except OSError:
            pass
        return self.scan(only=set())

    # -- accumulated state -------------------------------------------------

    def _site_bases(self) -> dict[str, int]:
        """Global site base per file, matching the batch loader's
        canonical (module, path) file order over the current sources."""
        order = sorted(self.files.values(), key=lambda m: (m.module, m.path))
        bases: dict[str, int] = {}
        acc = 0
        for meta in order:
            bases[meta.path] = acc
            acc += meta.sites
        return bases

    def warnings(self) -> list[dict]:
        """The accumulated warnings, rebased to global site ids --
        identical to a from-scratch run over the current sources."""
        bases = self._site_bases()
        out = []
        for entry in self.strata.values():
            for w in entry["warnings"]:
                doc = dict(w)
                doc["site"] = bases[w["file"]] + w["offset"]
                out.append(doc)
        out.sort(key=_identity)
        return out

    def report(self) -> dict:
        """The full accumulated state as one JSON document."""
        return {
            "schema": "grapple/serve-report",
            "version": 1,
            "workspace": self.workspace,
            "files": {p: m.digest for p, m in sorted(self.files.items())},
            "strata": [
                {"digest": digest, "files": entry["files"],
                 "warnings": len(entry["warnings"])}
                for digest, entry in sorted(self.strata.items())
            ],
            "errors": dict(sorted(self.errors.items())),
            "warnings": self.warnings(),
            "counters": {
                "edits_served": self.stats.edits_served,
                "edges_rederived": self.stats.edges_rederived,
                "warnings_retracted": self.stats.warnings_retracted,
            },
        }

    # -- fragments ---------------------------------------------------------

    def _fragment(self, t0, runs, changed, removed, added, retracted,
                  closure_delta, rederived) -> dict:
        """One per-edit ``grapple/run-report`` (v2) fragment.

        The standard sections aggregate the stratum runs this edit
        triggered; the extra ``edit`` section carries the delta.  The
        document passes ``repro.obs.report.validate_run_report``
        (unknown sections are ignored by v1/v2 readers).
        """
        merged = EngineStats()
        for run in runs:
            merged.merge_phase(run.stats)
        merged.edits_served = self.stats.edits_served
        merged.edges_rederived = self.stats.edges_rederived
        merged.warnings_retracted = self.stats.warnings_retracted
        snapshot = merged.registry_view().snapshot()
        total = time.perf_counter() - t0
        preprocess = sum(r.preprocess_time for r in runs)
        warning_count = sum(
            len(entry["warnings"]) for entry in self.strata.values()
        )
        fragment = {
            "schema": "grapple/run-report",
            "version": 2,
            "generated_unix": round(time.time(), 3),
            "timing": {
                "preprocess_s": round(preprocess, 6),
                "computation_s": round(max(total - preprocess, 0.0), 6),
                "total_s": round(total, 6),
            },
            "breakdown": {
                k: round(v, 6) for k, v in merged.breakdown().items()
            },
            "counters": {
                k: round(v, 6) if isinstance(v, float) else v
                for k, v in snapshot["counters"].items()
            },
            "gauges": {
                k: round(v, 6) if isinstance(v, float) else v
                for k, v in snapshot["gauges"].items()
            },
            "histograms": snapshot["histograms"],
            "warnings": warning_count,
            "subject": f"serve:{self.workspace}",
            "edit": {
                "seq": self.stats.edits_served,
                "changed": sorted(changed),
                "removed": sorted(removed),
                "errors": dict(sorted(self.errors.items())),
                "artifacts_rederived": rederived,
                "strata_rechecked": len(runs),
                "strata_total": len(self.strata),
                "closure": {
                    "edges_added": len(closure_delta.added),
                    "edges_removed": len(closure_delta.removed),
                    "rounds": closure_delta.rounds,
                    "joins": closure_delta.joins,
                } if closure_delta is not None else None,
                "warnings_added": added,
                "warnings_retracted": retracted,
            },
        }
        if not fragment["counters"].get("waves"):
            fragment["counters"].pop("waves", None)
        if runs:
            # Aggregated scope-resolution counters of this edit's
            # stratum runs (same optional section as the batch report).
            scopes: dict[str, int] = {}
            for run in runs:
                for key, value in \
                        run.compiled.resolution.stats.as_dict().items():
                    scopes[key] = scopes.get(key, 0) + value
            fragment["scopes"] = scopes
        return fragment


class Server:
    """Line-oriented JSON protocol over a local unix socket.

    One request per connection, newline-terminated::

        {"op": "ping"}
        {"op": "scan"}
        {"op": "edit", "path": "core.mini", "text": "..."}
        {"op": "remove", "path": "core.mini"}
        {"op": "report"}
        {"op": "shutdown"}

    Between connections the server polls the workspace (mtime+digest,
    no external watchers), so out-of-band edits are served too.
    """

    def __init__(self, engine: ServeEngine, socket_path: str | None = None,
                 poll: float = 0.5, out=None):
        self.engine = engine
        self.socket_path = socket_path
        self.poll = poll
        self.out = out if out is not None else sys.stdout
        self._sock = None
        self._shutdown = False

    def _emit(self, doc: dict) -> None:
        json.dump(doc, self.out, sort_keys=True)
        self.out.write("\n")
        self.out.flush()

    def _handle(self, request: dict) -> dict:
        op = request.get("op")
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "scan":
            return self.engine.scan()
        if op == "edit":
            return self.engine.edit(request["path"], request["text"])
        if op == "remove":
            return self.engine.remove(request["path"])
        if op == "report":
            return self.engine.report()
        if op == "shutdown":
            self._shutdown = True
            return {"ok": True, "op": "shutdown"}
        return {"error": f"unknown op {op!r}"}

    def _serve_connection(self, conn) -> None:
        with conn:
            data = b""
            while not data.endswith(b"\n"):
                chunk = conn.recv(65536)
                if not chunk:
                    break
                data += chunk
            if not data.strip():
                return
            try:
                request = json.loads(data)
                response = self._handle(request)
            except (ValueError, KeyError) as exc:
                response = {"error": str(exc)}
            conn.sendall(json.dumps(response, sort_keys=True).encode() + b"\n")

    def run(self, max_requests: int | None = None) -> int:
        """Serve until shutdown (or ``max_requests`` connections)."""
        fragment = self.engine.scan()  # cold start: bring state current
        self._emit(fragment)
        if self.socket_path is None:
            # Pure polling mode: no socket, just watch the workspace.
            while not self._shutdown:
                time.sleep(self.poll)
                fragment = self.engine.scan()
                if fragment["edit"]["changed"] or fragment["edit"]["removed"]:
                    self._emit(fragment)
            return 0
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            os.unlink(self.socket_path)
        except OSError:
            pass
        sock.bind(self.socket_path)
        sock.listen(8)
        sock.settimeout(self.poll)
        self._sock = sock
        served = 0
        try:
            while not self._shutdown:
                try:
                    conn, _ = sock.accept()
                except socket.timeout:
                    fragment = self.engine.scan()
                    if fragment["edit"]["changed"] \
                            or fragment["edit"]["removed"]:
                        self._emit(fragment)
                    continue
                self._serve_connection(conn)
                served += 1
                if max_requests is not None and served >= max_requests:
                    break
        finally:
            sock.close()
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        return 0


def request(socket_path: str, payload: dict) -> dict:
    """One client round-trip against a running :class:`Server`."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.connect(socket_path)
        sock.sendall(json.dumps(payload).encode() + b"\n")
        data = b""
        while not data.endswith(b"\n"):
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
    return json.loads(data)
