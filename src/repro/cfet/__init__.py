"""Control-flow execution trees and interval-based path encoding (§3).

* :mod:`repro.cfet.cfet` -- per-method CFET built by symbolic execution,
  with Eytzinger-style node numbering;
* :mod:`repro.cfet.icfet` -- the interprocedural CFET: CFETs connected by
  call/return edges annotated with call-site ids and parameter-passing
  equations;
* :mod:`repro.cfet.encoding` -- interval-sequence path encodings: the merge
  rules of §4.2 (four cases), reversal for bar edges, and constraint
  decoding (Algorithm 1 plus interprocedural equation composition).
"""

from repro.cfet.cfet import Cfet, CfetNode, CallRecord, build_cfet, parent_id
from repro.cfet.icfet import Icfet, build_icfet
from repro.cfet.encoding import (
    Encoding,
    interval,
    call_elem,
    return_elem,
    BREAK,
    merge,
    reverse,
    decode_constraint,
)

__all__ = [
    "Cfet",
    "CfetNode",
    "CallRecord",
    "build_cfet",
    "parent_id",
    "Icfet",
    "build_icfet",
    "Encoding",
    "interval",
    "call_elem",
    "return_elem",
    "BREAK",
    "merge",
    "reverse",
    "decode_constraint",
]
