"""The interprocedural CFET (paper §3.2-§3.3).

Per-method CFETs are *not* cloned; they are connected by call/return edges
annotated with call-site ids and symbolic parameter-passing equations.  The
ICFET is an in-memory index: the engine holds it (read-only) throughout the
computation to decode path encodings into constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.symbolic.evaluator import symbol_name
from repro.cfet.cfet import Cfet, CallRecord, _IdAllocator, build_cfet


@dataclass
class Icfet:
    """All CFETs of a program plus the call/return edge tables."""

    cfets: dict[str, Cfet] = field(default_factory=dict)
    by_cid: dict[int, CallRecord] = field(default_factory=dict)
    by_rid: dict[int, CallRecord] = field(default_factory=dict)

    def cfet(self, func: str) -> Cfet:
        """The CFET of one function."""
        return self.cfets[func]

    def record_of_call(self, cid: int) -> CallRecord:
        """The call record owning call-edge id ``cid``."""
        return self.by_cid[cid]

    def record_of_return(self, rid: int) -> CallRecord:
        """The call record owning return-edge id ``rid``."""
        return self.by_rid[rid]

    def total_nodes(self) -> int:
        """CFET nodes across all functions (index-size metric)."""
        return sum(len(c.nodes) for c in self.cfets.values())

    def memory_estimate(self) -> int:
        """Rough in-memory footprint in bytes (for Table 3-style stats)."""
        return self.total_nodes() * 96 + len(self.by_cid) * 160


def formal_symbols(program: ast.Program) -> dict[str, tuple[str, ...]]:
    """Namespaced formal-parameter symbols for every function."""
    return {
        name: tuple(symbol_name(name, p) for p in fn.params)
        for name, fn in program.functions.items()
    }


def build_icfet(program: ast.Program) -> Icfet:
    """Build CFETs for all functions and connect their call records.

    The program must already be in core form (calls normalised, loops
    unrolled, exceptions lowered).
    """
    icfet = Icfet()
    ids = _IdAllocator()
    formals = formal_symbols(program)
    for name, fn in program.functions.items():
        cfet = build_cfet(fn, ids, formals)
        icfet.cfets[name] = cfet
        for node in cfet.nodes.values():
            for record in node.calls:
                icfet.by_cid[record.cid] = record
                icfet.by_rid[record.rid] = record
    return icfet
