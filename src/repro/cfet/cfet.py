"""Per-method control-flow execution trees (paper §3.1).

A CFET is a binary tree whose nodes are *extended basic blocks* (straight-
line statement runs fused across fall-throughs).  Non-leaf nodes end at a
branch conditional and store its symbolic condition; leaves end at the
procedure exit.  Node ids follow the paper's Eytzinger-style numbering:

* the root has id 0,
* a node with id n has false child 2n+1 and true child 2n+2,

so the parent of ``n`` is ``(n - 1) >> 1`` and an interval ``[a, b]``
uniquely determines the path from ``a`` down to ``b``.

The builder performs symbolic execution over the core (lowered) AST: loop-
free, exception-free bodies where the only control flow is ``if``/``else``
and ``return``.  Statements after an ``if`` join are duplicated into both
subtrees, which is exactly the path-explicit representation the CFET wants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang import ast
from repro.lang.transform import THROWN_FLAG
from repro.smt import expr as E
from repro.symbolic.evaluator import SymbolicEnv, symbol_name


def parent_id(node_id: int) -> int:
    """Parent of a CFET node (root is 0; false child 2n+1, true 2n+2)."""
    if node_id <= 0:
        raise ValueError("the root node has no parent")
    return (node_id - 1) >> 1


def is_true_child(node_id: int) -> bool:
    return node_id % 2 == 0


@dataclass
class CallRecord:
    """One call-site *occurrence* inside a CFET node.

    ``cid``/``rid`` are program-unique ids for this occurrence's call and
    return edges in the ICFET.  ``equations`` bind callee formals to the
    caller's symbolic actuals; ``result_symbol`` is the caller-side symbol
    standing for the returned value (None for bare call statements).
    ``stmt_index`` is the statement's index within the node, used by the
    dataflow graph to split the node into segments.
    """

    cid: int
    rid: int
    caller: str
    callee: str
    node_id: int
    stmt_index: int
    call: ast.Call
    lhs: str | None
    equations: tuple = ()
    result_symbol: str | None = None
    # Caller-side symbol for the callee's __thrown register after the call
    # (set when the lowering probes the call with ThrownFlagOf).
    thrown_symbol: str | None = None


@dataclass
class CfetNode:
    node_id: int
    statements: list = field(default_factory=list)
    condition: E.Expr | None = None  # None for leaves
    calls: list[CallRecord] = field(default_factory=list)
    return_value: E.Expr | None = None  # symbolic value returned (leaves)
    return_var: str | None = None  # variable returned, when it is a var
    # Symbolic value of the __thrown register at this leaf (exception
    # lowering); lets return equations correlate caller-side probes.
    thrown_value: E.Expr | None = None

    @property
    def is_leaf(self) -> bool:
        """Leaves end at the procedure exit (no branch condition)."""
        return self.condition is None


@dataclass
class Cfet:
    func: str
    nodes: dict[int, CfetNode] = field(default_factory=dict)

    @property
    def root(self) -> CfetNode:
        """The entry node (id 0)."""
        return self.nodes[0]

    @property
    def leaves(self) -> list[CfetNode]:
        """All exit nodes."""
        return [n for n in self.nodes.values() if n.is_leaf]

    def node(self, node_id: int) -> CfetNode:
        """The node with the given Eytzinger id."""
        return self.nodes[node_id]

    def path_to_root(self, node_id: int):
        """Yield node ids from ``node_id`` up to the root (inclusive)."""
        current = node_id
        while True:
            yield current
            if current == 0:
                return
            current = parent_id(current)

    def is_ancestor(self, a: int, b: int) -> bool:
        """True when ``a`` lies on the root path of ``b`` (or a == b)."""
        current = b
        while current >= a:
            if current == a:
                return True
            if current == 0:
                return False
            current = parent_id(current)
        return False

    def condition_of_edge(self, child_id: int) -> E.Expr:
        """Branch literal contributed by the edge parent -> child."""
        cond = self.nodes[parent_id(child_id)].condition
        if cond is None:
            raise ValueError(f"node {parent_id(child_id)} is a leaf")
        return cond if is_true_child(child_id) else E.not_(cond)

    def path_constraint(self, start: int, end: int) -> E.Expr:
        """Algorithm 1: conjunction of branch literals on [start, end]."""
        literals = []
        current = end
        while current != start:
            if current == 0:
                raise ValueError(f"{start} is not an ancestor of {end}")
            literals.append(self.condition_of_edge(current))
            current = parent_id(current)
        return E.and_(*literals)


class _IdAllocator:
    """Shared allocator for call/return edge ids across a whole program."""

    def __init__(self) -> None:
        self.next_id = 0

    def fresh(self) -> int:
        value = self.next_id
        self.next_id += 1
        return value


class _CfetBuilder:
    # Safety valve: refuse to build CFETs beyond this many nodes (callers
    # should keep per-function branching modest; see DESIGN.md).
    MAX_NODES = 1 << 17

    def __init__(self, fn: ast.Function, ids: _IdAllocator,
                 formals: dict[str, tuple[str, ...]] | None = None):
        self.fn = fn
        self.ids = ids
        # Callee name -> namespaced formal-parameter symbols, used for
        # parameter-passing equations; unknown callees get no equations.
        self.formals = formals or {}
        self.cfet = Cfet(fn.name)
        self.occurrence = 0

    def build(self) -> Cfet:
        env = SymbolicEnv(self.fn.name, self.fn.params)
        self._walk(0, list(self.fn.body), env)
        return self.cfet

    def _walk(self, node_id: int, stmts: list, env: SymbolicEnv) -> None:
        if len(self.cfet.nodes) >= self.MAX_NODES:
            raise OverflowError(
                f"CFET for {self.fn.name!r} exceeds {self.MAX_NODES} nodes;"
                " reduce branching or the unroll factor"
            )
        node = CfetNode(node_id)
        self.cfet.nodes[node_id] = node
        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, ast.Return):
                if stmt.value is not None:
                    node.return_value = env.eval(stmt.value)
                    if isinstance(stmt.value, ast.VarRef):
                        node.return_var = stmt.value.name
                node.thrown_value = env.values.get(THROWN_FLAG)
                return  # leaf
            if isinstance(stmt, ast.If):
                hint = f"{node_id}_{idx}"
                node.condition = env.eval_condition(stmt.cond, hint)
                rest = stmts[idx + 1 :]
                self._walk(2 * node_id + 2, stmt.then_body + rest, env.copy())
                self._walk(2 * node_id + 1, stmt.else_body + rest, env.copy())
                return
            self._execute(node, stmt, env)
        # Fell off the end: implicit return, leaf node.
        node.thrown_value = env.values.get(THROWN_FLAG)

    def _execute(self, node: CfetNode, stmt, env: SymbolicEnv) -> None:
        call = _call_of(stmt)
        if call is not None:
            record = self._record_call(node, stmt, call, env)
            node.calls.append(record)
            if record.result_symbol is not None:
                env.values[record.lhs] = E.IntVar(record.result_symbol)
            node.statements.append(stmt)
            return
        if isinstance(stmt, ast.Assign) and isinstance(
            stmt.value, ast.ThrownFlagOf
        ):
            record = self._find_call_record(node, stmt.value.call_site)
            if record is not None:
                symbol = symbol_name(self.fn.name, f"thr_occ{record.cid}")
                record.thrown_symbol = symbol
                env.values[stmt.target] = E.IntVar(symbol)
            else:
                env.values[stmt.target] = None
            node.statements.append(stmt)
            return
        if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Input):
            # Occurrence-unique input symbol: unroll-duplicated sites must
            # not share one symbol, or iterations become correlated.
            self.occurrence += 1
            name = symbol_name(self.fn.name, f"in_occ{self.occurrence}")
            env.values[stmt.target] = E.IntVar(name)
            node.statements.append(stmt)
            return
        env.execute(stmt)
        node.statements.append(stmt)

    @staticmethod
    def _find_call_record(node: CfetNode, call_site: int):
        """The most recent call record in this node for one call site."""
        for record in reversed(node.calls):
            if record.call.site == call_site:
                return record
        return None

    def _record_call(self, node: CfetNode, stmt, call: ast.Call,
                     env: SymbolicEnv) -> CallRecord:
        equations = []
        # Formal/actual equations only exist for numeric actuals; object
        # parameters are wired by the alias graph instead.
        for formal, actual in zip(self.formals.get(call.func, ()), call.args):
            value = env.eval(actual)
            if value is not None and value.sort == "int":
                equations.append(E.eq(E.IntVar(formal), value))
        lhs = stmt.target if isinstance(stmt, ast.Assign) else None
        cid = self.ids.fresh()
        rid = self.ids.fresh()
        result_symbol = None
        if lhs is not None:
            result_symbol = symbol_name(self.fn.name, f"ret_occ{cid}")
        return CallRecord(
            cid=cid,
            rid=rid,
            caller=self.fn.name,
            callee=call.func,
            node_id=node.node_id,
            stmt_index=len(node.statements),
            call=call,
            lhs=lhs,
            equations=tuple(equations),
            result_symbol=result_symbol,
        )


def _call_of(stmt) -> ast.Call | None:
    if isinstance(stmt, ast.ExprStmt):
        return stmt.call
    if isinstance(stmt, ast.Assign) and isinstance(stmt.value, ast.Call):
        return stmt.value
    return None


def build_cfet(fn: ast.Function, ids: _IdAllocator | None = None,
               formals: dict[str, tuple[str, ...]] | None = None) -> Cfet:
    """Build the CFET of one core-form function."""
    return _CfetBuilder(fn, ids or _IdAllocator(), formals).build()
