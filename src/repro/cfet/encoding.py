"""Interval-sequence path encodings (paper §3.1-§3.2, §4.2).

An encoding is a tuple of elements:

* ``("I", func, start, end)`` -- an interval on ``func``'s CFET: the path
  from node ``start`` down to node ``end``;
* ``("C", cid)`` -- the ICFET call edge of call record ``cid``;
* ``("R", rid)`` -- the ICFET return edge of call record ``rid``.

:func:`merge` implements the paper's four composition cases: chaining of
adjacent intervals in the same method, plain concatenation around single
call/return ids, and cancellation of completed ``(C, callee-path, R)``
triples.  :func:`reverse` produces the encoding of a *bar* (reversed) edge;
path constraints are direction-independent, so intervals are kept and call
and return ids swap roles.

:func:`decode_constraint` is Algorithm 1 extended interprocedurally: each
interval contributes its branch literals, each call edge its parameter-
passing equations, each return edge its result equation.  Symbols are given
per-invocation instances (``foo::x@2``) so that two invocations of the same
method on one path do not share constraint variables.
"""

from __future__ import annotations

from repro.smt import expr as E
from repro.cfet.icfet import Icfet

# Tags.
INTERVAL = "I"
CALL = "C"
RETURN = "R"
BREAK = ("B",)  # retained for API compatibility; merge never emits it

# Encodings longer than this are refused (merge returns None and the engine
# drops the composition).  The paper notes encoding length is bounded by
# call depth, which is small in practice.
MAX_ELEMENTS = 64

Encoding = tuple


def interval(func: str, start: int, end: int) -> tuple:
    """Encoding element for a CFET path from ``start`` down to ``end``."""
    return (INTERVAL, func, start, end)


def call_elem(cid: int) -> tuple:
    """Encoding element for an ICFET call edge."""
    return (CALL, cid)


def return_elem(rid: int) -> tuple:
    """Encoding element for an ICFET return edge."""
    return (RETURN, rid)


def single(func: str, node_id: int) -> Encoding:
    """The encoding ``{[i, i]}`` of an edge inside one basic block."""
    return (interval(func, node_id, node_id),)


def merge(enc1: Encoding, enc2: Encoding, icfet: Icfet) -> Encoding | None:
    """Compose two path encodings (the four cases of §4.2).

    Returns None when the composition exceeds :data:`MAX_ELEMENTS`.
    """
    seq = list(enc1) + list(enc2)
    _normalize(seq, icfet)
    if len(seq) > MAX_ELEMENTS:
        return None
    return tuple(seq)


def _normalize(seq: list, icfet: Icfet) -> None:
    """Apply interval chaining and call/return cancellation to fixpoint."""
    changed = True
    while changed:
        changed = False
        i = 0
        while i + 1 < len(seq):
            a, b = seq[i], seq[i + 1]
            if (
                a[0] == INTERVAL
                and b[0] == INTERVAL
                and a[1] == b[1]
                and a[3] == b[2]
            ):
                seq[i : i + 2] = [(INTERVAL, a[1], a[2], b[3])]
                changed = True
                continue
            i += 1
        i = 0
        while i + 2 < len(seq):
            a, m, b = seq[i], seq[i + 1], seq[i + 2]
            if (
                a[0] == CALL
                and m[0] == INTERVAL
                and b[0] == RETURN
                and _matched(a[1], b[1], icfet)
                and m[2] == 0  # the callee path is complete (root to leaf)
            ):
                # Case 3: the callee part has completed; drop the triple.
                seq[i : i + 3] = []
                changed = True
                continue
            i += 1


def _matched(cid: int, rid: int, icfet: Icfet) -> bool:
    record = icfet.by_rid.get(rid)
    return record is not None and record.cid == cid


def reverse(enc: Encoding) -> Encoding:
    """Encoding of the reversed (bar) edge."""
    out = []
    for elem in reversed(enc):
        if elem[0] == CALL:
            record_cid = elem[1]
            out.append((RETURN, _rid_of_cid(record_cid)))
        elif elem[0] == RETURN:
            out.append((CALL, _cid_of_rid(elem[1])))
        else:
            out.append(elem)
    return tuple(out)


# cid and rid are allocated as consecutive ids by the CFET builder; keep
# the pairing logic in one place in case that ever changes.
def _rid_of_cid(cid: int) -> int:
    return cid + 1


def _cid_of_rid(rid: int) -> int:
    return rid - 1


def decode_constraint(enc: Encoding, icfet: Icfet) -> E.Expr:
    """Recover the path constraint of an encoding (Algorithm 1 + §3.2).

    Returns a boolean :class:`repro.smt.expr.Expr`; the caller sends it to
    the solver.
    """
    literals: list[E.Expr] = []
    stack: list[int] = [0]
    next_instance = 1
    last_interval: tuple | None = None  # (func, end_node) of previous elem

    for elem in enc:
        if elem[0] == INTERVAL:
            _, func, start, end = elem
            cfet = icfet.cfets.get(func)
            if cfet is not None:
                constraint = cfet.path_constraint(start, end)
                literals.append(_instanced(constraint, stack[-1]))
            last_interval = (func, end)
            continue
        if elem[0] == CALL:
            record = icfet.by_cid.get(elem[1])
            if record is None:
                continue
            caller_inst = stack[-1]
            callee_inst = next_instance
            next_instance += 1
            stack.append(callee_inst)
            for equation in record.equations:
                literals.append(
                    _instanced_by_namespace(
                        equation, record.callee, callee_inst, caller_inst
                    )
                )
            last_interval = None
            continue
        if elem[0] == RETURN:
            record = icfet.by_rid.get(elem[1])
            if record is None:
                continue
            if len(stack) > 1:
                callee_inst = stack.pop()
                caller_inst = stack[-1]
            else:
                # Walking out of a callee whose entry we never saw (reversed
                # fragments); give the caller side a fresh instance.
                callee_inst = stack[-1]
                caller_inst = next_instance
                next_instance += 1
                stack[-1] = caller_inst
            for equation in _return_equations(record, last_interval, icfet):
                literals.append(
                    _instanced_by_namespace(
                        equation, record.callee, callee_inst, caller_inst
                    )
                )
            last_interval = None
            continue
    return E.and_(*literals)


def _return_equations(record, last_interval, icfet: Icfet) -> list:
    """Equations contributed by one return edge: the result value and the
    callee's ``__thrown`` register, when determinable from the preceding
    callee-path fragment."""
    if last_interval is None or last_interval[0] != record.callee:
        return []
    leaf = icfet.cfets[record.callee].nodes.get(last_interval[1])
    if leaf is None:
        return []
    equations = []
    if (
        record.result_symbol is not None
        and leaf.return_value is not None
        and leaf.return_value.sort == "int"
    ):
        equations.append(E.eq(E.IntVar(record.result_symbol), leaf.return_value))
    if (
        record.thrown_symbol is not None
        and leaf.thrown_value is not None
        and leaf.thrown_value.sort == "int"
    ):
        equations.append(E.eq(E.IntVar(record.thrown_symbol), leaf.thrown_value))
    return equations


def _instanced(expr: E.Expr, instance: int) -> E.Expr:
    if instance == 0:
        return expr
    return E.rename_variables(expr, lambda n: f"{n}@{instance}")


def _instanced_by_namespace(
    expr: E.Expr, callee: str, callee_inst: int, caller_inst: int
) -> E.Expr:
    """Suffix callee-namespaced symbols with the callee instance and all
    other (caller-side) symbols with the caller instance."""
    prefix = f"{callee}::"

    def rename(name: str) -> str:
        inst = callee_inst if name.startswith(prefix) else caller_inst
        return name if inst == 0 else f"{name}@{inst}"

    return E.rename_variables(expr, rename)
