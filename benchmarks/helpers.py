"""Shared infrastructure for the benchmark suite.

Every table/figure bench draws its subject programs and Grapple runs from
the memoised builders here, so one `pytest benchmarks/` session analyses
each (subject, configuration) pair exactly once no matter how many tables
consume it.  Results are printed to the real terminal (bypassing pytest's
capture) and appended to ``benchmarks/results/``.
"""

from __future__ import annotations

import functools
import os

from repro import EngineOptions, Grapple, GrappleOptions, default_checkers
from repro.workloads import build_subject, classify_report

#: The four evaluation subjects, smallest first (paper Table 1 order).
SUBJECT_NAMES = ("zookeeper", "hadoop", "hdfs", "hbase")

#: The paper's 16 GB desktop, scaled by the ~1000x ratio between the
#: paper's program-graph sizes (tens of millions of edges) and our
#: synthetic subjects' (tens of thousands).
MEMORY_BUDGET = 16 << 20

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def fsms():
    return tuple(c.fsm for c in default_checkers())


@functools.lru_cache(maxsize=None)
def subject(name: str):
    return build_subject(name)


@functools.lru_cache(maxsize=None)
def grapple_run(
    name: str,
    enable_cache: bool = True,
    unroll: int = 2,
    path_sensitive: bool = True,
    memory_budget: int = MEMORY_BUDGET,
    tag: str = "",
):
    """One full Grapple execution (all four checkers) on one subject.

    ``tag`` only differentiates memoisation keys: benches that compare
    timings pass a tag to get dedicated, same-process-warmth runs instead
    of reusing a run that may have executed cold at session start.
    """
    subj = subject(name)
    options = GrappleOptions(
        unroll=unroll,
        engine=EngineOptions(
            memory_budget=memory_budget,
            enable_cache=enable_cache,
            path_sensitive=path_sensitive,
        ),
    )
    run = Grapple(subj.source, list(fsms()), options).run()
    return subj, run


def classification(name: str):
    subj, run = grapple_run(name)
    return classify_report(subj.seeds, run.report)


def run_report(run, subject_name: str | None = None) -> dict:
    """The ``grapple/run-report`` JSON document for a memoised run --
    every bench gets the full counter/gauge/histogram breakdown from the
    same structured export the CLI's ``--metrics-json`` writes."""
    return run.run_report(subject=subject_name)


def format_duration(seconds: float) -> str:
    if seconds >= 3600:
        return f"{int(seconds // 3600)}h{int(seconds % 3600 // 60):02d}m"
    if seconds >= 60:
        return f"{int(seconds // 60)}m{seconds % 60:04.1f}s"
    return f"{seconds:.1f}s"


def emit(title: str, lines: list[str], capsys=None, payload=None) -> None:
    """Print a result table to the real terminal and persist it.

    When ``payload`` is given (any JSON-serialisable object, e.g. a
    run-report document), it is written alongside the text table as
    ``results/<slug>.json``.
    """
    text = "\n".join([f"\n=== {title} ==="] + lines + [""])
    if capsys is not None:
        with capsys.disabled():
            print(text)
    else:
        print(text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = "".join(
        ch if ch.isalnum() else "_" for ch in title.lower()
    ).strip("_")
    while "__" in slug:
        slug = slug.replace("__", "_")
    with open(os.path.join(RESULTS_DIR, slug + ".txt"), "w") as f:
        f.write(text + "\n")
    if payload is not None:
        import json

        with open(os.path.join(RESULTS_DIR, slug + ".json"), "w") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        # Every bench that persists a run-report also gets its bottleneck
        # analysis (the counter-derived report-only mode -- benches keep
        # no trace): serialized-fraction bounds and the Amdahl projection
        # land next to the raw numbers, so a perf investigation starts
        # from results/ instead of a re-run.
        if isinstance(payload, dict) and (
            payload.get("schema") == "grapple/run-report"
        ):
            from repro.obs.analyze import analyze_report

            path = os.path.join(RESULTS_DIR, slug + ".bottleneck.json")
            with open(path, "w") as f:
                json.dump(analyze_report(payload), f, indent=2)
                f.write("\n")
