"""Ablation: path sensitivity on vs off.

The paper's §2 argument: without path sensitivity the checker either
over-approximates (warnings on infeasible paths -- false positives) or is
useless.  Disabling the constraint checks (a Graspan-style, purely
grammar-guided closure) must strictly increase reported warnings on the
seeded subjects while the path-sensitive run matches the ground truth.
"""

from benchmarks.helpers import emit, grapple_run, subject
from repro.workloads import classify_report

SUBJECT = "zookeeper"


def test_ablation_path_sensitivity(benchmark, capsys):
    def collect():
        _s, sensitive = grapple_run(SUBJECT, path_sensitive=True)
        _s, insensitive = grapple_run(SUBJECT, path_sensitive=False)
        return sensitive, insensitive

    sensitive, insensitive = benchmark.pedantic(collect, rounds=1,
                                                iterations=1)
    subj = subject(SUBJECT)
    cls_on = classify_report(subj.seeds, sensitive.report)
    cls_off = classify_report(subj.seeds, insensitive.report)

    tp_on, fp_on = cls_on.totals()
    tp_off, fp_off = cls_off.totals()
    spurious_off = fp_off + len(cls_off.unexpected)
    spurious_on = fp_on + len(cls_on.unexpected)

    lines = [
        f"{'configuration':<22}{'warnings':>10}{'TP':>6}{'FP+unexpected':>15}"
        f"{'SMT time':>10}",
        f"{'path-sensitive':<22}{len(sensitive.report):>10}{tp_on:>6}"
        f"{spurious_on:>15}{sensitive.stats.smt_time:>9.2f}s",
        f"{'path-insensitive':<22}{len(insensitive.report):>10}{tp_off:>6}"
        f"{spurious_off:>15}{insensitive.stats.smt_time:>9.2f}s",
        "\nshape: dropping path sensitivity keeps the true bugs but adds"
        " spurious warnings (the paper's motivation for constraints).",
    ]
    emit("Ablation: path sensitivity", lines, capsys)

    assert tp_off >= tp_on  # over-approximation never loses true bugs
    assert spurious_off > spurious_on  # ... but hallucinates extra ones
    assert insensitive.stats.smt_time <= sensitive.stats.smt_time
