"""Pre-closure reduction benchmark: ``--reduce`` on vs. off.

Runs the full pipeline twice on the ``hadoop`` subject at scale 4 with a
1 MiB budget (the store-stressing configuration shared with
``bench_columnar``): once with the :mod:`repro.sa` reductions disabled
and once enabled.  Reports, per mode, the closure time and the number of
input edges handed to each phase's closure, plus the reduction counters
-- and asserts the two modes produce the identical canonical warning set
(the reductions' safety contract).

Writes ``BENCH_reduction.json`` at the repository root.

Usage::

    PYTHONPATH=src python benchmarks/bench_reduction.py         # measure + report
    PYTHONPATH=src python benchmarks/bench_reduction.py --tiny  # CI smoke (scale 0.5)
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SUBJECT = "hadoop"
SCALE = 4.0
MEMORY_BUDGET_MB = 1
ROUNDS = 3

TINY_SCALE = 0.5
TINY_BUDGET_MB = 4

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(ROOT, "BENCH_reduction.json")


def _measure_in_this_process(scale: float, budget_mb: int,
                             reduce: bool) -> dict:
    from repro import (
        EngineOptions,
        Grapple,
        GrappleOptions,
        default_checkers,
    )
    from repro.workloads import build_subject

    source = build_subject(SUBJECT, scale=scale).source
    fsms = [c.fsm for c in default_checkers()]
    options = GrappleOptions(
        reduce=reduce,
        engine=EngineOptions(memory_budget=budget_mb << 20, workers=1),
    )
    run = Grapple(source, fsms, options).run()
    entry = {
        "reduce": reduce,
        "closure_s": round(run.computation_time, 3),
        "total_s": round(run.total_time, 3),
        "alias_edges_in": run.alias_phase.engine_result.stats.edges_before,
        "dataflow_edges_in":
            run.dataflow_phase.engine_result.stats.edges_before,
        "edges_after": run.stats.edges_after,
        "pairs_processed": run.stats.pairs_processed,
        "constraints_solved": run.stats.constraints_solved,
        "warnings": len(run.report.warnings),
        "fingerprint": sorted(
            (w.checker, w.kind, w.site, w.state, w.func, w.line)
            for w in run.report.warnings
        ),
    }
    if run.reduction is not None:
        entry["reduction"] = run.reduction.as_dict()
    return entry


def _measure_in_subprocess(scale: float, budget_mb: int,
                           reduce: bool) -> dict:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--one", str(scale),
         str(budget_mb), "1" if reduce else "0"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def collect(scale: float = SCALE, budget_mb: int = MEMORY_BUDGET_MB,
            rounds: int = ROUNDS) -> dict:
    off_runs = [_measure_in_subprocess(scale, budget_mb, False)
                for _ in range(rounds)]
    on_runs = [_measure_in_subprocess(scale, budget_mb, True)
               for _ in range(rounds)]
    fingerprint = off_runs[0]["fingerprint"]
    for entry in off_runs + on_runs:
        assert entry["fingerprint"] == fingerprint, (
            "reduction changed the canonical warning set"
        )
        entry.pop("fingerprint")
    off = min(off_runs, key=lambda entry: entry["closure_s"])
    on = min(on_runs, key=lambda entry: entry["closure_s"])
    edges_off = off["dataflow_edges_in"]
    edges_on = on["dataflow_edges_in"]
    return {
        "subject": SUBJECT,
        "scale": scale,
        "memory_budget_mb": budget_mb,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "warnings": off["warnings"],
        "reports_identical": True,
        "off": off,
        "on": on,
        "closure_s_off": [entry["closure_s"] for entry in off_runs],
        "closure_s_on": [entry["closure_s"] for entry in on_runs],
        "dataflow_edge_reduction": round(
            1.0 - edges_on / edges_off, 4
        ) if edges_off else 0.0,
        "closure_speedup": round(
            off["closure_s"] / on["closure_s"], 3
        ) if on["closure_s"] else 0.0,
    }


def _write_report(report: dict) -> None:
    with open(OUTPUT, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")


def measure_current() -> dict:
    report = collect()
    _write_report(report)
    return report


def smoke() -> dict:
    """Tiny-scale on/off comparison for CI: correctness, not timing."""
    report = collect(scale=TINY_SCALE, budget_mb=TINY_BUDGET_MB, rounds=1)
    assert report["warnings"] > 0, "tiny run produced no findings"
    assert report["dataflow_edge_reduction"] > 0, (
        "reduction removed no dataflow edges"
    )
    _write_report(report)
    return report


if __name__ == "__main__":
    if len(sys.argv) == 5 and sys.argv[1] == "--one":
        print(json.dumps(_measure_in_this_process(
            float(sys.argv[2]), int(sys.argv[3]), sys.argv[4] == "1"
        )))
    elif "--tiny" in sys.argv:
        print(json.dumps(smoke(), indent=2))
    else:
        print(json.dumps(measure_current(), indent=2))
