"""Table 3: Grapple's performance.

Paper columns: #V, #EB (edges before computation), #EA (edges after),
PT (preprocessing time), CT (computation time), TT (total).  Absolute
numbers are ~1000x smaller than the paper's (Python engine, synthetic
subjects); the shapes to check are edge growth (~2x during computation)
and HBase being the by-far-slowest subject.
"""

import pytest

from benchmarks.helpers import (
    SUBJECT_NAMES,
    emit,
    format_duration,
    grapple_run,
)


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_table3_subject(benchmark, name):
    subj, run = benchmark.pedantic(
        lambda: grapple_run(name), rounds=1, iterations=1
    )
    stats = run.stats
    assert stats.edges_after > stats.edges_before


def test_table3_summary(benchmark, capsys):
    runs = benchmark.pedantic(
        lambda: {name: grapple_run(name) for name in SUBJECT_NAMES},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'Subject':<11}{'#V':>9}{'#EB':>10}{'#EA':>10}"
        f"{'PT':>9}{'CT':>10}{'TT':>10}"
    ]
    totals = {}
    for name in SUBJECT_NAMES:
        _subj, run = runs[name]
        stats = run.stats
        lines.append(
            f"{name:<11}{stats.vertices:>9}{stats.edges_before:>10}"
            f"{stats.edges_after:>10}"
            f"{format_duration(run.preprocess_time):>9}"
            f"{format_duration(run.computation_time):>10}"
            f"{format_duration(run.total_time):>10}"
        )
        totals[name] = run.total_time
    lines.append(
        "\nshape checks: edges roughly double during computation;"
        " hbase is the slowest subject by a wide margin"
        " (paper: 33h51m vs 53m-1h54m)."
    )
    emit("Table 3: Grapple performance", lines, capsys)

    for name in SUBJECT_NAMES:
        _subj, run = runs[name]
        stats = run.stats
        growth = stats.edges_after / stats.edges_before
        assert 1.3 <= growth <= 5.0, (name, growth)
    assert totals["hbase"] == max(totals.values())
    assert totals["hbase"] >= 2 * min(totals.values())
