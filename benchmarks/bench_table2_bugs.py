"""Table 2: bugs reported per checker (TP / FP).

Paper: 376 warnings total across the four checkers and four subjects, 17
of them false positives.  The synthetic subjects seed exactly that mix;
this bench runs all four checkers on every subject and scores warnings
against the seeded ground truth.
"""

import pytest

from benchmarks.helpers import SUBJECT_NAMES, classification, emit, grapple_run

CHECKERS = ("io", "lock", "exception", "socket")

# Paper Table 2: (TP, FP) per checker, per subject.
PAPER = {
    "zookeeper": {"io": (2, 0), "lock": (0, 0), "exception": (59, 0), "socket": (4, 0)},
    "hadoop": {"io": (0, 0), "lock": (0, 0), "exception": (54, 2), "socket": (0, 0)},
    "hdfs": {"io": (1, 1), "lock": (1, 0), "exception": (43, 3), "socket": (4, 1)},
    "hbase": {"io": (15, 2), "lock": (0, 0), "exception": (176, 8), "socket": (0, 0)},
}


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_table2_subject(benchmark, name):
    """Per-subject run (timed once; results consumed by the summary)."""
    subj, run = benchmark.pedantic(
        lambda: grapple_run(name), rounds=1, iterations=1
    )
    assert len(run.report) > 0


def test_table2_summary(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: {name: classification(name) for name in SUBJECT_NAMES},
        rounds=1,
        iterations=1,
    )
    header = f"{'Checker':<11}" + "".join(
        f"{c + ' TP':>14}{'FP':>5}" for c in CHECKERS
    ) + f"{'total TP':>11}{'FP':>5}"
    lines = [header]
    grand_tp = grand_fp = 0
    for name in SUBJECT_NAMES:
        result = results[name]
        row = f"{name:<11}"
        total_tp = total_fp = 0
        for checker in CHECKERS:
            tp, fp = result.row(checker)
            row += f"{tp:>14}{fp:>5}"
            total_tp += tp
            total_fp += fp
        row += f"{total_tp:>11}{total_fp:>5}"
        lines.append(row)
        grand_tp += total_tp
        grand_fp += total_fp

        # Shape assertions: exactly the paper's per-checker counts, no
        # missed seeds, no warnings outside seeded code.
        for checker in CHECKERS:
            assert result.row(checker) == PAPER[name][checker], (
                name, checker, result.row(checker)
            )
        assert not result.missed, (name, result.missed)
        assert not result.unexpected, (name, result.unexpected)

    lines.append(
        f"\ntotal warnings: {grand_tp + grand_fp}"
        f" (paper: 376), false positives: {grand_fp} (paper: 17),"
        f" FP rate: {grand_fp / (grand_tp + grand_fp):.1%} (paper: 4.5%)"
    )
    emit("Table 2: bugs reported per checker", lines, capsys)

    assert grand_tp + grand_fp == 376
    assert grand_fp == 17
