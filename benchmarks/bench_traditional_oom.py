"""§5.3: the traditional (non-systemised) implementation runs out of memory.

"This implementation could not successfully analyze any program in our
set -- it ran out of memory quickly after several iterations."  The
in-memory worklist checker, holding full constraint objects on every edge
and fact, is given the scaled equivalent of the paper's 16 GB and must
OOM on all four subjects -- while Grapple, with the same budget for its
in-memory partitions, finishes every one.
"""

import pytest

from benchmarks.helpers import (
    MEMORY_BUDGET,
    SUBJECT_NAMES,
    emit,
    format_duration,
    fsms,
    grapple_run,
    subject,
)
from repro.analysis.frontend import compile_source
from repro.baselines import OutOfMemoryError, run_traditional_check

_outcomes: dict = {}


def _traditional(name: str):
    if name not in _outcomes:
        compiled = compile_source(subject(name).source)
        try:
            stats = run_traditional_check(
                compiled, list(fsms()), memory_budget=MEMORY_BUDGET
            )
            _outcomes[name] = ("completed", stats)
        except OutOfMemoryError as error:
            _outcomes[name] = ("OOM", error.stats)
    return _outcomes[name]


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_traditional_ooms(benchmark, name):
    outcome, stats = benchmark.pedantic(
        lambda: _traditional(name), rounds=1, iterations=1
    )
    assert outcome == "OOM", (
        f"{name}: traditional implementation unexpectedly completed"
        f" within the scaled 16 GB budget"
    )


def test_traditional_summary(benchmark, capsys):
    def collect():
        return {name: _traditional(name) for name in SUBJECT_NAMES}

    outcomes = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        f"{'Subject':<11}{'traditional':>14}{'at (MiB)':>10}"
        f"{'after':>10}{'Grapple':>18}"
    ]
    for name in SUBJECT_NAMES:
        outcome, stats = outcomes[name]
        _subj, run = grapple_run(name)
        lines.append(
            f"{name:<11}{outcome:>14}"
            f"{stats.estimated_bytes / (1 << 20):>10.1f}"
            f"{format_duration(stats.elapsed):>10}"
            f"{'done in ' + format_duration(run.total_time):>18}"
        )
    lines.append(
        f"\nmemory budget: {MEMORY_BUDGET >> 20} MiB (the paper's 16 GB"
        " scaled by the ~1000x graph-size ratio).  Grapple finishes every"
        " subject within the same budget by going out-of-core."
    )
    emit("Traditional baseline: out-of-memory on all subjects", lines, capsys)

    assert all(outcome == "OOM" for outcome, _ in outcomes.values())
