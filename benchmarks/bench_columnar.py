"""Columnar-store closure benchmark: before/after the PR 2 engine rewrite.

Measures single-worker *closure* time (``GrappleRun.computation_time``:
wall clock minus frontend and preprocessing) on the ``hadoop`` subject at
scale 4 with a 1 MiB memory budget -- the same store-stressing
configuration as ``bench_parallel_scaling`` -- and writes the result to
``BENCH_columnar.json`` at the repository root.

The ``baseline`` section of that file was recorded with this harness
*before* the columnar rewrite landed (dict-of-dicts partitions, per-edge
varint decode, synchronous I/O); the default invocation measures the
current engine and reports the speedup against that frozen baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py            # measure + report
    PYTHONPATH=src python benchmarks/bench_columnar.py --baseline # re-freeze baseline
    PYTHONPATH=src python benchmarks/bench_columnar.py --tiny     # CI smoke (scale 0.5)

Each measurement runs in a fresh interpreter; rounds are interleaved-free
here (single configuration) and the best of ``ROUNDS`` is reported (the
engine is deterministic; variance is machine noise).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SUBJECT = "hadoop"
SCALE = 4.0
MEMORY_BUDGET_MB = 1
ROUNDS = 3

TINY_SCALE = 0.5
TINY_BUDGET_MB = 4

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(ROOT, "BENCH_columnar.json")


def _measure_in_this_process(scale: float, budget_mb: int) -> dict:
    from repro import (
        EngineOptions,
        Grapple,
        GrappleOptions,
        default_checkers,
    )
    from repro.workloads import build_subject

    source = build_subject(SUBJECT, scale=scale).source
    fsms = [c.fsm for c in default_checkers()]
    options = GrappleOptions(
        engine=EngineOptions(memory_budget=budget_mb << 20, workers=1)
    )
    run = Grapple(source, fsms, options).run()
    stats = run.stats
    entry = {
        "closure_s": round(run.computation_time, 3),
        "total_s": round(run.total_time, 3),
        "pairs_processed": stats.pairs_processed,
        "edges_after": stats.edges_after,
        "warnings": len(run.report.warnings),
        "breakdown": {k: round(v, 4) for k, v in stats.breakdown().items()},
        "fingerprint": sorted(
            (w.checker, w.kind, w.site, w.state) for w in run.report.warnings
        ),
    }
    for name in ("prefetch_hits", "prefetch_misses", "join_batches",
                 "join_probes", "spill_frames", "spill_bytes",
                 "kernel_batches", "batch_fill", "feasibility_groups",
                 "group_hits"):
        if hasattr(stats, name):
            entry[name] = getattr(stats, name)
    if hasattr(stats, "prefetch_hit_rate"):
        entry["prefetch_hit_rate"] = round(stats.prefetch_hit_rate, 4)
    # Full structured export (counters/gauges/time split) -- metrics
    # histograms stay off above so the timed closure is the undisturbed
    # engine; the report simply reads the stats the run kept anyway.
    entry["report"] = run.run_report(subject=SUBJECT)
    return entry


def _measure_in_subprocess(scale: float, budget_mb: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--one", str(scale),
         str(budget_mb)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def collect(rounds: int = ROUNDS) -> dict:
    runs = [_measure_in_subprocess(SCALE, MEMORY_BUDGET_MB)
            for _ in range(rounds)]
    reference = runs[0]["fingerprint"]
    for entry in runs:
        assert entry["fingerprint"] == reference, (
            "engine is not deterministic across rounds"
        )
        entry.pop("fingerprint")
    best = min(runs, key=lambda entry: entry["closure_s"])
    return {
        "subject": SUBJECT,
        "scale": SCALE,
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "rounds": rounds,
        "cpu_count": os.cpu_count(),
        "closure_s": [entry["closure_s"] for entry in runs],
        "best": best,
    }


def _load_report() -> dict:
    if os.path.exists(OUTPUT):
        with open(OUTPUT) as f:
            return json.load(f)
    return {}


def _write_report(report: dict) -> None:
    with open(OUTPUT, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")


def freeze_baseline() -> dict:
    report = _load_report()
    report["baseline"] = collect()
    report["baseline"]["note"] = (
        "pre-columnar engine (dict partitions, per-edge varint decode,"
        " synchronous I/O)"
    )
    _write_report(report)
    return report


def measure_current() -> dict:
    report = _load_report()
    report["current"] = collect()
    baseline = report.get("baseline")
    if baseline:
        report["closure_speedup_vs_baseline"] = round(
            baseline["best"]["closure_s"] / report["current"]["best"]["closure_s"],
            3,
        )
    _write_report(report)
    return report


#: Single-worker prefetch hit rate recorded with the lookahead depth of 2
#: (before ``EngineOptions.prefetch_depth`` deepened it to 4): 4 of 14
#: loads were served from the background reader.
PR4_PREFETCH_HIT_RATE = 0.286


def smoke() -> dict:
    """Tiny-scale end-to-end exercise for CI: no timings recorded."""
    entry = _measure_in_subprocess(TINY_SCALE, TINY_BUDGET_MB)
    assert entry["warnings"] > 0, "tiny run produced no findings"
    assert entry.get("kernel_batches", 0) > 0, (
        "batched closure kernel never engaged (kernel_batches == 0)"
    )
    assert entry["batch_fill"] >= entry["kernel_batches"]
    assert entry["group_hits"] > 0, "grouped feasibility produced no hits"
    loads = entry.get("prefetch_hits", 0) + entry.get("prefetch_misses", 0)
    if loads:
        assert entry["prefetch_hit_rate"] > PR4_PREFETCH_HIT_RATE, (
            f"prefetch hit rate {entry['prefetch_hit_rate']} regressed below"
            f" the depth-2 baseline {PR4_PREFETCH_HIT_RATE}"
        )
    sys.path.insert(0, os.path.join(ROOT, "src"))
    from repro.obs.report import validate_run_report

    errors = validate_run_report(entry["report"])
    assert not errors, f"embedded run report failed validation: {errors}"
    return entry


if __name__ == "__main__":
    if len(sys.argv) == 4 and sys.argv[1] == "--one":
        print(json.dumps(
            _measure_in_this_process(float(sys.argv[2]), int(sys.argv[3]))
        ))
    elif "--baseline" in sys.argv:
        print(json.dumps(freeze_baseline(), indent=2))
    elif "--tiny" in sys.argv:
        print(json.dumps(smoke(), indent=2))
    else:
        print(json.dumps(measure_current(), indent=2))
