"""Table 1: characteristics of subject programs.

Paper row format: Subject | Version | #LoC | Description.  Our subjects
are synthetic stand-ins whose relative sizes follow the paper's; the
table reports both the generated line counts and the paper's originals.
"""

from benchmarks.helpers import SUBJECT_NAMES, emit, subject


def test_table1_subject_characteristics(benchmark, capsys):
    subjects = benchmark.pedantic(
        lambda: [subject(name) for name in SUBJECT_NAMES],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'Subject':<12}{'Version':<10}{'#LoC':>8}{'(paper)':>10}"
        f"{'Modules':>9}  Description"
    ]
    for subj in subjects:
        lines.append(
            f"{subj.name:<12}{subj.version:<10}{subj.loc:>8}"
            f"{subj.paper_loc:>10}{subj.module_count:>9}  {subj.description}"
        )
    emit("Table 1: characteristics of subject programs", lines, capsys)

    locs = {s.name: s.loc for s in subjects}
    # Relative ordering must match the paper's Table 1.
    assert locs["zookeeper"] < locs["hdfs"] <= locs["hadoop"] < locs["hbase"]
