"""Ablation: analysis cost vs subject scale.

The paper's headline claim is *scalable* checking: cost should grow
near-linearly with the code size rather than exploding.  This sweep runs
the full pipeline on the ZooKeeper profile at several scales and reports
edges and wall-clock per scale; the assertion allows mildly super-linear
growth but rejects a blow-up.
"""

from benchmarks.helpers import MEMORY_BUDGET, emit, format_duration, fsms
from repro import EngineOptions, Grapple, GrappleOptions
from repro.workloads import build_subject, classify_report

# Sweep upward: below scale 1 the constant seeded-bug core dominates the
# subject, so the interesting growth direction is padding *up*.
SCALES = (1.0, 2.0, 4.0)


def _run(scale: float):
    subject = build_subject("zookeeper", scale=scale)
    options = GrappleOptions(engine=EngineOptions(memory_budget=MEMORY_BUDGET))
    run = Grapple(subject.source, list(fsms()), options).run()
    return subject, run


def test_ablation_scale_sweep(benchmark, capsys):
    results = benchmark.pedantic(
        lambda: {scale: _run(scale) for scale in SCALES},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'scale':>7}{'LoC':>8}{'#EB':>10}{'#EA':>10}{'time':>10}"
        f"{'TP':>5}{'FP':>5}"
    ]
    measures = {}
    for scale in SCALES:
        subject, run = results[scale]
        cls = classify_report(subject.seeds, run.report)
        tp, fp = cls.totals()
        stats = run.stats
        measures[scale] = (subject.loc, stats.edges_after, run.total_time)
        lines.append(
            f"{scale:>7}{subject.loc:>8}{stats.edges_before:>10}"
            f"{stats.edges_after:>10}{format_duration(run.total_time):>10}"
            f"{tp:>5}{fp:>5}"
        )
        assert not cls.missed and not cls.unexpected, scale
    lines.append(
        "\nshape: edges and time grow with code size without blow-up"
        " (the bug-pattern core is constant across scales; padding adds"
        " clean code).  Small deltas are noisy -- module composition is"
        " randomised and exception-heavy modules dominate graph size --"
        " so the trend reads off the endpoints."
    )
    emit("Ablation: cost vs subject scale", lines, capsys)

    loc_small, edges_small, _t = measures[SCALES[0]]
    loc_big, edges_big, _t2 = measures[SCALES[-1]]
    loc_ratio = loc_big / loc_small
    edge_ratio = edges_big / edges_small
    # Edge growth may exceed LoC growth (cloning), but must stay within a
    # small polynomial factor of it.
    assert edge_ratio <= loc_ratio ** 2, (edge_ratio, loc_ratio)
