"""Figure 9: performance breakdown.

Per subject, the share of total analysis time spent on I/O, constraint
encoding/decoding (lookup), SMT solving, and in-memory edge computation.
Paper shapes: SMT solving plus edge computation dominate everywhere; I/O
is a few percent; one subject (Hadoop) is computation-dominated while the
others are solver-dominated.
"""

from benchmarks.helpers import SUBJECT_NAMES, emit, grapple_run


def _ascii_bar(fraction: float, width: int = 32) -> str:
    return "#" * max(1, round(fraction * width)) if fraction > 0 else ""


def test_fig9_breakdown(benchmark, capsys):
    runs = benchmark.pedantic(
        lambda: {name: grapple_run(name) for name in SUBJECT_NAMES},
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'Subject':<11}{'I/O':>7}{'Encode':>8}{'SMT':>7}{'Compute':>9}"
    ]
    breakdowns = {}
    for name in SUBJECT_NAMES:
        _subj, run = runs[name]
        b = run.stats.breakdown()
        breakdowns[name] = b
        lines.append(
            f"{name:<11}{b['io']:>6.1%}{b['encode']:>8.1%}"
            f"{b['smt']:>7.1%}{b['compute']:>9.1%}"
        )
    lines.append("")
    for name in SUBJECT_NAMES:
        b = breakdowns[name]
        lines.append(f"{name:<11} smt     |{_ascii_bar(b['smt'])}")
        lines.append(f"{'':<11} compute |{_ascii_bar(b['compute'])}")
    lines.append(
        "\nshape checks: SMT + edge computation dominate; I/O stays small"
        " (paper: 1-4.2%); encode/decode is the Python-side of the"
        " paper's 0.2-0.8% constraint lookup."
    )
    emit("Figure 9: performance breakdown", lines, capsys)

    for name, b in breakdowns.items():
        assert b["smt"] + b["compute"] >= 0.45, (name, b)
        assert b["io"] <= 0.35, (name, b)
        assert abs(sum(b.values()) - 1.0) < 1e-6
