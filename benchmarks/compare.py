#!/usr/bin/env python3
"""Bench regression gate: diff a fresh BENCH_*.json against a baseline.

Usage::

    python benchmarks/compare.py FRESH BASELINE [--threshold 0.15]
        [--abs-floor 0.05] [--metric-threshold PATTERN=FRACTION ...]

Walks both documents and compares leaf values by dotted path, with
per-kind rules tuned for what each metric means:

* ``warnings`` counts gate **exactly**: the checkers are deterministic,
  so any drift is a correctness regression, not noise.
* ``reduction.*`` and ``scopes.*`` counters (branches folded, dead
  stores removed, ``scope_resolutions``, ``unresolved_refs``, ...) gate
  **exactly** for the same reason: the sa passes and the scope-graph
  resolver are deterministic functions of the subject.
* keys ending ``_s`` (seconds) gate **lower-is-better**: a regression is
  ``fresh > base * (1 + threshold)`` AND ``fresh - base > abs-floor``
  (the absolute floor keeps millisecond-scale metrics from tripping on
  scheduler noise).  Improvements always pass.
* paths containing ``speedup`` gate **higher-is-better**, mirrored.
* ``null`` on either side means *not applicable* (e.g. the serial row's
  parallel-only counters) -- skipped, never a regression.
* lists (raw per-round samples) and everything else -- counters, flags,
  host facts like ``cpu_count`` -- are reported as drift but do not
  gate: they vary legitimately across hosts and workloads, and the
  metrics above already gate what they protect.

``--metric-threshold PATTERN=FRACTION`` overrides the relative threshold
for any path containing PATTERN (first match wins, in argument order) --
CI uses a looser wall threshold when the baseline was measured on
different hardware.  Exit status: 0 clean, 1 regression, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

DEFAULT_THRESHOLD = 0.15
DEFAULT_ABS_FLOOR = 0.05


def walk(doc, prefix: str = "") -> dict:
    """Flatten a JSON document to {dotted.path: leaf value}."""
    leaves: dict = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            leaves.update(walk(value, path))
    else:
        leaves[prefix] = doc
    return leaves


def _threshold_for(path: str, default: float, overrides: list) -> float:
    for pattern, value in overrides:
        if pattern in path:
            return value
    return default


def _deterministic_section(path: str) -> bool:
    """Whether a path lives in an exactly-gated deterministic section
    (sa reduction counters, scope-graph resolution counters)."""
    parts = path.split(".")
    return "reduction" in parts or "scopes" in parts


def compare(
    fresh: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    abs_floor: float = DEFAULT_ABS_FLOOR,
    overrides: list | None = None,
) -> tuple[list[str], list[str]]:
    """(regressions, notes) between two flattened-comparable documents."""
    overrides = overrides or []
    fresh_leaves = walk(fresh)
    base_leaves = walk(baseline)
    regressions: list[str] = []
    notes: list[str] = []

    for path in sorted(base_leaves):
        base = base_leaves[path]
        key = path.rsplit(".", 1)[-1]
        exact = key == "warnings" or _deterministic_section(path)
        gated = exact or key.endswith("_s") or "speedup" in path
        if path not in fresh_leaves:
            (regressions if gated else notes).append(
                f"{path}: missing from fresh results (baseline {base!r})"
            )
            continue
        new = fresh_leaves[path]
        if base is None or new is None:
            if (base is None) != (new is None):
                notes.append(f"{path}: n/a changed ({base!r} -> {new!r})")
            continue
        if isinstance(base, list) or isinstance(new, list):
            continue  # raw per-round samples; best_s gates these
        if isinstance(base, bool) or isinstance(new, bool):
            if new != base:
                notes.append(f"{path}: {base!r} -> {new!r}")
            continue
        if exact:
            if new != base:
                what = (
                    "deterministic warning count" if key == "warnings"
                    else "deterministic counter"
                )
                regressions.append(
                    f"{path}: {what} changed {base} -> {new}"
                    " (must be identical run to run)"
                )
            continue
        if not isinstance(base, (int, float)) or not isinstance(new, (int, float)):
            if new != base:
                notes.append(f"{path}: {base!r} -> {new!r}")
            continue
        limit = _threshold_for(path, threshold, overrides)
        if key.endswith("_s"):
            if new > base * (1 + limit) and new - base > abs_floor:
                regressions.append(
                    f"{path}: {base} -> {new}"
                    f" (+{(new - base) / base:.0%}, limit +{limit:.0%})"
                )
            elif new != base:
                notes.append(f"{path}: {base} -> {new}")
            continue
        if "speedup" in path:
            if new < base * (1 - limit) and base - new > abs_floor:
                regressions.append(
                    f"{path}: {base} -> {new}"
                    f" ({(new - base) / base:.0%}, limit -{limit:.0%})"
                )
            elif new != base:
                notes.append(f"{path}: {base} -> {new}")
            continue
        if new != base:
            notes.append(f"{path}: {base} -> {new}")

    for path in sorted(set(walk(fresh)) - set(base_leaves)):
        notes.append(f"{path}: new metric (no baseline)")
    return regressions, notes


def _parse_override(text: str) -> tuple[str, float]:
    pattern, _, value = text.partition("=")
    if not pattern or not value:
        raise argparse.ArgumentTypeError(
            f"expected PATTERN=FRACTION, got {text!r}"
        )
    return pattern, float(value)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="benchmarks/compare.py",
        description="diff a fresh bench JSON against a committed baseline",
    )
    parser.add_argument("fresh", help="freshly measured BENCH_*.json")
    parser.add_argument("baseline", help="committed baseline BENCH_*.json")
    parser.add_argument(
        "--threshold", type=float, default=DEFAULT_THRESHOLD,
        help=f"relative noise threshold (default {DEFAULT_THRESHOLD})",
    )
    parser.add_argument(
        "--abs-floor", type=float, default=DEFAULT_ABS_FLOOR,
        help="absolute floor in seconds below which timing drift never"
             f" gates (default {DEFAULT_ABS_FLOOR})",
    )
    parser.add_argument(
        "--metric-threshold", action="append", default=[],
        type=_parse_override, metavar="PATTERN=FRACTION",
        help="override the threshold for paths containing PATTERN",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress non-gating drift notes"
    )
    args = parser.parse_args(argv)

    try:
        with open(args.fresh) as f:
            fresh = json.load(f)
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"compare: cannot load inputs: {exc}", file=sys.stderr)
        return 2

    regressions, notes = compare(
        fresh, baseline,
        threshold=args.threshold,
        abs_floor=args.abs_floor,
        overrides=args.metric_threshold,
    )
    if notes and not args.quiet:
        print(f"-- {len(notes)} non-gating change(s):")
        for note in notes:
            print(f"   {note}")
    if regressions:
        print(f"REGRESSION: {len(regressions)} gated metric(s) failed:")
        for regression in regressions:
            print(f"   {regression}")
        return 1
    print(f"ok: no regressions vs {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
