"""Ablation: memory budget vs partition count and I/O share.

The out-of-core design's tradeoff: a smaller in-memory budget means more,
smaller partitions, more loading/flushing per fixpoint, and a larger I/O
share -- but identical analysis results.
"""

from benchmarks.helpers import emit, format_duration, grapple_run

SUBJECT = "zookeeper"
BUDGETS = (2 << 20, 16 << 20, 64 << 20)


def test_ablation_memory_budget(benchmark, capsys):
    def collect():
        return {
            budget: grapple_run(SUBJECT, memory_budget=budget)
            for budget in BUDGETS
        }

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        f"{'budget':>10}{'#partitions':>13}{'#pairs':>9}{'I/O share':>11}"
        f"{'time':>10}{'warnings':>10}"
    ]
    partitions = {}
    warnings = {}
    for budget in BUDGETS:
        _s, run = runs[budget]
        stats = run.stats
        partitions[budget] = stats.final_partitions
        warnings[budget] = {
            (w.checker, w.func, w.kind) for w in run.report.warnings
        }
        lines.append(
            f"{budget >> 20:>8}MB{stats.final_partitions:>13}"
            f"{stats.pairs_processed:>9}{stats.breakdown()['io']:>11.1%}"
            f"{format_duration(run.total_time):>10}{len(run.report):>10}"
        )
    lines.append(
        "\nshape: shrinking the budget multiplies partitions and pair"
        " iterations; the report is identical at every setting."
    )
    emit("Ablation: memory budget", lines, capsys)

    assert partitions[BUDGETS[0]] >= partitions[BUDGETS[-1]]
    first = warnings[BUDGETS[0]]
    assert all(w == first for w in warnings.values())
