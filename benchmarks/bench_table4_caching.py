"""Table 4: effectiveness of constraint caching.

Paper columns: #Const (constraints solved during computation), #Hits,
hit Rate, TOC (constraint-solving time without caching), TWC (with
caching), Saving = 1 - TWC/TOC.  Shapes: hit rates of 60-80% and large
savings (64-87%) from memoisation.
"""

import pytest

from benchmarks.helpers import SUBJECT_NAMES, emit, grapple_run


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_table4_uncached_run(benchmark, name):
    """The TOC measurement: same analysis with memoisation disabled."""
    _subj, run = benchmark.pedantic(
        lambda: grapple_run(name, enable_cache=False, tag="t4"),
        rounds=1,
        iterations=1,
    )
    assert run.stats.cache_hits == 0


def test_table4_summary(benchmark, capsys):
    def collect():
        # Dedicated same-warmth runs: the uncached runs above already
        # warmed the process, so the cached measurements here are not
        # penalised by session-start costs.
        rows = {}
        for name in SUBJECT_NAMES:
            _s, uncached = grapple_run(name, enable_cache=False, tag="t4")
            _s, cached = grapple_run(name, enable_cache=True, tag="t4")
            rows[name] = (cached.stats, uncached.stats)
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        f"{'Subject':<11}{'#Const':>9}{'#Hits':>9}{'Rate':>7}"
        f"{'#SolvedOC':>11}{'#SolvedWC':>11}"
        f"{'TOC(s)':>9}{'TWC(s)':>9}{'Saving':>8}"
    ]
    for name in SUBJECT_NAMES:
        cached, uncached = rows[name]
        toc = uncached.feasibility_time
        twc = cached.feasibility_time
        saving = 1 - twc / toc if toc > 0 else 0.0
        lines.append(
            f"{name:<11}{cached.constraint_queries:>9}"
            f"{cached.cache_hits:>9}{cached.cache_hit_rate:>7.1%}"
            f"{uncached.constraints_solved:>11}"
            f"{cached.constraints_solved:>11}"
            f"{toc:>9.2f}{twc:>9.2f}{saving:>8.1%}"
        )
    lines.append(
        "\nshape checks: hit rates around the paper's 60-80% band; the"
        " cache eliminates the majority of lookup+solve work (paper saved"
        " 64-87% of solving *time*; our Fourier-Motzkin cost grows with"
        " constraint size, so the time saving tracks the mix of repeated"
        " constraints rather than the hit rate -- see EXPERIMENTS.md)."
    )
    emit("Table 4: effectiveness of caching", lines, capsys)

    for name in SUBJECT_NAMES:
        cached, uncached = rows[name]
        assert 0.4 <= cached.cache_hit_rate <= 0.95, (
            name, cached.cache_hit_rate
        )
        # Memoisation must eliminate a large fraction of solver calls.
        # (The *time* saving is also printed, but asserted with slack:
        # wall-clock shares jitter under machine load.)
        assert cached.constraints_solved < 0.7 * uncached.constraints_solved
        assert cached.feasibility_time <= uncached.feasibility_time * 1.6
