"""Parallel engine scaling: wall-clock vs. worker count.

Runs the end-to-end pipeline (``Grapple.run``) on the ``hadoop`` subject
with workers 1 (the serial engine), 2, and 4, and writes the measured
wall-clocks to ``BENCH_parallel_scaling.json`` at the repository root so
the perf trajectory is tracked across PRs.

Worker counts above 1 force ``parallel_dispatch="fork"`` so the bench
measures the real pool data plane (shared-memory columns, stratified
waves, steal refills) rather than the inline fallback that ``"auto"``
silently selects on small machines.  That makes host capacity part of
the result: every configuration records the machine's real
``os.cpu_count()`` and an ``oversubscribed`` flag (workers > cores), a
run on an undersized host prints a warning, and the report carries the
flags so a "speedup" measured with 4 workers time-slicing 1 core is
never mistaken for real scaling.

The configuration deliberately stresses the partition machinery: a large
scale and a tight memory budget give the store a few dozen partitions,
which is where the wave protocol's semi-naive delta seeding and the
coordinator's join-index pair skipping pay off.  Every measurement runs
in a fresh interpreter (heap growth from earlier runs would otherwise
tax later ones), rounds are interleaved across worker counts so clock
drift hits every configuration equally, and per-worker wall-clock is the
best of ``ROUNDS`` runs (the engines are deterministic; the variance is
all machine noise, so min is the honest estimator).

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_parallel_scaling.py``)
or under pytest with the rest of the bench suite.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SUBJECT = "hadoop"
SCALE = 4.0
MEMORY_BUDGET_MB = 1
WORKER_COUNTS = (1, 2, 4)
ROUNDS = 3

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(ROOT, "BENCH_parallel_scaling.json")


def _measure_in_this_process(workers: int) -> dict:
    """One timed ``Grapple.run`` (subject build excluded from the wall)."""
    import time

    from repro import (
        EngineOptions,
        Grapple,
        GrappleOptions,
        default_checkers,
    )
    from repro.workloads import build_subject

    source = build_subject(SUBJECT, scale=SCALE).source
    fsms = [c.fsm for c in default_checkers()]
    options = GrappleOptions(
        engine=EngineOptions(
            memory_budget=MEMORY_BUDGET_MB << 20,
            workers=workers,
            parallel_dispatch="fork" if workers > 1 else "auto",
        )
    )
    start = time.perf_counter()
    run = Grapple(source, fsms, options).run()
    wall = time.perf_counter() - start
    fingerprint = sorted(
        (w.checker, w.kind, w.site, w.state) for w in run.report.warnings
    )
    stats = run.stats
    # The serial engine never populates the data-plane counters; a hard
    # zero would read as "the workers were idle", so the workers=1 row
    # reports them as null ("not applicable") and compare.py skips them.
    parallel = workers > 1
    return {
        "wall_s": round(wall, 3),
        "pairs_processed": stats.pairs_processed,
        "pairs_stolen": stats.pairs_stolen if parallel else None,
        "shm_publishes": stats.shm_publishes if parallel else None,
        "worker_busy_s": round(stats.worker_busy_s, 3) if parallel else None,
        "worker_idle_s": round(stats.worker_idle_s, 3) if parallel else None,
        "warnings": len(run.report.warnings),
        "fingerprint": fingerprint,
    }


def _measure_in_subprocess(workers: int) -> dict:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--one", str(workers)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def collect() -> dict:
    cpu_count = os.cpu_count() or 1
    oversubscribed = [w for w in WORKER_COUNTS if w > cpu_count]
    if oversubscribed:
        print(
            f"bench_parallel_scaling: host has {cpu_count} CPU(s); worker"
            f" counts {oversubscribed} are oversubscribed -- their"
            " speedups measure time-slicing, not parallel scaling",
            file=sys.stderr,
        )
    samples: dict = {workers: [] for workers in WORKER_COUNTS}
    for _ in range(ROUNDS):
        for workers in WORKER_COUNTS:
            samples[workers].append(_measure_in_subprocess(workers))
    reference = samples[WORKER_COUNTS[0]][0]["fingerprint"]
    results: dict = {}
    for workers, runs in samples.items():
        for entry in runs:
            if entry["fingerprint"] != reference:
                raise AssertionError(
                    f"workers={workers} changed the report: parallel"
                    " engine is not deterministic"
                )
        walls = [entry["wall_s"] for entry in runs]
        results[str(workers)] = {
            "wall_s": walls,
            "best_s": min(walls),
            "oversubscribed": workers > cpu_count,
            "pairs_processed": runs[-1]["pairs_processed"],
            "pairs_stolen": runs[-1]["pairs_stolen"],
            "shm_publishes": runs[-1]["shm_publishes"],
            "worker_busy_s": runs[-1]["worker_busy_s"],
            "worker_idle_s": runs[-1]["worker_idle_s"],
            "warnings": runs[-1]["warnings"],
        }
    serial_best = results["1"]["best_s"]
    report = {
        "subject": SUBJECT,
        "scale": SCALE,
        "memory_budget_mb": MEMORY_BUDGET_MB,
        "rounds": ROUNDS,
        "cpu_count": cpu_count,
        "results": results,
        "speedup_vs_serial": {
            str(w): round(serial_best / results[str(w)]["best_s"], 3)
            for w in WORKER_COUNTS
        },
    }
    if oversubscribed:
        report["note"] = (
            f"host has {cpu_count} CPU(s): worker counts {oversubscribed}"
            " are oversubscribed and their speedups do not measure"
            " parallel scaling (see per-config 'oversubscribed' flags)"
        )
    return report


def write_report() -> dict:
    report = collect()
    with open(OUTPUT, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return report


def test_parallel_scaling(capsys):
    report = write_report()
    with capsys.disabled():
        print(f"\n=== Parallel scaling ({SUBJECT}, scale {SCALE}) ===")
        print(f"cpu_count={report['cpu_count']}")
        for workers in WORKER_COUNTS:
            entry = report["results"][str(workers)]
            speedup = report["speedup_vs_serial"][str(workers)]
            flag = " [oversubscribed]" if entry["oversubscribed"] else ""
            stolen = (
                f", {entry['pairs_stolen']} stolen"
                if entry["pairs_stolen"] is not None else ""
            )
            print(
                f"workers={workers}: best {entry['best_s']:.2f}s"
                f" ({speedup:.2f}x vs serial,"
                f" {entry['pairs_processed']} pairs{stolen}){flag}"
            )
    for workers in WORKER_COUNTS:
        assert report["results"][str(workers)]["warnings"] == (
            report["results"]["1"]["warnings"]
        )
    # Oversubscription must be stated, not inferred.
    assert all(
        (w <= report["cpu_count"])
        != report["results"][str(w)]["oversubscribed"]
        for w in WORKER_COUNTS
    )


if __name__ == "__main__":
    if len(sys.argv) == 3 and sys.argv[1] == "--one":
        print(json.dumps(_measure_in_this_process(int(sys.argv[2]))))
    else:
        print(json.dumps(write_report(), indent=2))
