"""Ablation: loop-unroll bound K (paper §3.1 bounds loop iterations).

Larger K makes CFETs (and so the program graph and analysis time) grow,
without changing the verdicts on the seeded subjects -- their bugs do not
depend on iteration counts beyond 1.
"""

from benchmarks.helpers import emit, format_duration, grapple_run, subject
from repro.workloads import classify_report

SUBJECT = "zookeeper"
BOUNDS = (1, 2, 3)


def test_ablation_unroll_bound(benchmark, capsys):
    def collect():
        return {k: grapple_run(SUBJECT, unroll=k) for k in BOUNDS}

    runs = benchmark.pedantic(collect, rounds=1, iterations=1)
    subj = subject(SUBJECT)
    lines = [
        f"{'K':>3}{'#V':>10}{'#EB':>10}{'#EA':>10}{'time':>10}"
        f"{'TP':>5}{'FP':>5}{'missed':>8}"
    ]
    edge_counts = {}
    for k in BOUNDS:
        _s, run = runs[k]
        cls = classify_report(subj.seeds, run.report)
        tp, fp = cls.totals()
        stats = run.stats
        edge_counts[k] = stats.edges_before
        lines.append(
            f"{k:>3}{stats.vertices:>10}{stats.edges_before:>10}"
            f"{stats.edges_after:>10}{format_duration(run.total_time):>10}"
            f"{tp:>5}{fp:>5}{sum(cls.missed.values()):>8}"
        )
        assert not cls.missed, (k, cls.missed)
        assert not cls.unexpected, (k, cls.unexpected)
    lines.append(
        "\nshape: the graph grows monotonically with K while the verdicts"
        " stay exactly the seeded ground truth."
    )
    emit("Ablation: loop unroll bound", lines, capsys)

    assert edge_counts[1] < edge_counts[2] <= edge_counts[3]
