"""Incremental serve daemon: per-edit latency vs. cold-run closure.

Runs the serve engine (``repro.serve``, DESIGN.md §16) on a scaled
``gateway`` workspace and measures two numbers: the cold scan (first
observation of the workspace -- every stratum derived from scratch) and
the per-edit latency (one file changed, one stratum re-derived).  The
headline is their ratio, ``speedup_cold_vs_edit``: the whole point of
the incremental closure is that an edit costs one stratum plus fixed
overhead, not the full workspace, so the ratio must grow with workspace
size.  The acceptance bar for the daemon is >= 10x on this subject.

The scale is deliberately large (``SCALE`` independent clusters, eight
files each): at small scales the fixed per-edit overhead (workspace
poll, state persistence, fragment assembly) dominates and the ratio
says nothing about the closure.  Each measured edit appends a clean
function to one cluster's service file -- digest changes, one stratum
re-runs, and the warning fingerprint is unchanged, which the bench
verifies against a from-scratch run after the edit sequence (the
byte-identical acceptance golden, embedded here so a perf run cannot
quietly diverge from correctness).

Every round runs in a fresh interpreter, ``best_s`` is the min across
rounds (deterministic engines; the variance is machine noise), and the
edit estimator is the min across all edits of all rounds.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_incremental.py``)
or under pytest with the rest of the bench suite.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

SUBJECT = "gateway"
SCALE = 16.0
EDITS = 3
ROUNDS = 3

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT = os.path.join(ROOT, "BENCH_incremental.json")


def _measure_in_this_process() -> dict:
    """One cold scan plus ``EDITS`` single-file edits, all timed."""
    import tempfile
    import time

    from repro.analysis.pipeline import Grapple
    from repro.checkers.checker import pack_checkers
    from repro.serve import ServeEngine
    from repro.workloads.multifile import build_multifile_subject

    fsms = [c.fsm for c in pack_checkers()]
    subject = build_multifile_subject(SUBJECT, scale=SCALE)
    with tempfile.TemporaryDirectory() as tmp:
        workspace = os.path.join(tmp, "ws")
        workdir = os.path.join(tmp, "wd")
        os.makedirs(workspace)
        for path, text in subject.sources.items():
            with open(os.path.join(workspace, path), "w") as f:
                f.write(text)

        engine = ServeEngine(workspace, workdir, fsms)
        start = time.perf_counter()
        cold = engine.scan()
        cold_wall = time.perf_counter() - start

        edit_walls = []
        rechecked = []
        clusters = int(round(SCALE))
        for step in range(EDITS):
            # Spread the edits across clusters so no stratum cache warms
            # a later measurement.
            name = f"g{step % clusters}svc.mini"
            path = os.path.join(workspace, name)
            with open(path) as f:
                text = f.read()
            text += f"func bench_pad{step}(v) {{\n    return v + {step};\n}}\n"
            start = time.perf_counter()
            fragment = engine.edit(name, text)
            edit_walls.append(time.perf_counter() - start)
            rechecked.append(fragment["edit"]["strata_rechecked"])

        fingerprint = sorted(
            (w["checker"], w["kind"], w["site"], w["type_name"],
             w["state"], w["func"], w["line"])
            for w in engine.warnings()
        )
        sources = {
            name: open(os.path.join(workspace, name)).read()
            for name in sorted(os.listdir(workspace))
            if name.endswith(".mini")
        }
        scratch = Grapple(sources, fsms).run()
        scratch_fingerprint = sorted(
            (w.checker, w.kind, w.site, w.type_name, w.state, w.func, w.line)
            for w in scratch.report.warnings
        )
        if fingerprint != scratch_fingerprint:
            raise AssertionError(
                "incremental state diverged from a from-scratch run"
            )
        return {
            "cold_s": round(cold_wall, 3),
            "edit_s": [round(w, 4) for w in edit_walls],
            "strata": cold["edit"]["strata_total"],
            "strata_rechecked": rechecked,
            "warnings": len(fingerprint),
        }


def _measure_in_subprocess() -> dict:
    env = dict(os.environ)
    src = os.path.join(ROOT, "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    out = subprocess.run(
        [sys.executable, os.path.abspath(__file__), "--one"],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def collect() -> dict:
    rounds = [_measure_in_subprocess() for _ in range(ROUNDS)]
    reference = rounds[0]
    for entry in rounds[1:]:
        if entry["warnings"] != reference["warnings"]:
            raise AssertionError(
                "serve daemon warning count varied across rounds:"
                " incremental closure is not deterministic"
            )
    for entry in rounds:
        if any(n > 1 for n in entry["strata_rechecked"]):
            raise AssertionError(
                "a single-file edit re-checked more than one stratum"
            )
    cold_walls = [entry["cold_s"] for entry in rounds]
    edit_walls = [w for entry in rounds for w in entry["edit_s"]]
    cold_best = min(cold_walls)
    edit_best = min(edit_walls)
    return {
        "subject": SUBJECT,
        "scale": SCALE,
        "edits_per_round": EDITS,
        "rounds": ROUNDS,
        "strata": reference["strata"],
        "results": {
            "cold": {
                "wall_s": cold_walls,
                "best_s": cold_best,
                "warnings": reference["warnings"],
            },
            "edit": {
                "wall_s": edit_walls,
                "best_s": edit_best,
                "strata_rechecked_max": max(
                    n for entry in rounds for n in entry["strata_rechecked"]
                ),
            },
        },
        "speedup_cold_vs_edit": round(cold_best / edit_best, 3),
    }


def write_report() -> dict:
    report = collect()
    with open(OUTPUT, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    return report


def test_incremental(capsys):
    report = write_report()
    with capsys.disabled():
        print(f"\n=== Incremental serve ({SUBJECT}, scale {SCALE}) ===")
        cold = report["results"]["cold"]
        edit = report["results"]["edit"]
        print(
            f"cold {cold['best_s']:.3f}s over {report['strata']} strata"
            f" ({cold['warnings']} warnings)"
        )
        print(
            f"edit {edit['best_s']:.3f}s"
            f" -> {report['speedup_cold_vs_edit']:.1f}x vs cold"
        )
    assert report["results"]["edit"]["strata_rechecked_max"] == 1
    # The daemon's reason to exist: an edit must be an order of
    # magnitude cheaper than re-closing the workspace.
    assert report["speedup_cold_vs_edit"] >= 10


if __name__ == "__main__":
    if len(sys.argv) == 2 and sys.argv[1] == "--one":
        print(json.dumps(_measure_in_this_process()))
    else:
        print(json.dumps(write_report(), indent=2))
