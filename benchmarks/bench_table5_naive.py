"""Table 5: interval encodings vs naive string-based constraints.

Paper columns, per subject and per implementation: #Partition,
#Iteration, #Constraint (K), Time.  Shapes: the string-based variant
needs several times more partitions, runs more computational iterations,
solves more constraints, and is far slower; on the largest subject it did
not terminate within the paper's 200-hour budget -- here it gets a scaled
wall-clock budget and is reported as a timeout.
"""

import pytest

from benchmarks.helpers import (
    MEMORY_BUDGET,
    SUBJECT_NAMES,
    emit,
    format_duration,
    fsms,
    grapple_run,
    subject,
)
from repro import EngineOptions, GrappleOptions
from repro.baselines import run_string_based

# Safety-net analogue of the paper's 200-hour cutoff.  At our ~1000x
# smaller scale the string constraints stay short enough that the naive
# engine *does* terminate (the paper's HBase non-termination came from
# constraint strings growing with hundred-million-edge paths); the cutoff
# only guards against pathological regressions, and a timed-out subject is
# reported as ">Ns" like the paper's ">200h".
STRING_TIME_BUDGET = {
    "zookeeper": 300.0,
    "hadoop": 300.0,
    "hdfs": 300.0,
    "hbase": 600.0,
}

# Table 5 uses a tighter in-memory budget than the other tables so the
# representations' *space* difference is what drives partitioning: string
# constraints are several times larger per edge, forcing extra partitions
# and repartitioning, exactly the paper's mechanism.
TABLE5_BUDGET = 2 << 20

_results: dict = {}


def _string_run(name: str):
    if name not in _results:
        subj = subject(name)
        options = GrappleOptions(
            engine=EngineOptions(memory_budget=TABLE5_BUDGET)
        )
        _results[name] = run_string_based(
            subj.source,
            list(fsms()),
            options,
            time_budget=STRING_TIME_BUDGET[name],
        )
    return _results[name]


@pytest.mark.parametrize("name", SUBJECT_NAMES)
def test_table5_string_subject(benchmark, name):
    result = benchmark.pedantic(lambda: _string_run(name), rounds=1,
                                iterations=1)
    assert result.partitions >= 1


def test_table5_summary(benchmark, capsys):
    def collect():
        rows = {}
        for name in SUBJECT_NAMES:
            _subj, grapple = grapple_run(name, memory_budget=TABLE5_BUDGET)
            rows[name] = (grapple.stats, grapple.total_time, _string_run(name))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    lines = [
        f"{'':<11}{'#Partition':>21}{'#Iteration':>21}"
        f"{'#Constraint':>21}{'Time':>23}",
        f"{'Subject':<11}"
        + f"{'Grapple':>11}{'naive':>10}" * 2
        + f"{'Grapple(K)':>11}{'naive(K)':>10}"
        + f"{'Grapple':>12}{'naive':>11}",
    ]
    for name in SUBJECT_NAMES:
        grapple_stats, grapple_time, naive = rows[name]
        naive_time = (
            f">{format_duration(STRING_TIME_BUDGET[name])}"
            if naive.timed_out
            else format_duration(naive.total_time)
        )
        lines.append(
            f"{name:<11}"
            f"{grapple_stats.final_partitions:>11}{naive.partitions:>10}"
            f"{grapple_stats.pairs_processed:>11}{naive.iterations:>10}"
            f"{grapple_stats.constraints_solved / 1000:>11.1f}"
            f"{naive.constraints_solved / 1000:>10.1f}"
            f"{format_duration(grapple_time):>12}{naive_time:>11}"
        )
    lines.append(
        "\nshape checks: the naive representation needs more partitions"
        " and iterations, solves at least as many constraints, and is"
        " substantially slower everywhere (paper: 3-12x, with HBase"
        " >200h)."
    )
    emit("Table 5: comparison with string-based constraints", lines, capsys)

    for name in SUBJECT_NAMES:
        grapple_stats, grapple_time, naive = rows[name]
        assert naive.partitions >= grapple_stats.final_partitions, name
        if naive.timed_out:
            continue
        # Wall-clock with slack (load jitter); iteration/partition counts
        # are the deterministic shape signals.
        assert naive.total_time > 0.9 * grapple_time, name
        assert naive.iterations >= grapple_stats.pairs_processed, name
