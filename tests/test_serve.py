"""The incremental serve daemon (repro.serve, DESIGN.md §16).

The acceptance bar: after a sequence of scripted edits, the daemon's
accumulated state is byte-identical (warnings and TP/FP accounting)
to a from-scratch run over the final sources, while each edit only
re-derives its own stratum.
"""

import json
import os
import random
import subprocess
import sys
import threading
import time

from repro.analysis.pipeline import Grapple
from repro.checkers.checker import pack_checkers
from repro.obs.report import validate_run_report
from repro.serve import Server, ServeEngine, request
from repro.workloads.bugs import classify_report
from repro.workloads.multifile import build_multifile_subject

SCALE = 2.0  # two clusters, 16 files -- plenty of strata, quick tests


def _fsms():
    return [c.fsm for c in pack_checkers()]


def _write_workspace(directory, scale=SCALE):
    subject = build_multifile_subject("gateway", scale=scale)
    os.makedirs(directory, exist_ok=True)
    for path, text in subject.sources.items():
        with open(os.path.join(directory, path), "w") as f:
            f.write(text)
    return subject


def _engine(tmp_path, **kw):
    ws, wd = str(tmp_path / "ws"), str(tmp_path / "wd")
    _write_workspace(ws)
    return ServeEngine(ws, wd, _fsms(), **kw)


def _scratch_warnings(workspace):
    sources = {
        name: open(os.path.join(workspace, name)).read()
        for name in sorted(os.listdir(workspace))
        if name.endswith(".mini")
    }
    run = Grapple(sources, _fsms()).run()
    return run, sorted(
        (w.checker, w.kind, w.site, w.type_name, w.state, w.func, w.line)
        for w in run.report.warnings
    )


def _accumulated(engine):
    return sorted(
        (w["checker"], w["kind"], w["site"], w["type_name"], w["state"],
         w["func"], w["line"])
        for w in engine.warnings()
    )


def test_cold_scan_matches_scratch_and_validates(tmp_path):
    engine = _engine(tmp_path)
    fragment = engine.scan()
    assert validate_run_report(fragment) == []
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch
    assert fragment["warnings"] == len(scratch)
    assert fragment["counters"]["edits_served"] == 1
    assert fragment["edit"]["strata_total"] == 2  # one per cluster


def test_content_edit_rechecks_exactly_one_stratum(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    path = os.path.join(engine.workspace, "g0svc.mini")
    text = open(path).read() + "func g0_pad(v) {\n    return v + 7;\n}\n"
    fragment = engine.edit("g0svc.mini", text)
    assert fragment["edit"]["changed"] == ["g0svc.mini"]
    assert fragment["edit"]["strata_rechecked"] == 1
    assert validate_run_report(fragment) == []
    # The scope cache re-derived exactly the edited file's artifact; the
    # stratum re-run then hit the cache for every member.
    assert fragment["edit"]["artifacts_rederived"] == 1
    assert fragment["scopes"]["artifact_cache_misses"] == 0
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch


def test_edit_retracts_superseded_warnings(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    path = os.path.join(engine.workspace, "g1core.mini")
    text = open(path).read().replace("new UserInput()", "new CleanBuf()", 1)
    fragment = engine.edit("g1core.mini", text)
    assert fragment["edit"]["warnings_retracted"], "taint source removed"
    assert fragment["counters"]["warnings_retracted"] >= 1
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch


def test_file_removal_splits_and_retracts(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    before = len(engine.warnings())
    fragment = engine.remove("g1app.mini")
    assert fragment["edit"]["removed"] == ["g1app.mini"]
    # Removing the cluster app drops every warning whose entry point
    # lived there (all of the cluster's seeded flows sink in app).
    assert len(engine.warnings()) < before
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch


def test_random_edit_sequence_byte_identical_to_scratch(tmp_path):
    """Acceptance: N scripted edits; accumulated state == from-scratch
    on the final sources, including the TP/FP accounting."""
    engine = _engine(tmp_path)
    engine.scan()
    rng = random.Random(7)
    paths = sorted(
        n for n in os.listdir(engine.workspace) if n.endswith(".mini")
    )
    for step in range(6):
        victim = rng.choice(paths)
        text = open(os.path.join(engine.workspace, victim)).read()
        kind = rng.randrange(3)
        if kind == 0:  # append a clean function
            text += (f"func pad{step}_x(v) {{\n"
                     f"    return v + {step};\n}}\n")
        elif kind == 1 and "new UserInput()" in text:  # defuse a taint TP
            text = text.replace("new UserInput()", "new Plain()", 1)
        else:  # whitespace-only churn: digest changes, semantics don't
            text += "\n\n"
        fragment = engine.edit(victim, text)
        assert validate_run_report(fragment) == []
        assert fragment["edit"]["strata_rechecked"] <= 1
    run, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch
    # TP/FP accounting agrees too: rebuild Warning-like tuples and
    # classify against the generator's (unedited) seed list filtered to
    # functions that still warn identically.
    subject = build_multifile_subject("gateway", scale=SCALE)
    outcome_scratch = classify_report(subject.seeds, run.report)
    by_func_scratch = sorted(
        (w.checker, w.func) for w in run.report.warnings
    )
    by_func_serve = sorted(
        (w["checker"], w["func"]) for w in engine.warnings()
    )
    assert by_func_serve == by_func_scratch
    assert not outcome_scratch.unexpected or all(
        w.func.startswith(("g0", "g1")) for w in outcome_scratch.unexpected
    )


def test_restart_resumes_without_recompute(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    warnings_before = _accumulated(engine)
    again = ServeEngine(engine.workspace, engine.workdir, _fsms())
    fragment = again.scan()
    assert fragment["edit"]["strata_rechecked"] == 0
    assert fragment["edit"]["changed"] == []
    assert _accumulated(again) == warnings_before


def test_restart_with_stale_workspace_rechecks_only_dirty(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    # Edit behind the daemon's back (it is "down").
    path = os.path.join(engine.workspace, "g0app.mini")
    with open(path, "a") as f:
        f.write("func g0_offline(v) {\n    return v;\n}\n")
    os.utime(path, (1e9, 1e9))  # make sure mtime moves
    again = ServeEngine(engine.workspace, engine.workdir, _fsms())
    fragment = again.scan()
    assert fragment["edit"]["changed"] == ["g0app.mini"]
    assert fragment["edit"]["strata_rechecked"] == 1
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(again) == scratch


def test_config_change_invalidates_persisted_state(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    other = ServeEngine(engine.workspace, engine.workdir, _fsms(), unroll=3)
    fragment = other.scan()
    assert fragment["edit"]["strata_rechecked"] == 2  # full recompute


def test_parse_error_keeps_serving_and_recovers(tmp_path):
    engine = _engine(tmp_path)
    engine.scan()
    good = _accumulated(engine)
    broken_path = os.path.join(engine.workspace, "g0svc.mini")
    original = open(broken_path).read()
    fragment = engine.edit("g0svc.mini", original + "func broken( {\n")
    assert "g0svc.mini" in fragment["edit"]["errors"]
    # Last good analysis survives the broken edit.
    assert _accumulated(engine) == good
    fragment = engine.edit("g0svc.mini", original)
    assert fragment["edit"]["errors"] == {}
    assert _accumulated(engine) == good


def test_incr_spans_are_recorded(tmp_path):
    from repro.obs.trace import TraceRecorder

    recorder = TraceRecorder()
    engine = _engine(tmp_path, trace=recorder)
    engine.scan()
    path = os.path.join(engine.workspace, "g1svc.mini")
    engine.edit("g1svc.mini", open(path).read() + "\n")
    names = {e["name"] for e in recorder.events if e.get("ph") == "X"}
    assert {"incr-diff", "incr-join", "incr-retract"} <= names


def test_unix_socket_roundtrip(tmp_path):
    engine = _engine(tmp_path)
    sock_path = str(tmp_path / "serve.sock")
    out = open(os.devnull, "w")
    server = Server(engine, socket_path=sock_path, poll=0.05, out=out)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    try:
        for _ in range(200):
            if os.path.exists(sock_path):
                break
            time.sleep(0.01)
        assert request(sock_path, {"op": "ping"})["ok"] is True
        path = os.path.join(engine.workspace, "g0left.mini")
        text = open(path).read() + "func g0_sock(v) {\n    return v;\n}\n"
        fragment = request(
            sock_path, {"op": "edit", "path": "g0left.mini", "text": text}
        )
        assert fragment["edit"]["changed"] == ["g0left.mini"]
        assert fragment["edit"]["strata_rechecked"] == 1
        report = request(sock_path, {"op": "report"})
        assert report["schema"] == "grapple/serve-report"
        assert report["counters"]["edits_served"] >= 2
        assert request(sock_path, {"op": "shutdown"})["ok"] is True
    finally:
        thread.join(timeout=10)
        out.close()
    assert not thread.is_alive()
    _, scratch = _scratch_warnings(engine.workspace)
    assert _accumulated(engine) == scratch


def test_cli_serve_once_emits_valid_fragment(tmp_path):
    ws, wd = str(tmp_path / "ws"), str(tmp_path / "wd")
    _write_workspace(ws, scale=SCALE)
    env = dict(os.environ, PYTHONPATH="src", PYTHONHASHSEED="0")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", ws, "--workdir", wd,
         "--checkers", "taint,order,iterator,lockdep", "--once"],
        capture_output=True, text=True, env=env, cwd=os.getcwd(),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    fragment = json.loads(proc.stdout)
    assert validate_run_report(fragment) == []
    assert fragment["warnings"] > 0
    # Second --once run resumes from serve-state.json: no recompute.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "serve", ws, "--workdir", wd,
         "--checkers", "taint,order,iterator,lockdep", "--once",
         "--report"],
        capture_output=True, text=True, env=env, cwd=os.getcwd(),
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    report = json.loads(proc.stdout)
    assert report["schema"] == "grapple/serve-report"
    assert len(report["warnings"]) == fragment["warnings"]
