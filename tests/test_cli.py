"""Tests for the command-line interface."""

import pytest

from repro.cli import main

BUGGY = """
func main(x) {
    var f = new FileWriter();
    f.write(x);
    return;
}
"""

CLEAN = """
func main(x) {
    var f = new FileWriter();
    f.write(x);
    f.close();
    return;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    def write(text):
        path = tmp_path / "prog.mini"
        path.write_text(text)
        return str(path)

    return write


def test_check_reports_bug_exit_code(source_file, capsys):
    code = main(["check", source_file(BUGGY), "--checkers", "io"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FileWriter" in out


def test_check_clean_exit_zero(source_file, capsys):
    code = main(["check", source_file(CLEAN), "--checkers", "io"])
    assert code == 0
    assert "0 warning(s)" in capsys.readouterr().out


def test_check_stats_flag(source_file, capsys):
    main(["check", source_file(CLEAN), "--checkers", "io", "--stats"])
    out = capsys.readouterr().out
    assert "constraints solved" in out
    assert "cache hit rate" in out


def test_check_unknown_checker_fails(source_file):
    with pytest.raises(KeyError):
        main(["check", source_file(CLEAN), "--checkers", "nope"])


def test_subjects_lists_four(capsys):
    assert main(["subjects"]) == 0
    out = capsys.readouterr().out
    for name in ("zookeeper", "hadoop", "hdfs", "hbase"):
        assert name in out


def test_generate_to_stdout(capsys):
    assert main(["generate", "zookeeper", "--scale", "0.05"]) == 0
    captured = capsys.readouterr()
    assert "func" in captured.out
    assert "seeded:" in captured.err


def test_generate_to_file(tmp_path, capsys):
    out_path = tmp_path / "subject.mini"
    main(["generate", "hdfs", "--scale", "0.05", "-o", str(out_path)])
    assert out_path.exists()
    assert "func" in out_path.read_text()


NET_MINI = """
module net;

func open_conn(x) {
    var s = new Socket();
    s.connect(x);
    return s;
}
"""

APP_MINI = """
import net;

func main(x) {
    var a = net.open_conn(x);
    return a;
}
"""


@pytest.fixture()
def multi_file_dir(tmp_path):
    (tmp_path / "net.mini").write_text(NET_MINI)
    (tmp_path / "app.mini").write_text(APP_MINI)
    return tmp_path


def test_check_directory_of_mini_files(multi_file_dir, capsys):
    code = main(["check", str(multi_file_dir), "--checkers", "socket"])
    out = capsys.readouterr().out
    assert code == 1
    assert "net.open_conn" in out  # warning names the global symbol id


def test_check_multiple_files_with_stats(multi_file_dir, capsys):
    files = [str(multi_file_dir / "app.mini"), str(multi_file_dir / "net.mini")]
    code = main(["check", *files, "--checkers", "socket", "--stats"])
    out = capsys.readouterr().out
    assert code == 1
    assert "scope resolution" in out
    assert "2 files" in out


def test_check_pack_checkers_opt_in(multi_file_dir, capsys):
    code = main([
        "check", str(multi_file_dir),
        "--checkers", "taint,order,iterator,lockdep",
    ])
    capsys.readouterr()
    assert code == 0  # a leaked socket is not a pack violation


def test_subjects_lists_multifile_profiles(capsys):
    main(["subjects"])
    assert "gateway" in capsys.readouterr().out


def test_generate_multifile_to_directory(tmp_path, capsys):
    out_dir = tmp_path / "gateway_src"
    assert main(["generate", "gateway", "-o", str(out_dir)]) == 0
    written = sorted(p.name for p in out_dir.glob("*.mini"))
    assert written == ["app.mini", "core.mini", "svc.mini"]
    assert "module core;" in (out_dir / "core.mini").read_text()
    # The generated tree round-trips through check with the packs.
    code = main([
        "check", str(out_dir), "--checkers", "taint,order,iterator,lockdep",
    ])
    capsys.readouterr()
    assert code == 1


def test_generate_multifile_to_stdout(capsys):
    assert main(["generate", "gateway"]) == 0
    captured = capsys.readouterr()
    assert "// ---- core.mini ----" in captured.out
    assert "seeded:" in captured.err


def test_lint_multifile_directory(multi_file_dir, capsys):
    (multi_file_dir / "app.mini").write_text(APP_MINI.replace(
        "    return a;", "    var w = x + 1;\n    return a;"
    ))
    code = main(["check", str(multi_file_dir), "--checkers", "socket",
                 "--lint"])
    captured = capsys.readouterr()
    assert code == 1
    assert "[dead-store]" in captured.err
    assert "app.mini:" in captured.err
