"""Tests for the command-line interface."""

import pytest

from repro.cli import main

BUGGY = """
func main(x) {
    var f = new FileWriter();
    f.write(x);
    return;
}
"""

CLEAN = """
func main(x) {
    var f = new FileWriter();
    f.write(x);
    f.close();
    return;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    def write(text):
        path = tmp_path / "prog.mini"
        path.write_text(text)
        return str(path)

    return write


def test_check_reports_bug_exit_code(source_file, capsys):
    code = main(["check", source_file(BUGGY), "--checkers", "io"])
    out = capsys.readouterr().out
    assert code == 1
    assert "FileWriter" in out


def test_check_clean_exit_zero(source_file, capsys):
    code = main(["check", source_file(CLEAN), "--checkers", "io"])
    assert code == 0
    assert "0 warning(s)" in capsys.readouterr().out


def test_check_stats_flag(source_file, capsys):
    main(["check", source_file(CLEAN), "--checkers", "io", "--stats"])
    out = capsys.readouterr().out
    assert "constraints solved" in out
    assert "cache hit rate" in out


def test_check_unknown_checker_fails(source_file):
    with pytest.raises(KeyError):
        main(["check", source_file(CLEAN), "--checkers", "nope"])


def test_subjects_lists_four(capsys):
    assert main(["subjects"]) == 0
    out = capsys.readouterr().out
    for name in ("zookeeper", "hadoop", "hdfs", "hbase"):
        assert name in out


def test_generate_to_stdout(capsys):
    assert main(["generate", "zookeeper", "--scale", "0.05"]) == 0
    captured = capsys.readouterr()
    assert "func" in captured.out
    assert "seeded:" in captured.err


def test_generate_to_file(tmp_path, capsys):
    out_path = tmp_path / "subject.mini"
    main(["generate", "hdfs", "--scale", "0.05", "-o", str(out_path)])
    assert out_path.exists()
    assert "func" in out_path.read_text()
