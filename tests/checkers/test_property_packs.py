"""Unit tests for the property-pack FSMs (taint, ordering, lockdep)."""

from repro.checkers import (
    iterator_checker,
    lockdep_checker,
    order_checker,
    taint_checker,
)
from repro.checkers.checker import (
    ALL_CHECKERS,
    PACK_CHECKERS,
    PAPER_CHECKERS,
    default_checkers,
    pack_checkers,
)


def test_taint_fsm_sink_while_tainted_is_the_error():
    fsm = taint_checker()
    assert fsm.initial == "Tainted"
    assert fsm.run(["exec"]) == "Error"
    assert fsm.run(["sanitize", "exec"]) == "Clean"
    assert fsm.run(["validate", "query", "send_raw"]) == "Clean"
    # A refill re-taints: sanitize once is not a permanent license.
    assert fsm.run(["sanitize", "refill", "query"]) == "Error"
    # No at-exit obligation -- unsunk tainted data is fine.
    assert not fsm.violates_at_exit("Tainted")
    assert not fsm.violates_at_exit("Clean")


def test_order_fsm_init_before_use_and_double_dispose():
    fsm = order_checker()
    assert fsm.run(["init", "use", "dispose"]) == "Disposed"
    assert fsm.run(["use"]) == "Error"
    assert fsm.run(["init", "init"]) == "Error"
    assert fsm.run(["init", "dispose", "use"]) == "Error"
    assert fsm.run(["init", "dispose", "dispose"]) == "Error"
    # Initialised but never disposed is an at-exit violation; never
    # initialised at all is not.
    assert fsm.violates_at_exit("Ready")
    assert not fsm.violates_at_exit("Created")


def test_iterator_fsm_invalidation():
    fsm = iterator_checker()
    assert fsm.run(["next", "next"]) == "Valid"
    assert fsm.run(["invalidate", "next"]) == "Error"
    assert fsm.run(["invalidate", "refresh", "next"]) == "Valid"
    assert not fsm.violates_at_exit("Invalid")


def test_lockdep_fsm_discipline():
    fsm = lockdep_checker()
    assert fsm.run(["acquire", "release"]) == "Released"
    assert fsm.run(["acquire", "acquire"]) == "DoubleAcquire"
    assert fsm.run(["release"]) == "ReleaseUnheld"
    assert fsm.run(["acquire", "wait"]) == "WaitWhileHolding"
    # Waiting without the lock is legal.
    assert fsm.run(["wait", "acquire", "release"]) == "Released"
    assert fsm.violates_at_exit("Held")
    for error_state in ("ReleaseUnheld", "DoubleAcquire", "WaitWhileHolding"):
        assert error_state in fsm.error_states


def test_default_checkers_stay_pinned_to_the_papers_four():
    assert tuple(c.name for c in default_checkers()) == PAPER_CHECKERS
    assert tuple(c.name for c in pack_checkers()) == PACK_CHECKERS
    assert set(PAPER_CHECKERS) | set(PACK_CHECKERS) == set(ALL_CHECKERS)
    assert not set(PAPER_CHECKERS) & set(PACK_CHECKERS)


def test_pack_types_do_not_collide_with_paper_types():
    paper_types = set()
    for checker in default_checkers():
        paper_types.update(checker.fsm.types)
    pack_types = set()
    for checker in pack_checkers():
        pack_types.update(checker.fsm.types)
    assert not paper_types & pack_types
