"""Unit and property tests for FSM specifications and the four checkers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.checkers import (
    exception_checker,
    io_checker,
    lock_checker,
    socket_checker,
)
from repro.checkers.checker import ALL_CHECKERS, Checker, default_checkers
from repro.checkers.fsm import FsmError, make_fsm


def test_io_fsm_mirrors_figure_3a():
    fsm = io_checker()
    assert fsm.initial == "Open"
    assert fsm.run(["write", "write", "close"]) == "Closed"
    assert fsm.run(["close", "write"]) == "Error"
    assert fsm.violates_at_exit("Open")
    assert not fsm.violates_at_exit("Closed")


def test_io_double_close_harmless():
    fsm = io_checker()
    assert fsm.run(["close", "close"]) == "Closed"


def test_lock_fsm():
    fsm = lock_checker()
    assert fsm.run(["lock", "unlock"]) == "Unlocked"
    assert fsm.run(["unlock"]) == "Error"
    assert fsm.run(["lock", "lock"]) == "Error"
    assert fsm.violates_at_exit("Locked")


def test_exception_fsm():
    fsm = exception_checker()
    assert fsm.run(["throw"]) == "Thrown"
    assert fsm.run(["throw", "catch"]) == "Handled"
    assert fsm.run(["throw", "catch", "throw"]) == "Thrown"
    assert fsm.violates_at_exit("Thrown")
    assert not fsm.violates_at_exit("Created")


def test_socket_fsm_mirrors_figure_2():
    fsm = socket_checker()
    assert fsm.run(["bind", "configureBlocking", "accept"]) == "Bound"
    assert fsm.run(["bind", "close"]) == "Closed"
    assert fsm.run(["close", "accept"]) == "Error"
    assert fsm.violates_at_exit("Bound")


def test_unknown_events_ignored():
    fsm = io_checker()
    assert fsm.run(["toString", "hashCode"]) == "Open"


def test_error_states_not_at_exit_violations():
    """Error states are reported as error transitions, not leaks."""
    for factory in ALL_CHECKERS.values():
        fsm = factory()
        for state in fsm.error_states:
            assert not fsm.violates_at_exit(state)


def test_events_and_states_enumerations():
    fsm = io_checker()
    assert "close" in fsm.events()
    assert {"Open", "Closed", "Error"} <= fsm.states()


def test_make_fsm_validates_states():
    with pytest.raises(FsmError):
        make_fsm("bad", ["T"], "Start", {}, accepting={"Nowhere"})


def test_checker_by_name():
    checker = Checker.by_name("io")
    assert checker.fsm.name == "io"
    with pytest.raises(KeyError):
        Checker.by_name("nonexistent")


def test_default_checkers_are_the_paper_four():
    names = [c.name for c in default_checkers()]
    assert sorted(names) == ["exception", "io", "lock", "socket"]


def test_checker_types_disjoint():
    """No type may be claimed by two checkers (one FSM per type)."""
    seen: dict = {}
    for checker in default_checkers():
        for type_name in checker.fsm.types:
            assert type_name not in seen, (
                f"{type_name} claimed by {seen.get(type_name)} and"
                f" {checker.name}"
            )
            seen[type_name] = checker.name


# -- property-based ------------------------------------------------------------

_event_lists = st.lists(
    st.sampled_from(["write", "read", "close", "flush", "noop"]), max_size=12
)


@settings(max_examples=60, deadline=None)
@given(_event_lists)
def test_io_error_is_sticky_absorbing(events):
    """Once in Error, no event sequence leaves it."""
    fsm = io_checker()
    state = fsm.run(events)
    if state == "Error":
        assert fsm.run(events + ["close", "write"]) == "Error"


@settings(max_examples=60, deadline=None)
@given(_event_lists)
def test_io_run_equals_fold_of_steps(events):
    fsm = io_checker()
    state = fsm.initial
    for event in events:
        state = fsm.step(state, event)
    assert state == fsm.run(events)


@settings(max_examples=60, deadline=None)
@given(_event_lists)
def test_io_state_always_known(events):
    fsm = io_checker()
    assert fsm.run(events) in fsm.states()
