"""Unit tests for warnings and reports."""

from repro.checkers.report import Report, Warning


def warning(checker="io", kind="at-exit", site=1, func="main",
            state="Open", type_name="FileWriter", line=3):
    return Warning(
        checker=checker,
        kind=kind,
        site=site,
        type_name=type_name,
        state=state,
        func=func,
        line=line,
    )


def test_report_add_and_len():
    report = Report()
    report.add(warning())
    assert len(report) == 1


def test_report_dedupes_identical_warnings():
    report = Report()
    report.add(warning())
    report.add(warning())
    assert len(report) == 1


def test_report_by_checker():
    report = Report()
    report.add(warning(checker="io"))
    report.add(warning(checker="socket", site=2))
    assert len(report.by_checker("io")) == 1
    assert len(report.by_checker("socket")) == 1
    assert report.by_checker("lock") == []


def test_report_sites():
    report = Report()
    report.add(warning(site=1))
    report.add(warning(site=2, checker="socket"))
    assert report.sites() == {1, 2}
    assert report.sites("io") == {1}


def test_warning_describe_mentions_location():
    text = warning().describe()
    assert "main" in text and "FileWriter" in text and "Open" in text


def test_error_transition_describe_differs():
    leak = warning(kind="at-exit").describe()
    error = warning(kind="error-transition").describe()
    assert leak != error
    assert "error state" in error


def test_summary_lists_all():
    report = Report()
    report.add(warning(site=1))
    report.add(warning(site=2))
    summary = report.summary()
    assert summary.startswith("2 warning(s)")
    assert summary.count("FileWriter") == 2
