"""Spec-parser diagnostics: line numbers and structural rejection."""

import pytest

from repro.checkers.spec import SpecError, parse_fsm_specs

GOOD = """fsm io
types FileWriter
initial Open
accepting Closed
error Error

Open   -write->  Open
Open   -close->  Closed
Closed -write->  Error
"""


def test_good_spec_still_parses():
    (fsm,) = parse_fsm_specs(GOOD)
    assert fsm.name == "io"
    assert fsm.step("Open", "close") == "Closed"


def test_missing_required_key_names_the_block_line():
    with pytest.raises(SpecError, match=r"line 1:.*missing 'initial'"):
        parse_fsm_specs("fsm t\ntypes T\naccepting A\nA -go-> A\n")


def test_duplicate_fsm_name_rejected_with_both_lines():
    text = GOOD + "\nfsm io\ntypes T\ninitial A\naccepting A\nA -go-> A\n"
    with pytest.raises(
        SpecError, match=r"duplicate fsm name 'io'.*line 1"
    ):
        parse_fsm_specs(text)


def test_duplicate_transition_rejected():
    text = """fsm t
types T
initial A
accepting B
A -go-> B
A -go-> A
"""
    with pytest.raises(
        SpecError, match=r"line 6: duplicate transition 'A' -go->"
    ):
        parse_fsm_specs(text)


def test_transition_from_undeclared_state_rejected():
    text = """fsm t
types T
initial A
accepting B
A -go-> B
Ghost -go-> B
"""
    with pytest.raises(
        SpecError, match=r"line 6:.*undeclared state 'Ghost'"
    ):
        parse_fsm_specs(text)


def test_transition_target_counts_as_declared():
    # B is only ever a target, but transitions *from* B are legal.
    text = """fsm t
types T
initial A
accepting C
A -go-> B
B -go-> C
"""
    (fsm,) = parse_fsm_specs(text)
    assert fsm.step("B", "go") == "C"


def test_fsm_level_errors_carry_the_block_line():
    # make_fsm rejects the unknown accepting state; the SpecError wrapper
    # must say where the block starts.
    text = "\n\nfsm t\ntypes T\ninitial A\naccepting Ghost\nA -go-> A\n"
    with pytest.raises(SpecError, match=r"line 3:"):
        parse_fsm_specs(text)


def test_transition_syntax_errors_keep_line_numbers():
    with pytest.raises(SpecError, match=r"line 5:"):
        parse_fsm_specs(
            "fsm t\ntypes T\ninitial A\naccepting A\nA goes B\n"
        )
