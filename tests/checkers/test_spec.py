"""Tests for the FSM specification text format."""

import pytest

from repro import Grapple
from repro.checkers.spec import SpecError, load_fsm_specs, parse_fsm_specs

IO_SPEC = """
# A minimal I/O property.
fsm io
types FileWriter FileReader
initial Open
accepting Closed
error Error

Open   -write->  Open
Open   -close->  Closed
Closed -write->  Error
Closed -close->  Closed
"""


def test_parse_single_fsm():
    (fsm,) = parse_fsm_specs(IO_SPEC)
    assert fsm.name == "io"
    assert fsm.types == frozenset({"FileWriter", "FileReader"})
    assert fsm.initial == "Open"
    assert fsm.run(["write", "close"]) == "Closed"
    assert fsm.run(["close", "write"]) == "Error"
    assert fsm.is_error("Error")


def test_parse_multiple_blocks():
    spec = IO_SPEC + """
fsm lock
types Lock
initial Unlocked
accepting Unlocked
error Error
Unlocked -lock-> Locked
Locked -unlock-> Unlocked
Unlocked -unlock-> Error
"""
    fsms = parse_fsm_specs(spec)
    assert [fsm.name for fsm in fsms] == ["io", "lock"]


def test_comments_and_blank_lines_ignored():
    spec = "# header\n\nfsm t\ntypes T # trailing\ninitial A\naccepting A\nA -go-> A\n"
    (fsm,) = parse_fsm_specs(spec)
    assert fsm.step("A", "go") == "A"


def test_missing_initial_rejected():
    with pytest.raises(SpecError, match="initial"):
        parse_fsm_specs("fsm t\ntypes T\naccepting A\nA -go-> A\n")


def test_bad_transition_syntax_rejected():
    with pytest.raises(SpecError, match="State -event-> State"):
        parse_fsm_specs(
            "fsm t\ntypes T\ninitial A\naccepting A\nA goes to B\n"
        )


def test_content_before_block_rejected():
    with pytest.raises(SpecError, match="before any"):
        parse_fsm_specs("types T\n")


def test_empty_spec_rejected():
    with pytest.raises(SpecError, match="no fsm blocks"):
        parse_fsm_specs("# nothing here\n")


def test_unknown_accepting_state_rejected():
    with pytest.raises(SpecError):
        parse_fsm_specs(
            "fsm t\ntypes T\ninitial A\naccepting Ghost\nA -go-> A\n"
        )


def test_spec_fsm_drives_full_pipeline(tmp_path):
    path = tmp_path / "io.fsm"
    path.write_text(IO_SPEC)
    (fsm,) = load_fsm_specs(str(path))
    source = """
    func main(x) {
        var f = new FileWriter();
        f.write(x);
        return;
    }
    """
    report = Grapple(source, [fsm]).run().report
    assert len(report) == 1
    assert report.warnings[0].checker == "io"


def test_cli_spec_flag(tmp_path, capsys):
    from repro.cli import main

    spec_path = tmp_path / "io.fsm"
    spec_path.write_text(IO_SPEC)
    prog_path = tmp_path / "prog.mini"
    prog_path.write_text(
        "func main() { var f = new FileWriter(); f.close(); }"
    )
    code = main(["check", str(prog_path), "--spec", str(spec_path)])
    assert code == 0
    assert "0 warning(s)" in capsys.readouterr().out
