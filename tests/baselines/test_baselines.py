"""Tests for the traditional and string-based baselines (§5.3, Table 5)."""

import pytest

from repro import Grapple, default_checkers, io_checker
from repro.analysis.frontend import compile_source
from repro.baselines import (
    OutOfMemoryError,
    run_string_based,
    run_traditional_alias,
    run_traditional_check,
)

SMALL = """
func main(x) {
    var f = new FileWriter();
    f.write(x);
    if (x > 0) {
        f.close();
    }
    return;
}
"""


def fsms():
    return [c.fsm for c in default_checkers()]


def test_traditional_alias_completes_on_tiny_program():
    compiled = compile_source(SMALL)
    stats = run_traditional_alias(compiled, memory_budget=32 << 20)
    assert stats.completed
    assert stats.edges > 0
    assert stats.constraints_solved > 0


def test_traditional_alias_ooms_with_tiny_budget():
    compiled = compile_source(SMALL)
    with pytest.raises(OutOfMemoryError) as info:
        run_traditional_alias(compiled, memory_budget=1024)
    assert info.value.stats.estimated_bytes > 1024
    assert "out of memory" in str(info.value)


def test_traditional_check_completes_on_tiny_program():
    compiled = compile_source(SMALL)
    stats = run_traditional_check(compiled, [io_checker()],
                                  memory_budget=64 << 20)
    assert stats.completed
    assert stats.facts > 0


def test_traditional_check_ooms_on_realistic_subject():
    """The §5.3 result: a proportionally scaled budget cannot hold the
    traditional implementation's constraint objects."""
    from repro.workloads import build_subject

    subject = build_subject("zookeeper", scale=0.15)
    compiled = compile_source(subject.source)
    with pytest.raises(OutOfMemoryError):
        run_traditional_check(compiled, fsms(), memory_budget=4 << 20)


def test_string_baseline_same_report_as_grapple():
    report_interval = Grapple(SMALL, [io_checker()]).run().report
    result = run_string_based(SMALL, [io_checker()])
    assert not result.timed_out
    report_string = result.run.report
    assert {(w.checker, w.func, w.kind) for w in report_interval.warnings} == {
        (w.checker, w.func, w.kind) for w in report_string.warnings
    }


def test_string_baseline_reports_shape_metrics():
    result = run_string_based(SMALL, [io_checker()])
    assert result.partitions >= 1
    assert result.iterations >= 1
    assert result.constraints_solved > 0
    assert result.total_time > 0


def test_string_baseline_timeout_flag():
    from repro import GrappleOptions

    result = run_string_based(
        SMALL, [io_checker()], time_budget=0.0
    )
    assert result.timed_out
