"""Unit tests for the symbolic evaluator."""

from repro.lang import ast
from repro.symbolic.evaluator import (
    SymbolicEnv,
    call_result_symbol,
    input_symbol,
    symbol_name,
)
from repro.smt import expr as E


def env_of(*params):
    return SymbolicEnv("fn", list(params))


def test_symbol_names_are_namespaced():
    assert symbol_name("foo", "x") == "foo::x"
    assert call_result_symbol("foo", 3) == "foo::ret3"
    assert input_symbol("foo", 5) == "foo::in5"


def test_params_bound_to_symbols():
    env = env_of("a", "b")
    assert env.eval(ast.VarRef("a")) == E.IntVar("fn::a")
    assert env.eval(ast.VarRef("b")) == E.IntVar("fn::b")


def test_literals():
    env = env_of()
    assert env.eval(ast.IntLit(7)) == E.IntConst(7)
    assert env.eval(ast.BoolLit(True)) is E.TRUE
    assert env.eval(ast.NullLit()) is None


def test_assignment_tracks_values():
    env = env_of("x")
    env.execute(ast.Assign("y", ast.Binary("+", ast.VarRef("x"), ast.IntLit(1))))
    assert env.eval(ast.VarRef("y")) == E.add(E.IntVar("fn::x"), E.IntConst(1))


def test_reassignment_overwrites():
    env = env_of("x")
    env.execute(ast.Assign("y", ast.IntLit(1)))
    env.execute(ast.Assign("y", ast.IntLit(2)))
    assert env.eval(ast.VarRef("y")) == E.IntConst(2)


def test_unwritten_variable_is_fresh_symbol():
    env = env_of()
    assert env.eval(ast.VarRef("ghost")) == E.IntVar("fn::ghost")


def test_object_expressions_evaluate_to_none():
    env = env_of()
    assert env.eval(ast.New("File", 0)) is None
    assert env.eval(ast.FieldLoad("a", "f")) is None
    assert env.eval(ast.ThrownFlagOf("g", 1)) is None


def test_arith_over_none_is_none():
    env = env_of()
    env.execute(ast.Assign("o", ast.NullLit()))
    result = env.eval(ast.Binary("+", ast.VarRef("o"), ast.IntLit(1)))
    assert result is None


def test_comparisons_and_logic():
    env = env_of("x")
    cond = env.eval(
        ast.Binary(
            "&&",
            ast.Binary(">", ast.VarRef("x"), ast.IntLit(0)),
            ast.Binary("<=", ast.VarRef("x"), ast.IntLit(9)),
        )
    )
    x = E.IntVar("fn::x")
    assert cond == E.and_(E.gt(x, E.IntConst(0)), E.le(x, E.IntConst(9)))


def test_unary_operators():
    env = env_of("x")
    assert env.eval(ast.Unary("-", ast.VarRef("x"))) == E.neg(E.IntVar("fn::x"))
    assert env.eval(ast.Unary("!", ast.BoolLit(False))) is E.TRUE


def test_copy_isolates_states():
    env = env_of("x")
    env.execute(ast.Assign("y", ast.IntLit(1)))
    clone = env.copy()
    clone.execute(ast.Assign("y", ast.IntLit(2)))
    assert env.eval(ast.VarRef("y")) == E.IntConst(1)
    assert clone.eval(ast.VarRef("y")) == E.IntConst(2)


def test_input_symbol_from_site():
    env = env_of()
    assert env.eval(ast.Input(9)) == E.IntVar("fn::in9")


def test_call_symbol_from_site():
    env = env_of()
    assert env.eval(ast.Call("g", (), 4)) == E.IntVar("fn::ret4")


def test_opaque_condition_for_objects():
    env = env_of()
    env.execute(ast.Assign("o", ast.NullLit()))
    cond = env.eval_condition(
        ast.Binary("==", ast.VarRef("o"), ast.NullLit()), "h1"
    )
    assert cond == E.BoolVar("fn::opaque_h1")


def test_bool_condition_passes_through():
    env = env_of("x")
    cond = env.eval_condition(ast.Binary(">", ast.VarRef("x"), ast.IntLit(0)), "h")
    assert cond == E.gt(E.IntVar("fn::x"), E.IntConst(0))
