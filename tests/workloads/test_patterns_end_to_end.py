"""Every workload pattern, checked end-to-end in isolation.

Each TP template must produce exactly its seeded warning, each FP template
must trigger its (expected) false positive, and each clean template must
stay silent -- independently of the surrounding subject.  This pins the
generator's ground truth to the checker's actual behaviour.
"""

import random

import pytest

from repro import Grapple, default_checkers
from repro.workloads.patterns import CLEAN_PATTERNS, FP_PATTERNS, TP_PATTERNS

FSMS = [c.fsm for c in default_checkers()]


def run_pattern(template, name="pat"):
    source, seeds = template(name, random.Random(42))
    # Give the pattern a caller so its entry isn't dead code heuristics.
    report = Grapple(source, FSMS).run().report
    return source, seeds, report


@pytest.mark.parametrize(
    "checker,template",
    [(c, t) for c, ts in TP_PATTERNS.items() for t in ts],
    ids=lambda value: getattr(value, "__name__", value),
)
def test_tp_pattern_detected(checker, template):
    _source, seeds, report = run_pattern(template)
    assert len(seeds) == 1
    seed = seeds[0]
    assert seed.checker == checker
    assert seed.expectation == "tp"
    matching = [
        w for w in report.warnings
        if w.checker == checker and w.func == seed.func
    ]
    assert matching, f"{template.__name__}: seeded bug not reported"
    # No warnings in other functions of the pattern.
    others = [
        w for w in report.warnings
        if (w.checker, w.func) != (checker, seed.func)
    ]
    assert not others, f"{template.__name__}: unexpected extras {others}"


@pytest.mark.parametrize(
    "checker,template",
    [(c, t) for c, ts in FP_PATTERNS.items() for t in ts],
    ids=lambda value: getattr(value, "__name__", value),
)
def test_fp_pattern_triggers_expected_false_positive(checker, template):
    _source, seeds, report = run_pattern(template)
    seed = seeds[0]
    assert seed.expectation == "fp"
    matching = [
        w for w in report.warnings
        if w.checker == checker and w.func == seed.func
    ]
    assert matching, (
        f"{template.__name__}: the documented over-approximation no longer"
        " triggers; the FP accounting of Table 2 would drift"
    )


@pytest.mark.parametrize(
    "template", CLEAN_PATTERNS, ids=lambda t: t.__name__
)
def test_clean_pattern_silent(template):
    _source, seeds, report = run_pattern(template)
    assert seeds == []
    assert len(report) == 0, (
        f"{template.__name__}: clean code was flagged: "
        + "; ".join(w.describe() for w in report.warnings)
    )


def test_patterns_with_many_rng_draws_stay_consistent():
    """Pattern behaviour must not depend on the rng's constants."""
    rng = random.Random(7)
    for i in range(5):
        template = TP_PATTERNS["io"][0]
        _src, seeds, report = run_pattern(
            lambda n, r=rng: template(f"p{i}", r)
        )
        assert any(w.func == seeds[0].func for w in report.warnings)
