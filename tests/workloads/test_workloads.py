"""Unit tests for the synthetic workload generator and classification."""

import pytest

from repro.checkers.report import Report, Warning
from repro.lang.parser import parse_program
from repro.workloads import (
    SUBJECT_PROFILES,
    SeededBug,
    build_subject,
    classify_report,
    generate_subject,
)
from repro.workloads.generator import SubjectProfile
from repro.workloads.patterns import CLEAN_PATTERNS, FP_PATTERNS, TP_PATTERNS


def small_profile(**bugs):
    return SubjectProfile(
        name="tiny",
        version="0.0",
        description="test subject",
        target_loc=120,
        bugs=bugs or {"io": (1, 0)},
        seed=7,
    )


def test_generated_source_parses():
    subject = generate_subject(small_profile())
    program = parse_program(subject.source)
    assert len(program.functions) > 3


def test_generation_is_deterministic():
    a = generate_subject(small_profile())
    b = generate_subject(small_profile())
    assert a.source == b.source
    assert a.seeds == b.seeds


def test_seed_counts_match_request():
    subject = generate_subject(
        small_profile(io=(2, 1), exception=(3, 0), socket=(1, 1))
    )
    by = {}
    for seed in subject.seeds:
        key = (seed.checker, seed.expectation)
        by[key] = by.get(key, 0) + 1
    assert by[("io", "tp")] == 2
    assert by[("io", "fp")] == 1
    assert by[("exception", "tp")] == 3
    assert by[("socket", "tp")] == 1
    assert by[("socket", "fp")] == 1


def test_target_loc_reached():
    profile = small_profile()
    profile.target_loc = 400
    subject = generate_subject(profile)
    assert subject.loc >= 400


def test_all_pattern_templates_parse():
    import random

    rng = random.Random(1)
    templates = [t for ts in TP_PATTERNS.values() for t in ts]
    templates += [t for ts in FP_PATTERNS.values() for t in ts]
    templates += CLEAN_PATTERNS
    for i, template in enumerate(templates):
        source, seeds = template(f"pat{i}", rng)
        parse_program(source)
        for seed in seeds:
            assert seed.expectation in ("tp", "fp")


def test_subject_profiles_match_paper_table2():
    zk = SUBJECT_PROFILES["zookeeper"].bugs
    assert zk["exception"] == (59, 0) and zk["io"] == (2, 0)
    hbase = SUBJECT_PROFILES["hbase"].bugs
    assert hbase["exception"] == (176, 8) and hbase["io"] == (15, 2)
    totals = {}
    for name, profile in SUBJECT_PROFILES.items():
        tp = sum(t for t, _f in profile.bugs.values())
        fp = sum(f for _t, f in profile.bugs.values())
        totals[name] = (tp, fp)
    assert totals == {
        "zookeeper": (65, 0),
        "hadoop": (54, 2),
        "hdfs": (49, 5),
        "hbase": (191, 10),
    }
    # Paper: 376 warnings, 17 false positives, 359 true bugs.
    assert sum(t + f for t, f in totals.values()) == 376
    assert sum(f for _t, f in totals.values()) == 17


def test_build_subject_scaling():
    small = build_subject("zookeeper", scale=0.1)
    assert small.loc < SUBJECT_PROFILES["zookeeper"].target_loc
    with pytest.raises(KeyError):
        build_subject("cassandra")


def test_subject_loc_ordering_follows_paper():
    locs = {
        name: SUBJECT_PROFILES[name].target_loc
        for name in ("zookeeper", "hadoop", "hdfs", "hbase")
    }
    assert locs["zookeeper"] < locs["hdfs"] <= locs["hadoop"] < locs["hbase"]


# -- classification ------------------------------------------------------------


def _warning(checker, func):
    return Warning(
        checker=checker,
        kind="at-exit",
        site=0,
        type_name="FileWriter",
        state="Open",
        func=func,
        line=1,
    )


def test_classify_tp_fp_and_missed():
    seeds = [
        SeededBug("io", "f1", "tp", "p"),
        SeededBug("io", "f2", "fp", "p"),
        SeededBug("io", "f3", "tp", "p"),
    ]
    report = Report()
    report.add(_warning("io", "f1"))
    report.add(_warning("io", "f2"))
    cls = classify_report(seeds, report)
    assert cls.tp == {"io": 1}
    assert cls.fp == {"io": 1}
    assert cls.missed == {"io": 1}
    assert cls.unexpected == []


def test_classify_unexpected_warning():
    cls = classify_report([], ReportWith(_warning("io", "clean_fn")))
    assert len(cls.unexpected) == 1


def ReportWith(*warnings):
    report = Report()
    for w in warnings:
        report.add(w)
    return report


def test_classify_counts_each_site_once():
    seeds = [SeededBug("io", "f1", "tp", "p")]
    report = Report()
    report.add(_warning("io", "f1"))
    report.add(
        Warning(
            checker="io", kind="error-transition", site=0,
            type_name="FileWriter", state="Error", func="f1", line=1,
        )
    )
    cls = classify_report(seeds, report)
    assert cls.tp == {"io": 1}
