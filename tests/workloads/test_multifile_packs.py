"""End-to-end property-pack accounting on the multi-file workload.

The acceptance bar: the gateway subject runs through resolution,
reduction, and all three packs with *exact* TP/FP — zero unexplained
warnings — and the accounting is byte-identical across reduce on/off,
worker counts, and file discovery order.
"""

import json
import os

import pytest

from repro.workloads.multifile import (
    MULTIFILE_PROFILES,
    build_multifile_subject,
    generate_multifile_subject,
    pack_accounting,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "property_packs.json")


def test_generator_is_deterministic():
    a = build_multifile_subject("gateway")
    b = build_multifile_subject("gateway")
    assert a.sources == b.sources
    assert a.seeds == b.seeds
    assert len(a.sources) >= 3
    assert a.loc >= MULTIFILE_PROFILES["gateway"].target_loc


def test_gateway_accounting_is_exact():
    accounting = pack_accounting("gateway")
    assert accounting["unexpected"] == []
    assert accounting["warnings"] == accounting["seeded"]
    for checker, row in accounting["by_checker"].items():
        assert row["missed"] == 0, (checker, row)
    total_tp = sum(r["tp"] for r in accounting["by_checker"].values())
    total_fp = sum(r["fp"] for r in accounting["by_checker"].values())
    assert total_tp + total_fp == accounting["seeded"]
    # Every pack contributes both kinds of evidence.
    assert set(accounting["by_checker"]) == {
        "taint", "order", "iterator", "lockdep"
    }
    # The deliberate extern calls are the only unresolved references.
    assert accounting["scopes"]["unresolved_refs"] == 3
    assert accounting["scopes"]["ambiguous_refs"] == 0


def test_accounting_matches_committed_golden():
    with open(GOLDEN) as f:
        golden = json.load(f)
    fresh = json.loads(json.dumps(pack_accounting("gateway")))
    assert fresh == golden


@pytest.mark.parametrize("reduce_on", [True, False])
def test_reduce_on_off_identical(reduce_on):
    baseline = pack_accounting("gateway")
    other = pack_accounting("gateway", reduce=reduce_on)
    assert other == baseline


@pytest.mark.slow
def test_worker_matrix_identical():
    baseline = pack_accounting("gateway")
    assert pack_accounting("gateway", workers=4) == baseline
    assert pack_accounting("gateway", reduce=False, workers=4) == baseline


def test_file_order_permutation_identical():
    subject = build_multifile_subject("gateway")
    ordered = list(subject.sources.items())
    reversed_accounting = pack_accounting(
        "gateway", sources=list(reversed(ordered))
    )
    assert reversed_accounting == pack_accounting("gateway")


def test_profile_scaling_smoke():
    profile = MULTIFILE_PROFILES["gateway"]
    subject = generate_multifile_subject(profile)
    # Allocation always lives in core so cross-module warnings point at
    # qualified symbols; every seed names a core function.
    assert all(s.func.startswith("core.") for s in subject.seeds)


def test_scale_one_is_byte_identical_to_default():
    base = build_multifile_subject("gateway")
    scaled = build_multifile_subject("gateway", scale=1.0)
    assert scaled.sources == base.sources
    assert scaled.seeds == base.seeds


def test_scaled_subject_grows_independent_clusters():
    from repro.workloads.multifile import CLUSTER_CHAIN_DEPTH

    base = build_multifile_subject("gateway")
    subject = build_multifile_subject("gateway", scale=4.0)
    files_per_cluster = 3 + CLUSTER_CHAIN_DEPTH + 2
    assert len(subject.sources) == 4 * files_per_cluster  # tens of modules
    assert len(subject.seeds) == 4 * len(base.seeds)
    # Every file carries a distinct non-root module header: clusters
    # share no namespace, so they land in separate dependency strata.
    headers = [text.splitlines()[0] for text in subject.sources.values()]
    assert len(set(headers)) == len(headers)
    assert all(h.startswith("module g") for h in headers)
    # Deep import chain and re-export diamond are present per cluster.
    for k in range(4):
        assert f"g{k}mid{CLUSTER_CHAIN_DEPTH - 1}.mini" in subject.sources
        for side in ("left", "right"):
            assert f"import g{k}core.g{k}_shared;" \
                in subject.sources[f"g{k}{side}.mini"]
    # Deterministic.
    assert build_multifile_subject("gateway", scale=4.0).sources \
        == subject.sources


def test_scaled_subject_accounting_is_exact():
    """The scaled clusters link, check, and classify cleanly: every
    cluster reproduces the full pack accounting under its own names."""
    from repro.analysis.pipeline import Grapple
    from repro.checkers.checker import pack_checkers
    from repro.workloads.bugs import classify_report

    subject = build_multifile_subject("gateway", scale=2.0)
    run = Grapple(
        subject.sources, [c.fsm for c in pack_checkers()]
    ).run()
    outcome = classify_report(subject.seeds, run.report)
    assert outcome.unexpected == []
    assert sum(outcome.missed.values()) == 0
    assert len(run.report) == len(subject.seeds)
    res = run.compiled.resolution
    assert res.stats.ambiguous_refs == 0
    # The diamond converges: both wrappers bind to the one shared def.
    assert res.bindings[("g0left.mini", "g0_shared")] == "g0core.g0_shared"
    assert res.bindings[("g0right.mini", "g0_shared")] == "g0core.g0_shared"


def test_artifact_cache_rederives_exactly_one_artifact_per_edit(tmp_path):
    from repro.sa.scopes import ScopeArtifactCache, load_modules

    subject = build_multifile_subject("gateway", scale=3.0)
    cache = ScopeArtifactCache(str(tmp_path))
    cold = load_modules(subject.sources, cache=cache)
    assert cold.resolution.stats.artifact_cache_misses == len(subject.sources)
    sources = dict(subject.sources)
    for victim in ("g0core.mini", "g1app.mini", "g2mid1.mini"):
        sources[victim] += "func edited_pad(v) {\n    return v;\n}\n"
        loaded = load_modules(sources, cache=cache)
        stats = loaded.resolution.stats
        # Exactly the edited file re-derives; everything else hits.
        assert stats.artifact_cache_misses == 1, victim
        assert stats.artifact_cache_hits == len(sources) - 1, victim
