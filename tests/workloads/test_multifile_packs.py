"""End-to-end property-pack accounting on the multi-file workload.

The acceptance bar: the gateway subject runs through resolution,
reduction, and all three packs with *exact* TP/FP — zero unexplained
warnings — and the accounting is byte-identical across reduce on/off,
worker counts, and file discovery order.
"""

import json
import os

import pytest

from repro.workloads.multifile import (
    MULTIFILE_PROFILES,
    build_multifile_subject,
    generate_multifile_subject,
    pack_accounting,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden", "property_packs.json")


def test_generator_is_deterministic():
    a = build_multifile_subject("gateway")
    b = build_multifile_subject("gateway")
    assert a.sources == b.sources
    assert a.seeds == b.seeds
    assert len(a.sources) >= 3
    assert a.loc >= MULTIFILE_PROFILES["gateway"].target_loc


def test_gateway_accounting_is_exact():
    accounting = pack_accounting("gateway")
    assert accounting["unexpected"] == []
    assert accounting["warnings"] == accounting["seeded"]
    for checker, row in accounting["by_checker"].items():
        assert row["missed"] == 0, (checker, row)
    total_tp = sum(r["tp"] for r in accounting["by_checker"].values())
    total_fp = sum(r["fp"] for r in accounting["by_checker"].values())
    assert total_tp + total_fp == accounting["seeded"]
    # Every pack contributes both kinds of evidence.
    assert set(accounting["by_checker"]) == {
        "taint", "order", "iterator", "lockdep"
    }
    # The deliberate extern calls are the only unresolved references.
    assert accounting["scopes"]["unresolved_refs"] == 3
    assert accounting["scopes"]["ambiguous_refs"] == 0


def test_accounting_matches_committed_golden():
    with open(GOLDEN) as f:
        golden = json.load(f)
    fresh = json.loads(json.dumps(pack_accounting("gateway")))
    assert fresh == golden


@pytest.mark.parametrize("reduce_on", [True, False])
def test_reduce_on_off_identical(reduce_on):
    baseline = pack_accounting("gateway")
    other = pack_accounting("gateway", reduce=reduce_on)
    assert other == baseline


@pytest.mark.slow
def test_worker_matrix_identical():
    baseline = pack_accounting("gateway")
    assert pack_accounting("gateway", workers=4) == baseline
    assert pack_accounting("gateway", reduce=False, workers=4) == baseline


def test_file_order_permutation_identical():
    subject = build_multifile_subject("gateway")
    ordered = list(subject.sources.items())
    reversed_accounting = pack_accounting(
        "gateway", sources=list(reversed(ordered))
    )
    assert reversed_accounting == pack_accounting("gateway")


def test_profile_scaling_smoke():
    profile = MULTIFILE_PROFILES["gateway"]
    subject = generate_multifile_subject(profile)
    # Allocation always lives in core so cross-module warnings point at
    # qualified symbols; every seed names a core function.
    assert all(s.func.startswith("core.") for s in subject.seeds)
