"""Integration and property tests for the DPLL(T) solver facade."""

from hypothesis import given, settings, strategies as st

from repro.smt import (
    FALSE,
    TRUE,
    BoolVar,
    IntConst,
    IntVar,
    Result,
    Solver,
    add,
    and_,
    eq,
    ge,
    gt,
    le,
    lt,
    mul,
    ne,
    not_,
    or_,
    sub,
)

X, Y = IntVar("x"), IntVar("y")
B = BoolVar("b")


def sat(formula):
    return Solver().check(formula) is Result.SAT


def test_true_sat_false_unsat():
    assert sat(TRUE)
    assert not sat(FALSE)


def test_bool_var_and_negation():
    assert sat(B)
    assert not sat(and_(B, not_(B)))


def test_paper_branch_conflict():
    # if(b) a.m(); if(!b) a.n() -- the two events can't share a path (§1.2).
    assert not sat(and_(B, not_(B)))


def test_linear_conjunction_sat():
    assert sat(and_(ge(X, IntConst(0)), lt(X, IntConst(10))))


def test_linear_conjunction_unsat():
    assert not sat(and_(ge(X, IntConst(0)), lt(X, IntConst(0))))


def test_infeasible_path_from_paper_fig3():
    # x < 0 (else branch), y == x + 1, y > 0 -- the paper's infeasible path 3.
    phi = and_(
        lt(X, IntConst(0)),
        eq(Y, add(X, IntConst(1))),
        gt(Y, IntConst(0)),
    )
    assert not sat(phi)


def test_feasible_path_from_paper_fig3():
    # x >= 0 (then branch), y == x - 1, y > 0 -- the paper's feasible path 1.
    phi = and_(
        ge(X, IntConst(0)),
        eq(Y, sub(X, IntConst(1))),
        gt(Y, IntConst(0)),
    )
    assert sat(phi)


def test_disjunction_needs_dpllt():
    # (x < 0 or x > 10) and 0 <= x <= 10 is UNSAT.
    phi = and_(
        or_(lt(X, IntConst(0)), gt(X, IntConst(10))),
        ge(X, IntConst(0)),
        le(X, IntConst(10)),
    )
    assert not sat(phi)


def test_disjunction_sat_branch():
    phi = and_(
        or_(lt(X, IntConst(0)), gt(X, IntConst(10))),
        ge(X, IntConst(5)),
    )
    assert sat(phi)


def test_mixed_bool_and_theory():
    phi = and_(
        or_(not_(B), gt(X, IntConst(0))),
        B,
        le(X, IntConst(0)),
    )
    assert not sat(phi)


def test_nonlinear_treated_conservatively():
    # x*y > 0 is opaque; conjunction with x > 0 stays SAT.
    phi = and_(gt(mul(X, Y), IntConst(0)), gt(X, IntConst(0)))
    assert sat(phi)


def test_opaque_atom_self_contradiction():
    atom = gt(mul(X, Y), IntConst(0))
    assert not sat(and_(atom, not_(atom)))


def test_stats_counted():
    solver = Solver()
    solver.check(and_(B, not_(B)))
    solver.check(TRUE)
    assert solver.stats.checks == 2
    assert solver.stats.unsat == 1
    assert solver.stats.sat == 1


def test_check_conjunction_list():
    solver = Solver()
    result = solver.check_conjunction([ge(X, IntConst(0)), lt(X, IntConst(0))])
    assert result is Result.UNSAT


# -- property-based tests -------------------------------------------------

_names = st.sampled_from(["x", "y", "z"])


@st.composite
def linear_exprs(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return IntVar(draw(_names))
        return IntConst(draw(st.integers(-20, 20)))
    op = draw(st.sampled_from(["add", "sub", "scale"]))
    left = draw(linear_exprs(depth=depth - 1))
    right = draw(linear_exprs(depth=depth - 1))
    if op == "add":
        return add(left, right)
    if op == "sub":
        return sub(left, right)
    return mul(IntConst(draw(st.integers(-3, 3))), left)


@st.composite
def comparisons(draw):
    op = draw(st.sampled_from([lt, le, eq, ne]))
    return op(draw(linear_exprs()), draw(linear_exprs()))


def _evaluate(expr, env):
    """Reference evaluator for ground checking."""
    import repro.smt.expr as E

    if expr.kind == E.INT_CONST or expr.kind == E.BOOL_CONST:
        return expr.value
    if expr.kind == E.VAR:
        return env[expr.args[0]]
    vals = [_evaluate(a, env) for a in expr.args]
    if expr.kind == E.ADD:
        return sum(vals)
    if expr.kind == E.MUL:
        out = 1
        for v in vals:
            out *= v
        return out
    if expr.kind == E.LT:
        return vals[0] < vals[1]
    if expr.kind == E.LE:
        return vals[0] <= vals[1]
    if expr.kind == E.EQ:
        return vals[0] == vals[1]
    if expr.kind == E.NE:
        return vals[0] != vals[1]
    if expr.kind == E.AND:
        return all(vals)
    if expr.kind == E.OR:
        return any(vals)
    if expr.kind == E.NOT:
        return not vals[0]
    raise AssertionError(expr.kind)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(comparisons(), min_size=1, max_size=4),
    st.integers(-10, 10),
    st.integers(-10, 10),
    st.integers(-10, 10),
)
def test_solver_never_refutes_witnessed_conjunctions(atoms, x, y, z):
    """If a ground witness satisfies the conjunction, the solver says SAT."""
    env = {"x": x, "y": y, "z": z}
    if all(_evaluate(a, env) for a in atoms):
        assert sat(and_(*atoms))


@settings(max_examples=60, deadline=None)
@given(comparisons())
def test_atom_and_negation_unsat(atom):
    """phi and not(phi) is always UNSAT for linear atoms."""
    assert not sat(and_(atom, not_(atom)))


@settings(max_examples=40, deadline=None)
@given(st.lists(comparisons(), min_size=1, max_size=3))
def test_conjunction_monotone_unsat(atoms):
    """If a prefix is UNSAT, the whole conjunction is UNSAT."""
    solver = Solver()
    if solver.check(and_(*atoms[:-1])) is Result.UNSAT:
        assert solver.check(and_(*atoms)) is Result.UNSAT
