"""Unit and property tests for the s-expression constraint codec."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smt import expr as E
from repro.smt.sexpr import parse_expr, serialize_expr


def roundtrip(expr):
    return parse_expr(serialize_expr(expr))


def test_constants():
    assert roundtrip(E.IntConst(42)) == E.IntConst(42)
    assert roundtrip(E.IntConst(-5)) == E.IntConst(-5)
    assert roundtrip(E.TRUE) is E.TRUE
    assert roundtrip(E.FALSE) is E.FALSE


def test_variables_with_namespaced_names():
    var = E.IntVar("foo::ret_occ3@2")
    assert roundtrip(var) == var
    assert roundtrip(E.BoolVar("main::opaque_1_0")) == E.BoolVar("main::opaque_1_0")


def test_arithmetic():
    expr = E.add(E.mul(E.IntConst(2), E.IntVar("x")), E.IntConst(1))
    assert roundtrip(expr) == expr


def test_comparisons():
    x, y = E.IntVar("x"), E.IntVar("y")
    for op in (E.lt, E.le, E.eq, E.ne):
        assert roundtrip(op(x, y)) == op(x, y)


def test_boolean_connectives():
    a, b = E.BoolVar("a"), E.BoolVar("b")
    expr = E.or_(E.and_(a, b), E.not_(a))
    assert roundtrip(expr) == expr


def test_flattened_and_roundtrips():
    terms = [E.lt(E.IntVar(f"v{i}"), E.IntConst(i)) for i in range(5)]
    expr = E.and_(*terms)
    assert roundtrip(expr) == expr


def test_parse_rejects_garbage():
    with pytest.raises((ValueError, IndexError)):
        parse_expr("(unknown thing)")
    with pytest.raises((ValueError, IndexError)):
        parse_expr("(int 3) trailing")


# -- property-based -----------------------------------------------------------

_names = st.sampled_from(["x", "y", "foo::a", "bar::ret@1"])


@st.composite
def bool_exprs(draw, depth=3):
    if depth == 0:
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return E.BoolVar(draw(_names))
        left = E.IntVar(draw(_names))
        right = E.IntConst(draw(st.integers(-10, 10)))
        op = draw(st.sampled_from([E.lt, E.le, E.eq, E.ne]))
        return op(left, right)
    choice = draw(st.integers(0, 3))
    if choice == 0:
        return E.not_(draw(bool_exprs(depth=depth - 1)))
    if choice <= 2:
        a = draw(bool_exprs(depth=depth - 1))
        b = draw(bool_exprs(depth=depth - 1))
        return (E.and_ if choice == 1 else E.or_)(a, b)
    return draw(bool_exprs(depth=0))


@settings(max_examples=100, deadline=None)
@given(bool_exprs())
def test_roundtrip_identity(expr):
    assert roundtrip(expr) == expr
