"""Tests for model extraction (witness generation)."""

from fractions import Fraction

from hypothesis import given, settings, strategies as st

from repro.smt import (
    BoolVar,
    IntConst,
    IntVar,
    Solver,
    add,
    and_,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
    not_,
    or_,
    sub,
)
from repro.smt import expr as E

X, Y, Z = IntVar("x"), IntVar("y"), IntVar("z")


def model_of(formula):
    return Solver().get_model(formula)


def _evaluate(expr, model):
    if expr.kind in (E.INT_CONST, E.BOOL_CONST):
        return expr.value
    if expr.kind == E.VAR:
        return model.get(expr.args[0], Fraction(0) if expr.sort == "int" else False)
    vals = [_evaluate(a, model) for a in expr.args]
    ops = {
        E.ADD: lambda: sum(vals),
        E.LT: lambda: vals[0] < vals[1],
        E.LE: lambda: vals[0] <= vals[1],
        E.EQ: lambda: vals[0] == vals[1],
        E.NE: lambda: vals[0] != vals[1],
        E.AND: lambda: all(vals),
        E.OR: lambda: any(vals),
        E.NOT: lambda: not vals[0],
    }
    if expr.kind == E.MUL:
        out = Fraction(1)
        for v in vals:
            out *= v
        return out
    return ops[expr.kind]()


def assert_satisfies(formula):
    model = model_of(formula)
    assert model is not None
    assert _evaluate(formula, model), (formula, model)
    return model


def test_trivial_cases():
    assert model_of(E.TRUE) == {}
    assert model_of(E.FALSE) is None


def test_simple_bounds():
    model = assert_satisfies(and_(ge(X, IntConst(3)), lt(X, IntConst(7))))
    assert 3 <= model["x"] < 7


def test_unsat_returns_none():
    assert model_of(and_(lt(X, IntConst(0)), gt(X, IntConst(0)))) is None


def test_equalities_back_substituted():
    phi = and_(
        eq(Y, add(X, IntConst(1))),
        eq(Z, add(Y, IntConst(1))),
        eq(X, IntConst(5)),
    )
    model = assert_satisfies(phi)
    assert model["x"] == 5 and model["y"] == 6 and model["z"] == 7


def test_chained_inequalities():
    phi = and_(lt(X, Y), lt(Y, Z), ge(X, IntConst(0)), le(Z, IntConst(10)))
    model = assert_satisfies(phi)
    assert model["x"] < model["y"] < model["z"]


def test_disequality_avoided():
    phi = and_(ge(X, IntConst(0)), le(X, IntConst(1)), ne(X, IntConst(0)))
    model = assert_satisfies(phi)
    assert model["x"] == 1


def test_integer_preferred():
    model = assert_satisfies(and_(gt(X, IntConst(2)), lt(X, IntConst(9))))
    assert model["x"].denominator == 1


def test_bool_vars_in_model():
    b = BoolVar("b")
    model = assert_satisfies(and_(b, gt(X, IntConst(0))))
    assert model["b"] is True


def test_disjunction_model():
    phi = and_(
        or_(lt(X, IntConst(-10)), gt(X, IntConst(10))),
        ge(X, IntConst(0)),
    )
    model = assert_satisfies(phi)
    assert model["x"] > 10


def test_negated_bool_model():
    b = BoolVar("b")
    model = assert_satisfies(and_(not_(b), ge(X, IntConst(1))))
    assert model["b"] is False


def test_paper_fig3b_feasible_path_model():
    """Path 1 of Figure 3b: x >= 0, y == x - 1, y > 0 -- e.g. x = 2."""
    phi = and_(
        ge(X, IntConst(0)),
        eq(Y, sub(X, IntConst(1))),
        gt(Y, IntConst(0)),
    )
    model = assert_satisfies(phi)
    assert model["x"] >= 2


# -- property-based -------------------------------------------------------------

_names = st.sampled_from(["x", "y", "z"])


@st.composite
def conjunctions(draw):
    n = draw(st.integers(1, 4))
    terms = []
    for _ in range(n):
        op = draw(st.sampled_from([lt, le, eq, ne]))
        left = IntVar(draw(_names))
        right = IntConst(draw(st.integers(-15, 15)))
        if draw(st.booleans()):
            right = add(IntVar(draw(_names)), right)
        terms.append(op(left, right))
    return and_(*terms)


@settings(max_examples=80, deadline=None)
@given(conjunctions())
def test_model_satisfies_formula_whenever_sat(phi):
    """get_model and check agree, and returned models really satisfy."""
    solver = Solver()
    model = solver.get_model(phi)
    from repro.smt import Result

    if solver.check(phi) is Result.SAT:
        # Rational-complete solver: SAT implies a model is found.
        assert model is not None
        assert _evaluate(phi, model)
    else:
        assert model is None
