"""Unit tests for the SMT expression algebra."""

import pytest

from repro.smt import expr as E


def test_int_const_folding_add():
    assert E.add(E.IntConst(2), E.IntConst(3)) == E.IntConst(5)


def test_int_const_folding_mul():
    assert E.mul(E.IntConst(2), E.IntConst(3)) == E.IntConst(6)


def test_add_zero_identity():
    x = E.IntVar("x")
    assert E.add(x, E.IntConst(0)) is x
    assert E.add(E.IntConst(0), x) is x


def test_mul_one_identity():
    x = E.IntVar("x")
    assert E.mul(x, E.IntConst(1)) is x
    assert E.mul(E.IntConst(1), x) is x


def test_mul_zero_annihilates():
    x = E.IntVar("x")
    assert E.mul(x, E.IntConst(0)) == E.IntConst(0)


def test_sub_is_add_of_negation():
    x, y = E.IntVar("x"), E.IntVar("y")
    d = E.sub(x, y)
    assert d.kind == E.ADD


def test_comparison_constant_folding():
    assert E.lt(E.IntConst(1), E.IntConst(2)) is E.TRUE
    assert E.ge(E.IntConst(1), E.IntConst(2)) is E.FALSE
    assert E.eq(E.IntConst(3), E.IntConst(3)) is E.TRUE
    assert E.ne(E.IntConst(3), E.IntConst(3)) is E.FALSE


def test_gt_ge_are_swapped_lt_le():
    x, y = E.IntVar("x"), E.IntVar("y")
    assert E.gt(x, y) == E.lt(y, x)
    assert E.ge(x, y) == E.le(y, x)


def test_and_short_circuits():
    b = E.BoolVar("b")
    assert E.and_(b, E.FALSE) is E.FALSE
    assert E.and_(b, E.TRUE) is b
    assert E.and_() is E.TRUE


def test_or_short_circuits():
    b = E.BoolVar("b")
    assert E.or_(b, E.TRUE) is E.TRUE
    assert E.or_(b, E.FALSE) is b
    assert E.or_() is E.FALSE


def test_and_flattens_nested():
    a, b, c = E.BoolVar("a"), E.BoolVar("b"), E.BoolVar("c")
    e = E.and_(E.and_(a, b), c)
    assert e.kind == E.AND
    assert len(e.args) == 3


def test_not_double_negation():
    b = E.BoolVar("b")
    assert E.not_(E.not_(b)) is b


def test_not_pushes_through_comparisons():
    x, y = E.IntVar("x"), E.IntVar("y")
    assert E.not_(E.lt(x, y)) == E.le(y, x)
    assert E.not_(E.le(x, y)) == E.lt(y, x)
    assert E.not_(E.eq(x, y)) == E.ne(x, y)
    assert E.not_(E.ne(x, y)) == E.eq(x, y)


def test_not_of_constants():
    assert E.not_(E.TRUE) is E.FALSE
    assert E.not_(E.FALSE) is E.TRUE


def test_implies_expansion():
    a, b = E.BoolVar("a"), E.BoolVar("b")
    e = E.implies(a, b)
    assert e.kind == E.OR


def test_expr_hashable_and_equal():
    x1 = E.add(E.IntVar("x"), E.IntConst(1))
    x2 = E.add(E.IntVar("x"), E.IntConst(1))
    assert x1 == x2
    assert hash(x1) == hash(x2)
    assert len({x1, x2}) == 1


def test_variables_collected():
    e = E.and_(E.lt(E.IntVar("x"), E.IntVar("y")), E.BoolVar("b"))
    assert e.variables() == frozenset({"x", "y", "b"})


def test_sort_mismatch_raises():
    with pytest.raises(TypeError):
        E.add(E.IntVar("x"), E.BoolVar("b"))
    with pytest.raises(TypeError):
        E.and_(E.IntVar("x"))
    with pytest.raises(TypeError):
        E.lt(E.IntVar("x"), E.BoolVar("b"))


def test_repr_is_readable():
    e = E.lt(E.IntVar("x"), E.IntConst(3))
    assert "x" in repr(e) and "<" in repr(e)
