"""Unit tests for linearisation of arithmetic expressions."""

from fractions import Fraction

import pytest

from repro.smt import expr as E
from repro.smt.linear import (
    LinearAtom,
    NonLinearError,
    atom_from_comparison,
    linearize,
)


def test_linearize_constant():
    coeffs, const = linearize(E.IntConst(7))
    assert coeffs == {} and const == 7


def test_linearize_variable():
    coeffs, const = linearize(E.IntVar("x"))
    assert coeffs == {"x": 1} and const == 0


def test_linearize_sum_merges_coefficients():
    x = E.IntVar("x")
    coeffs, const = linearize(E.add(E.add(x, x), E.IntConst(4)))
    assert coeffs == {"x": 2} and const == 4


def test_linearize_cancellation_drops_zero_coeff():
    x = E.IntVar("x")
    coeffs, const = linearize(E.sub(x, x))
    assert coeffs == {} and const == 0


def test_linearize_scalar_multiplication():
    x = E.IntVar("x")
    coeffs, const = linearize(E.mul(E.IntConst(3), E.add(x, E.IntConst(2))))
    assert coeffs == {"x": 3} and const == 6


def test_linearize_rejects_variable_product():
    x, y = E.IntVar("x"), E.IntVar("y")
    with pytest.raises(NonLinearError):
        linearize(E.mul(x, y))


def test_atom_from_lt():
    # x < y  ==>  x - y < 0
    atom = atom_from_comparison(E.lt(E.IntVar("x"), E.IntVar("y")))
    assert atom.rel == "<"
    assert dict(atom.coeffs) == {"x": 1, "y": -1}
    assert atom.const == 0


def test_atom_from_ge():
    # x >= 3 is built as 3 <= x  ==>  3 - x <= 0
    atom = atom_from_comparison(E.ge(E.IntVar("x"), E.IntConst(3)))
    assert atom.rel == "<="
    assert dict(atom.coeffs) == {"x": -1}
    assert atom.const == 3


def test_atom_negation_le():
    atom = atom_from_comparison(E.le(E.IntVar("x"), E.IntConst(0)))
    negated = atom.negated()
    assert negated.rel == "<"
    assert dict(negated.coeffs) == {"x": -1}


def test_atom_negation_eq_is_ne():
    atom = atom_from_comparison(E.eq(E.IntVar("x"), E.IntConst(0)))
    assert atom.negated().rel == "!="
    assert atom.negated().negated() == atom


def test_atom_is_hashable():
    a1 = atom_from_comparison(E.lt(E.IntVar("x"), E.IntConst(1)))
    a2 = atom_from_comparison(E.lt(E.IntVar("x"), E.IntConst(1)))
    assert a1 == a2 and hash(a1) == hash(a2)


def test_atom_variables():
    atom = atom_from_comparison(E.lt(E.IntVar("x"), E.IntVar("y")))
    assert atom.variables() == frozenset({"x", "y"})


def test_atom_from_non_comparison_raises():
    with pytest.raises(ValueError):
        atom_from_comparison(E.BoolVar("b"))
