"""Unit tests for the Fourier-Motzkin LIA decision procedure."""

from repro.smt import expr as E
from repro.smt.fourier_motzkin import check_conjunction
from repro.smt.linear import atom_from_comparison


def _atoms(*exprs):
    return [atom_from_comparison(e) for e in exprs]


X, Y, Z = E.IntVar("x"), E.IntVar("y"), E.IntVar("z")


def test_empty_conjunction_is_sat():
    assert check_conjunction([])


def test_single_inequality_sat():
    assert check_conjunction(_atoms(E.lt(X, E.IntConst(10))))


def test_contradictory_bounds_unsat():
    assert not check_conjunction(_atoms(E.lt(X, E.IntConst(0)), E.gt(X, E.IntConst(0))))


def test_boundary_le_ge_sat():
    assert check_conjunction(_atoms(E.le(X, E.IntConst(5)), E.ge(X, E.IntConst(5))))


def test_strict_boundary_unsat():
    assert not check_conjunction(_atoms(E.lt(X, E.IntConst(5)), E.gt(X, E.IntConst(5))))


def test_transitive_chain_unsat():
    # x < y, y < z, z < x
    assert not check_conjunction(_atoms(E.lt(X, Y), E.lt(Y, Z), E.lt(Z, X)))


def test_transitive_chain_sat():
    assert check_conjunction(_atoms(E.lt(X, Y), E.lt(Y, Z)))


def test_equality_substitution():
    # y == x + 1, x < 0, y > 0  is UNSAT over integers (paper's Fig. 3 path 3)
    atoms = _atoms(
        E.eq(Y, E.add(X, E.IntConst(1))),
        E.lt(X, E.IntConst(0)),
        E.gt(Y, E.IntConst(0)),
    )
    assert not check_conjunction(atoms)


def test_equality_substitution_feasible_branch():
    # y == x - 1, x >= 0, y > 0 is SAT (x = 2)
    atoms = _atoms(
        E.eq(Y, E.sub(X, E.IntConst(1))),
        E.ge(X, E.IntConst(0)),
        E.gt(Y, E.IntConst(0)),
    )
    assert check_conjunction(atoms)


def test_chained_equalities():
    # x == y, y == z, x != z is UNSAT
    atoms = _atoms(E.eq(X, Y), E.eq(Y, Z), E.ne(X, Z))
    assert not check_conjunction(atoms)


def test_ground_equality_conflict():
    atoms = _atoms(E.eq(X, E.IntConst(1)), E.eq(X, E.IntConst(2)))
    assert not check_conjunction(atoms)


def test_disequality_split_sat():
    # x >= 0, x != 0 is SAT (x = 1)
    assert check_conjunction(_atoms(E.ge(X, E.IntConst(0)), E.ne(X, E.IntConst(0))))


def test_disequality_pins_unsat():
    # x == 3, x != 3 is UNSAT
    assert not check_conjunction(_atoms(E.eq(X, E.IntConst(3)), E.ne(X, E.IntConst(3))))


def test_integer_tightening_strict_window():
    # 0 < x < 1 has no integer solution; tightening catches it.
    atoms = _atoms(E.gt(X, E.IntConst(0)), E.lt(X, E.IntConst(1)))
    assert not check_conjunction(atoms)


def test_integer_tightening_scaled():
    # 1 < 3x < 2 has a rational solution but no integer one; the gcd-floor
    # tightening catches it.
    three_x = E.mul(E.IntConst(3), X)
    atoms = _atoms(E.gt(three_x, E.IntConst(1)), E.lt(three_x, E.IntConst(2)))
    assert not check_conjunction(atoms)


def test_integer_tightening_scaled_sat_window():
    # 1 < 2x < 3 admits x = 1; tightening must not over-tighten.
    two_x = E.mul(E.IntConst(2), X)
    atoms = _atoms(E.gt(two_x, E.IntConst(1)), E.lt(two_x, E.IntConst(3)))
    assert check_conjunction(atoms)


def test_parameter_passing_example():
    # Paper Fig. 6: x > 0 & a == 2x & a < 0 & y == a + 1 & not(y < 0)
    A = E.IntVar("a")
    atoms = _atoms(
        E.gt(X, E.IntConst(0)),
        E.eq(A, E.mul(E.IntConst(2), X)),
        E.lt(A, E.IntConst(0)),
        E.eq(Y, E.add(A, E.IntConst(1))),
        E.ge(Y, E.IntConst(0)),
    )
    assert not check_conjunction(atoms)


def test_many_variables_elimination():
    # x1 < x2 < ... < x8, all bounded; consistent.
    vs = [E.IntVar(f"v{i}") for i in range(8)]
    exprs = [E.lt(vs[i], vs[i + 1]) for i in range(7)]
    exprs.append(E.ge(vs[0], E.IntConst(0)))
    exprs.append(E.le(vs[7], E.IntConst(100)))
    assert check_conjunction(_atoms(*exprs))


def test_many_variables_elimination_unsat():
    # x1 < ... < x8 but only 3 integers of room.
    vs = [E.IntVar(f"v{i}") for i in range(8)]
    exprs = [E.lt(vs[i], vs[i + 1]) for i in range(7)]
    exprs.append(E.ge(vs[0], E.IntConst(0)))
    exprs.append(E.le(vs[7], E.IntConst(3)))
    assert not check_conjunction(exprs and _atoms(*exprs))
