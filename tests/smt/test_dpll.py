"""Unit tests for the DPLL SAT core."""

from repro.smt import dpll


def _check(clauses, num_vars, assumptions=()):
    model = dpll.solve(clauses, num_vars, assumptions)
    if model is None:
        return None
    for clause in clauses:
        assert any(model[abs(l)] == (l > 0) for l in clause), (
            f"model does not satisfy {clause}"
        )
    return model


def test_empty_formula_sat():
    assert _check([], 0) == {}


def test_single_unit_clause():
    model = _check([(1,)], 1)
    assert model[1] is True


def test_contradictory_units_unsat():
    assert _check([(1,), (-1,)], 1) is None


def test_simple_implication_chain():
    # 1, 1->2, 2->3
    model = _check([(1,), (-1, 2), (-2, 3)], 3)
    assert model[1] and model[2] and model[3]


def test_requires_backtracking():
    # (1 or 2) and (not 1 or 2) and (1 or not 2) forces 1 and 2
    model = _check([(1, 2), (-1, 2), (1, -2)], 2)
    assert model[1] and model[2]


def test_unsat_full_cover():
    clauses = [(1, 2), (1, -2), (-1, 2), (-1, -2)]
    assert _check(clauses, 2) is None


def test_assumptions_respected():
    model = _check([(1, 2)], 2, assumptions=[-1])
    assert model[1] is False and model[2] is True


def test_conflicting_assumptions():
    assert dpll.solve([(1, 2)], 2, assumptions=[1, -1]) is None


def test_assumption_violating_clause_unsat():
    assert dpll.solve([(1,)], 1, assumptions=[-1]) is None


def test_pigeonhole_3_into_2_unsat():
    # p_ij: pigeon i in hole j. vars: p11=1 p12=2 p21=3 p22=4 p31=5 p32=6
    clauses = [(1, 2), (3, 4), (5, 6)]
    for a, b in [(1, 3), (1, 5), (3, 5)]:  # hole 1 pairwise exclusion
        clauses.append((-a, -b))
    for a, b in [(2, 4), (2, 6), (4, 6)]:  # hole 2 pairwise exclusion
        clauses.append((-a, -b))
    assert _check(clauses, 6) is None


def test_blocking_clause_enumeration():
    clauses = [(1, 2)]
    models = []
    for _ in range(4):
        model = dpll.solve(clauses, 2)
        if model is None:
            break
        models.append((model[1], model[2]))
        clauses.append(tuple(-v if model[v] else v for v in (1, 2)))
    assert len(set(models)) == 3  # all assignments except (False, False)


def test_cnf_builder_atom_vars_are_stable():
    b = dpll.CnfBuilder()
    v1 = b.atom_var("a")
    v2 = b.atom_var("b")
    assert v1 != v2
    assert b.atom_var("a") == v1
    assert b.num_vars == 2
