"""End-to-end CLI roundtrip: generate a subject, then check it."""

import pytest

from repro.cli import main
from repro.workloads import build_subject


@pytest.mark.slow
def test_generate_then_check_roundtrip(tmp_path, capsys):
    out_path = tmp_path / "subject.mini"
    assert main(["generate", "zookeeper", "--scale", "0.05",
                 "-o", str(out_path)]) == 0
    capsys.readouterr()  # drain

    # The generated subject seeds real bugs, so `check` must exit 1 and
    # report warnings for every seeded checker.
    code = main(["check", str(out_path), "--stats"])
    out = capsys.readouterr().out
    assert code == 1
    subject = build_subject("zookeeper", scale=0.05)
    expected_checkers = {s.checker for s in subject.seeds}
    for checker in expected_checkers:
        assert f"[{checker}]" in out
    assert "constraints solved" in out


def test_check_single_checker_scopes_report(tmp_path, capsys):
    path = tmp_path / "p.mini"
    path.write_text(
        """
        func main() {
            var f = new FileWriter();
            var s = new Socket();
            s.connect(1);
        }
        """
    )
    main(["check", str(path), "--checkers", "socket"])
    out = capsys.readouterr().out
    assert "[socket]" in out
    assert "[io]" not in out


def test_check_memory_budget_flag(tmp_path, capsys):
    path = tmp_path / "p.mini"
    path.write_text("func main() { var f = new FileWriter(); f.close(); }")
    code = main(["check", str(path), "--memory-budget", "1", "--stats"])
    assert code == 0
    assert "partitions" in capsys.readouterr().out


def test_check_no_cache_flag(tmp_path, capsys):
    path = tmp_path / "p.mini"
    path.write_text("func main() { var f = new FileWriter(); f.close(); }")
    code = main(["check", str(path), "--no-cache", "--stats"])
    out = capsys.readouterr().out
    assert code == 0
    assert "cache hit rate      : 0%" in out
