"""Unit and property tests for the columnar edge store."""

from hypothesis import given, settings, strategies as st

from repro.engine import serialize
from repro.engine.columnar import ROW_BYTES, EdgeColumns, EncodingTable

ENC_A = (("I", "f", 0, 1),)
ENC_B = (("I", "f", 0, 2),)
ENC_S = (("S", "x" * 100),)


def make(edges, table=None):
    if table is None:  # not `or`: an empty EncodingTable is falsy
        table = EncodingTable()
    return EdgeColumns.from_dict(edges, table)


def test_encoding_table_hash_conses():
    table = EncodingTable()
    a = table.intern(ENC_A)
    b = table.intern(ENC_B)
    assert a != b
    assert table.intern(ENC_A) == a
    assert table.decode(a) == ENC_A
    assert len(table) == 2


def test_encoding_table_row_bytes_counts_strings():
    table = EncodingTable()
    plain = table.intern(ENC_A)
    stringy = table.intern(ENC_S)
    assert table.row_bytes(plain) == ROW_BYTES
    assert table.row_bytes(stringy) == ROW_BYTES + 64 + 100
    assert table.has_extras()


def test_from_dict_roundtrips():
    edges = {
        1: {(2, 0): {ENC_A, ENC_B}},
        5: {(1, 3): {ENC_A}},
    }
    cols = make(edges)
    assert cols.to_dict() == edges
    assert cols.edge_count == 3


def test_insert_and_contains():
    table = EncodingTable()
    cols = make({1: {(2, 0): {ENC_A}}}, table)
    a = table.intern(ENC_A)
    b = table.intern(ENC_B)
    assert cols.contains(1, 2, 0, a)
    assert not cols.contains(1, 2, 0, b)
    assert cols.insert(1, 2, 0, b)
    assert not cols.insert(1, 2, 0, b)  # duplicate in overlay
    assert not cols.insert(1, 2, 0, a)  # duplicate in base
    assert cols.contains(1, 2, 0, b)
    assert cols.witness_count(1, 2, 0) == 2
    assert cols.edge_count == 2


def test_out_rows_merges_base_and_overlay():
    table = EncodingTable()
    cols = make({1: {(2, 0): {ENC_A}}}, table)
    b = table.intern(ENC_B)
    cols.insert(1, 3, 1, b)
    rows = sorted(cols.out_rows(1))
    assert rows == sorted([(2, 0, table.intern(ENC_A)), (3, 1, b)])
    assert cols.out_rows(99) == []


def test_byte_accounting_tracks_inserts():
    table = EncodingTable()
    cols = make({1: {(2, 0): {ENC_A}}}, table)
    before = cols.columnar_bytes()
    cols.insert(1, 9, 0, table.intern(ENC_S))
    assert cols.columnar_bytes() == before + ROW_BYTES + 64 + 100


def test_compact_preserves_contents_and_sorts():
    table = EncodingTable()
    cols = make({4: {(1, 0): {ENC_A}}, 2: {(3, 1): {ENC_B}}}, table)
    cols.insert(3, 7, 2, table.intern(ENC_A))
    cols.insert(0, 1, 0, table.intern(ENC_B))
    snapshot = cols.to_dict()
    cols.compact()
    assert not cols.extra
    assert cols.to_dict() == snapshot
    assert list(cols.src) == sorted(cols.src)


def test_split_at_partitions_sources():
    table = EncodingTable()
    cols = make({i: {(i + 1, 0): {ENC_A}} for i in range(10)}, table)
    cols.insert(3, 99, 1, table.intern(ENC_B))
    left, right = cols.split_at(5)
    assert set(left.iter_sources()) == {0, 1, 2, 3, 4}
    assert set(right.iter_sources()) == {5, 6, 7, 8, 9}
    assert left.edge_count + right.edge_count == 11
    assert left.columnar_bytes() + right.columnar_bytes() == ROW_BYTES * 11


def test_merge_dict_dedups_and_collects():
    table = EncodingTable()
    cols = make({1: {(2, 0): {ENC_A}}}, table)
    collected = []
    added = cols.merge_dict(
        {1: {(2, 0): {ENC_A, ENC_B}}, 7: {(8, 1): {ENC_A}}},
        collect=collected,
    )
    assert added == 2
    assert sorted(collected) == sorted(
        [(1, 2, 0, ENC_B), (7, 8, 1, ENC_A)]
    )


def test_encode_parses_back_with_fresh_table():
    table = EncodingTable()
    edges = {1: {(2, 0): {ENC_A, ENC_B}}, 3: {(4, 1): {ENC_S}}}
    cols = make(edges, table)
    parsed = serialize.parse_columnar(cols.encode())
    rebuilt = EdgeColumns.from_file(parsed, EncodingTable())
    assert rebuilt.to_dict() == edges


def test_from_file_remaps_into_shared_table():
    edges = {1: {(2, 0): {ENC_A}}}
    data = make(edges).encode()
    shared = EncodingTable()
    shared.intern(ENC_B)  # occupy id 0 so the file-local id must remap
    cols = EdgeColumns.from_file(serialize.parse_columnar(data), shared)
    assert cols.to_dict() == edges
    assert cols.enc[0] == shared.intern(ENC_A) != 0


# -- property-based ---------------------------------------------------------

_encodings = st.lists(
    st.one_of(
        st.tuples(st.just("I"), st.sampled_from(["f", "g"]),
                  st.integers(0, 50), st.integers(0, 50)),
        st.tuples(st.just("S"), st.text(max_size=10)),
    ),
    min_size=1, max_size=3,
).map(tuple)

_partitions = st.dictionaries(
    st.integers(0, 40),
    st.dictionaries(
        st.tuples(st.integers(0, 40), st.integers(0, 5)),
        st.sets(_encodings, min_size=1, max_size=3),
        min_size=1, max_size=3,
    ),
    max_size=6,
)


@settings(max_examples=60, deadline=None)
@given(_partitions, _partitions)
def test_columns_equal_dict_semantics(base, extra):
    """EdgeColumns under inserts behaves exactly like the dict store."""
    table = EncodingTable()
    cols = EdgeColumns.from_dict(base, table)
    model = {
        s: {k: set(v) for k, v in targets.items()}
        for s, targets in base.items()
    }
    for s, targets in extra.items():
        for (d, l), encodings in targets.items():
            for encoding in encodings:
                expect_new = encoding not in model.get(s, {}).get((d, l), set())
                got_new = cols.insert(s, d, l, table.intern(encoding))
                assert got_new == expect_new
                model.setdefault(s, {}).setdefault((d, l), set()).add(encoding)
    assert cols.to_dict() == model
    assert cols.edge_count == sum(
        len(v) for t in model.values() for v in t.values()
    )
    # Per-source views agree too.
    for s in set(model) | {-1}:
        expected = sorted(
            (d, l, table.intern(e))
            for (d, l), encs in model.get(s, {}).items()
            for e in encs
        )
        assert sorted(cols.out_rows(s)) == expected
    # And the whole thing survives compaction + disk.
    parsed = serialize.parse_columnar(cols.encode())
    assert EdgeColumns.from_file(parsed, EncodingTable()).to_dict() == model
