"""Failure-injection tests: corrupt files, hostile options, tiny budgets."""

import os

import pytest

from repro.cfet import encoding as enc
from repro.cfet.icfet import build_icfet
from repro.engine import serialize
from repro.engine.computation import EngineOptions, GraphEngine
from repro.engine.partition import PartitionStore
from repro.grammar.cfg_grammar import Grammar
from repro.graph.model import ProgramGraph
from repro.lang.parser import parse_program
from repro.lang.transform import lower_exceptions, normalize_calls, unroll_loops


@pytest.fixture()
def icfet():
    program = parse_program("func main(x) { if (x > 0) { } return; }")
    normalize_calls(program)
    unroll_loops(program)
    lower_exceptions(program)
    return build_icfet(program)


class ChainGrammar(Grammar):
    table_driven = True

    def compose(self, edge1, edge2, ctx):
        if edge1[2] == ("a",) and edge2[2] == ("a",):
            return (("a",),)
        return ()


def chain(n):
    graph = ProgramGraph()
    for i in range(n):
        graph.vertices.intern(("v", i))
    for i in range(n - 1):
        graph.add_edge(i, i + 1, ("a",), enc.single("main", 0))
    return graph


def test_truncated_partition_file_raises(tmp_path):
    store = PartitionStore(str(tmp_path), memory_budget=1 << 20, cache_slots=2)
    store.initialize({0: {(1, 0): {(("I", "f", 0, 0),)}}}, num_vertices=2,
                     min_partitions=1)
    part = store.partitions[0]
    data = open(part.path, "rb").read()
    with open(part.path, "wb") as f:
        f.write(data[: len(data) // 2])
    store._cache.clear()
    with pytest.raises((IndexError, ValueError)):
        store.load(part)


def test_corrupt_magic_raises(tmp_path):
    store = PartitionStore(str(tmp_path), memory_budget=1 << 20, cache_slots=2)
    store.initialize({0: {(1, 0): {(("I", "f", 0, 0),)}}}, num_vertices=2,
                     min_partitions=1)
    part = store.partitions[0]
    with open(part.path, "wb") as f:
        f.write(b"NOPE" + b"\x01" * 16)
    store._cache.clear()
    with pytest.raises(ValueError):
        store.load(part)


def test_missing_partition_file_raises(tmp_path):
    store = PartitionStore(str(tmp_path), memory_budget=1 << 20, cache_slots=2)
    store.initialize({0: {(1, 0): {(("I", "f", 0, 0),)}}}, num_vertices=2,
                     min_partitions=1)
    part = store.partitions[0]
    os.remove(part.path)
    store._cache.clear()
    # A vanished file is indistinguishable from a torn one: both surface
    # as CorruptPartition so the retry layer can attempt a rebuild.
    with pytest.raises(serialize.CorruptPartition):
        store.load(part)


def test_serializer_rejects_unknown_element():
    with pytest.raises(ValueError):
        serialize.encode_partition({0: {(1, 0): {(("X", 1),)}}})


def test_engine_workdir_created_if_missing(tmp_path, icfet):
    workdir = str(tmp_path / "deep" / "nested" / "dir")
    options = EngineOptions(workdir=workdir, memory_budget=1 << 20)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(chain(3))
    assert result.stats.edges_after >= 2
    assert os.path.isdir(workdir)


def test_extreme_small_budget_still_correct(icfet):
    """A budget far below a single partition's floor must not break the
    fixpoint (splits bottom out at single-vertex partitions)."""
    options = EngineOptions(memory_budget=256, min_partitions=2)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(chain(8))
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert (0, 7) in pairs
    assert len(pairs) == 8 * 7 // 2
    assert result.stats.final_partitions >= 2


def test_max_pairs_cap_halts(icfet):
    options = EngineOptions(memory_budget=1 << 20, max_pairs=1)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(chain(10))
    assert result.stats.pairs_processed == 1


def test_zero_unroll_rejected():
    from repro.analysis.frontend import compile_source

    with pytest.raises(ValueError):
        compile_source("func main() { }", unroll=0)


def test_result_cleanup_removes_workdir(icfet):
    options = EngineOptions(memory_budget=1 << 20)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(chain(3))
    workdir = os.path.dirname(result.store.partitions[0].path)
    assert os.path.isdir(workdir)
    result.cleanup()
    assert not os.path.exists(workdir)
