"""Integration tests for the rebuilt parallel data plane: the
shm/shard/steal configuration matrix against the serial oracle, stratum
planner behaviour, the shm_unlink fault site, and segment hygiene across
a kill -9 / --resume round trip."""

import os
import subprocess
import sys
import time

import pytest

from repro import EngineOptions, Grapple, GrappleOptions, default_checkers
from repro.engine import shm
from repro.engine.scheduling import StratumPlanner
from repro.workloads import build_subject

HAVE_SHM = shm.available()


def _run(source, workers, **engine_kwargs):
    options = GrappleOptions(
        engine=EngineOptions(
            memory_budget=4 << 20, workers=workers, **engine_kwargs
        )
    )
    fsms = [c.fsm for c in default_checkers()]
    return Grapple(source, fsms, options).run()


def _fixpoint(run):
    edges = frozenset(run.alias_phase.engine_result.iter_edges()) | frozenset(
        run.dataflow_phase.engine_result.iter_edges()
    )
    warnings = sorted(
        (w.checker, w.kind, w.site, w.state, w.line)
        for w in run.report.warnings
    )
    return edges, warnings


# -- configuration matrix ------------------------------------------------------


def test_fork_matrix_matches_serial():
    """Every combination of shm on/off and source sharding on/off must
    reproduce the serial fixpoint bit-for-bit.  (shm=on, shard=auto is
    the default and covered again by test_parallel.py.)"""
    source = build_subject("zookeeper", scale=0.25).source
    serial = _fixpoint(_run(source, workers=1))
    for shm_on in (True, False):
        for shard in ("auto", "off"):
            got = _run(
                source, workers=4, parallel_dispatch="fork",
                shm=shm_on, shard_by_source=shard,
            )
            assert _fixpoint(got) == serial, (
                f"shm={shm_on} shard={shard} diverged from serial"
            )


def test_no_steal_matches_serial():
    source = build_subject("zookeeper", scale=0.25).source
    serial = _fixpoint(_run(source, workers=1))
    barrier = _run(source, workers=4, parallel_dispatch="fork", steal=False)
    assert _fixpoint(barrier) == serial
    assert barrier.alias_phase.engine_result.stats.pairs_stolen == 0


def test_steal_runs_are_reproducible():
    """Two identical steal-enabled runs must produce the same schedule
    (pairs_stolen) and the same fixpoint: steal decisions are keyed to
    absorb order, never wall-clock."""
    source = build_subject("zookeeper", scale=0.25).source
    a = _run(source, workers=4, parallel_dispatch="fork")
    b = _run(source, workers=4, parallel_dispatch="fork")
    assert _fixpoint(a) == _fixpoint(b)
    assert (
        a.alias_phase.engine_result.stats.pairs_stolen
        == b.alias_phase.engine_result.stats.pairs_stolen
    )


# -- stratum planner -----------------------------------------------------------


def test_strata_matrix_same_warnings():
    """Strata 1/2/8 at workers 1 and 4 all emit byte-identical
    warnings (the planner reorders work, never changes it)."""
    source = build_subject("zookeeper", scale=0.2).source
    baseline = None
    for workers in (1, 4):
        for strata in (1, 2, 8):
            run = _run(
                source, workers=workers, parallel_dispatch="fork",
                shard_by_source=strata,
            )
            warnings = _fixpoint(run)[1]
            if baseline is None:
                baseline = warnings
            assert warnings == baseline, (
                f"workers={workers} strata={strata} changed the warnings"
            )


def test_planner_resolution_interacts_with_effective_workers():
    """shard_by_source="auto" derives strata from the pool: without a
    pool (inline dispatch, or effective_workers collapsing to 1) it
    resolves to 0; an explicit stratum count engages even inline."""
    source = build_subject("zookeeper", scale=0.2).source
    auto = _run(source, workers=2, parallel_dispatch="inline")
    assert auto.alias_phase.engine_result.stats.strata == 0
    explicit = _run(
        source, workers=2, parallel_dispatch="inline", shard_by_source=8
    )
    assert explicit.alias_phase.engine_result.stats.strata == 8
    serial = _fixpoint(_run(source, workers=1))
    assert _fixpoint(explicit) == serial
    forked = _run(source, workers=4, parallel_dispatch="fork")
    assert forked.alias_phase.engine_result.stats.strata == 4


def test_stratum_planner_orders_same_stratum_first():
    class _Store:
        partitions = list(range(8))

    planner = StratumPlanner(_Store(), strata=4)
    planner.rebuild()
    assert [planner.stratum(i) for i in range(8)] == [0, 0, 1, 1, 2, 2, 3, 3]
    # Same-stratum pairs sort ahead of cross-stratum stitch-up work.
    assert planner.wave_key((0, 1)) < planner.wave_key((0, 2))
    assert planner.wave_key((2, 3)) < planner.wave_key((1, 2))
    # Cross-stratum pairs order by the lowest stratum touched.
    assert planner.wave_key((0, 7)) < planner.wave_key((2, 7))


def test_stratum_planner_tracks_splits():
    class _Store:
        partitions = list(range(4))

    store = _Store()
    planner = StratumPlanner(store, strata=2)
    planner.rebuild()
    assert [planner.stratum(i) for i in range(4)] == [0, 0, 1, 1]
    store.partitions = list(range(6))  # two splits landed
    planner.rebuild()
    assert [planner.stratum(i) for i in range(6)] == [0, 0, 0, 1, 1, 1]


# -- fault injection -----------------------------------------------------------


@pytest.mark.skipif(not HAVE_SHM, reason="POSIX shared memory unavailable")
def test_shm_unlink_fault_retries_and_matches(tmp_path):
    """Unlinking a segment out from under the first attach must go
    through the CorruptPartition retry path (republish + requeue) and
    still converge to the serial fixpoint."""
    source = build_subject("zookeeper", scale=0.25).source
    serial = _fixpoint(_run(source, workers=1))
    faulted = _run(
        source, workers=4, parallel_dispatch="fork",
        workdir=str(tmp_path / "wd"),
        fault_plan="shm_unlink@attach:1",
    )
    assert _fixpoint(faulted) == serial
    stats = faulted.alias_phase.engine_result.stats
    assert stats.retries >= 1, "the lost attach never reached the retry path"


# -- kill -9 hygiene and resume ------------------------------------------------

_SUBJECT_PROG = """\
import sys
from repro import Grapple, GrappleOptions, EngineOptions
from repro.checkers.checker import ALL_CHECKERS, Checker
from repro.workloads import build_subject

workdir, resume, fault_plan = sys.argv[1:4]
subject = build_subject("zookeeper", scale=0.3)
options = GrappleOptions(
    engine=EngineOptions(
        workdir=workdir,
        resume=resume == "1",
        fault_plan=fault_plan or None,
        workers=4,
        parallel_dispatch="fork",
    )
)
fsms = [Checker.by_name(n).fsm for n in ALL_CHECKERS]
run = Grapple(subject.source, fsms, options).run()
for warning in run.report.warnings:
    print(warning)
print(run.report.summary())
"""


def _subject_run(workdir, *, resume=False, fault_plan=""):
    env = dict(
        os.environ,
        PYTHONPATH=os.pathsep.join(sys.path),
        PYTHONHASHSEED="0",
    )
    return subprocess.run(
        [sys.executable, "-c", _SUBJECT_PROG, str(workdir),
         "1" if resume else "0", fault_plan],
        env=env, capture_output=True, text=True, timeout=600,
    )


def _grpl_segments():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("grpl_")}
    except OSError:
        return set()


@pytest.mark.slow
@pytest.mark.skipif(not HAVE_SHM, reason="POSIX shared memory unavailable")
def test_kill9_leaves_no_stale_segments_and_resume_matches(tmp_path):
    """SIGKILL a 4-worker run mid-closure: the resource tracker (which
    outlives the coordinator) must unlink every published segment, and
    a --resume must reproduce the uninterrupted run's warnings."""
    before = _grpl_segments()
    workdir = tmp_path / "wd"
    killed = _subject_run(workdir, fault_plan="kill_run@checkpoint:2")
    assert killed.returncode == -9, killed.stderr[-2000:]

    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        stale = _grpl_segments() - before
        if not stale:
            break
        time.sleep(0.25)
    assert not stale, f"stale shared-memory segments survived: {stale}"

    resumed = _subject_run(workdir, resume=True)
    assert resumed.returncode == 0, resumed.stderr[-2000:]
    clean = _subject_run(tmp_path / "wd-clean")
    assert clean.returncode == 0, clean.stderr[-2000:]
    assert resumed.stdout == clean.stdout
    assert _grpl_segments() - before == set()
