"""End-to-end equivalence against pre-columnar golden runs.

``golden/`` holds the canonicalised output (full edge sets with witness
encodings, plus checker warnings) of the dict-based engine on two
synthetic subjects, captured before the columnar-store refactor.  The
columnar engine -- serial and parallel -- must reproduce them exactly:
the refactor is a representation change, not a semantics change.

These are the slowest tests in tier 1 (~40s total); they are the ones
that catch witness-cap order dependence and fixpoint divergence that
unit tests cannot see.
"""

import json

import pytest

from .oracle_capture import SUBJECTS, canonical_run, golden_path, run_subject


#: The batched-kernel matrix: the scalar drain, the pure-stdlib backend,
#: and "auto" (numpy when installed, stdlib otherwise) must all land on
#: the same fixpoint byte for byte, serial and parallel.
KERNELS = ("off", "stdlib", "auto")


@pytest.mark.parametrize("name,scale", SUBJECTS)
@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("kernel", KERNELS)
def test_matches_pre_columnar_golden(name, scale, workers, kernel):
    with open(golden_path(name, scale)) as f:
        golden = json.load(f)
    run = run_subject(name, scale, workers=workers, kernel=kernel)
    got = canonical_run(run)
    assert got["warnings"] == golden["warnings"]
    assert got["edges"] == golden["edges"]
