"""Integration tests for the graph engine on hand-built graphs."""

import pytest

from repro.cfet import encoding as enc
from repro.cfet.icfet import build_icfet
from repro.engine.computation import EngineOptions, GraphEngine
from repro.grammar.cfg_grammar import Grammar
from repro.graph.model import ProgramGraph
from repro.lang.parser import parse_program
from repro.lang.transform import lower_exceptions, normalize_calls, unroll_loops

# A tiny program giving us an ICFET whose root function has two branches,
# used to attach real interval encodings to synthetic edges.
SOURCE = """
func main(x) {
    if (x > 0) {
        if (x > 10) {
            return;
        }
        return;
    }
    return;
}
"""


@pytest.fixture()
def icfet():
    program = parse_program(SOURCE)
    normalize_calls(program)
    unroll_loops(program)
    lower_exceptions(program)
    return build_icfet(program)


class ChainGrammar(Grammar):
    """a . a -> a : plain transitive closure over label ('a',)."""

    table_driven = True

    def compose(self, edge1, edge2, ctx):
        if edge1[2] == ("a",) and edge2[2] == ("a",):
            return (("a",),)
        return ()


def build_chain(n, icfet, encoding=None):
    graph = ProgramGraph()
    encoding = encoding or enc.single("main", 0)
    for i in range(n):
        graph.vertices.intern(("v", i))
    for i in range(n - 1):
        graph.add_edge(i, i + 1, ("a",), encoding)
    return graph


def run(graph, icfet, grammar=None, **opts):
    options = EngineOptions(memory_budget=1 << 20, **opts)
    engine = GraphEngine(icfet, grammar or ChainGrammar(), options)
    return engine, engine.run(graph)


def test_transitive_closure_of_chain(icfet):
    graph = build_chain(5, icfet)
    _, result = run(graph, icfet)
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    expected = {(i, j) for i in range(5) for j in range(i + 1, 5)}
    assert pairs == expected


def test_closure_result_counts(icfet):
    graph = build_chain(4, icfet)
    _, result = run(graph, icfet)
    # 3 base + 2 length-2 + 1 length-3 = 6, but composition of composed
    # edges also finds (0,3) via multiple routes -- deduped to 6 pairs.
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert len(pairs) == 6
    assert result.stats.edges_after >= 6


def test_infeasible_composition_dropped(icfet):
    """Edges whose merged constraint is UNSAT must not be added."""
    graph = ProgramGraph()
    for i in range(3):
        graph.vertices.intern(("v", i))
    # main node 2 is the x > 0 branch; node 1 is x <= 0.
    graph.add_edge(0, 1, ("a",), (enc.interval("main", 0, 2),))
    graph.add_edge(1, 2, ("a",), (enc.interval("main", 0, 1),))
    _, result = run(graph, icfet)
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert (0, 2) not in pairs
    assert result.stats.infeasible_dropped >= 1


def test_feasible_composition_kept(icfet):
    graph = ProgramGraph()
    for i in range(3):
        graph.vertices.intern(("v", i))
    graph.add_edge(0, 1, ("a",), (enc.interval("main", 0, 2),))
    graph.add_edge(1, 2, ("a",), (enc.interval("main", 2, 6),))
    _, result = run(graph, icfet)
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert (0, 2) in pairs


def test_witness_cap_limits_encodings(icfet):
    graph = ProgramGraph()
    for i in range(4):
        graph.vertices.intern(("v", i))
    # Two parallel routes 0 -> k -> 3 give two witness encodings for (0, 3).
    graph.add_edge(0, 1, ("a",), enc.single("main", 0))
    graph.add_edge(1, 3, ("a",), enc.single("main", 1))
    graph.add_edge(0, 2, ("a",), enc.single("main", 0))
    graph.add_edge(2, 3, ("a",), enc.single("main", 2))
    _, result = run(graph, icfet, witness_cap=1)
    encodings_03 = [e for s, d, _l, e in result.iter_edges() if (s, d) == (0, 3)]
    assert len(encodings_03) == 1


def test_derived_reverse_edges(icfet):
    class RevGrammar(Grammar):
        table_driven = True

        def derived(self, label):
            if label == ("fwd",):
                yield ("bwd",), True

        def compose(self, edge1, edge2, ctx):
            return ()

    graph = ProgramGraph()
    graph.vertices.intern(("v", 0))
    graph.vertices.intern(("v", 1))
    graph.add_edge(0, 1, ("fwd",), enc.single("main", 0))
    _, result = run(graph, icfet, grammar=RevGrammar())
    edges = {(s, d, l) for s, d, l, _e in result.iter_edges()}
    assert (1, 0, ("bwd",)) in edges


def test_cache_disabled_still_correct(icfet):
    graph = build_chain(5, icfet)
    engine, result = run(graph, icfet, enable_cache=False)
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert len(pairs) == 10
    assert engine.stats.cache_hits == 0


def test_cache_enabled_hits(icfet):
    graph = build_chain(6, icfet)
    engine, _ = run(graph, icfet, enable_cache=True)
    assert engine.stats.cache_hits > 0


def test_small_budget_forces_partitions(icfet):
    graph = build_chain(60, icfet)
    options = EngineOptions(memory_budget=4096, min_partitions=2)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(graph)
    assert result.stats.final_partitions > 2
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    # Closure must still be complete despite partitioning.
    assert (0, 59) in pairs
    assert len(pairs) == 60 * 59 // 2


def test_time_budget_marks_timeout(icfet):
    graph = build_chain(40, icfet)
    options = EngineOptions(memory_budget=4096, time_budget=0.0)
    engine = GraphEngine(icfet, ChainGrammar(), options)
    result = engine.run(graph)
    assert result.stats.timed_out


def test_string_mode_closure_matches_interval_mode(icfet):
    graph1 = build_chain(5, icfet)
    _, result1 = run(graph1, icfet)
    graph2 = build_chain(5, icfet)
    _, result2 = run(graph2, icfet, constraint_mode="string")
    pairs1 = {(s, d) for s, d, _l, _e in result1.iter_edges()}
    pairs2 = {(s, d) for s, d, _l, _e in result2.iter_edges()}
    assert pairs1 == pairs2


def test_string_mode_drops_infeasible(icfet):
    graph = ProgramGraph()
    for i in range(3):
        graph.vertices.intern(("v", i))
    graph.add_edge(0, 1, ("a",), (enc.interval("main", 0, 2),))
    graph.add_edge(1, 2, ("a",), (enc.interval("main", 0, 1),))
    _, result = run(graph, icfet, constraint_mode="string")
    pairs = {(s, d) for s, d, _l, _e in result.iter_edges()}
    assert (0, 2) not in pairs


def test_result_collect_by_label(icfet):
    graph = build_chain(3, icfet)
    _, result = run(graph, icfet)
    collected = result.collect_by_label(lambda label: label == ("a",))
    assert all(key[2] == ("a",) for key in collected)
    assert len(collected) == 3


def test_prefetch_lookahead_uses_configured_depth(icfet, monkeypatch):
    """The serial loop asks the scheduler for ``prefetch_depth`` upcoming
    pairs (not the hardwired 2 it used before the option existed)."""
    from repro.engine import scheduling

    seen = []
    original = scheduling.PairScheduler.peek_pairs

    def recording_peek(self, count=1):
        seen.append(count)
        return original(self, count)

    monkeypatch.setattr(scheduling.PairScheduler, "peek_pairs", recording_peek)
    graph = build_chain(60, icfet)
    options = EngineOptions(memory_budget=6 << 10, prefetch_depth=7)
    GraphEngine(icfet, ChainGrammar(), options).run(graph)
    assert seen, "prefetch lookahead never consulted the scheduler"
    assert set(seen) == {7}
