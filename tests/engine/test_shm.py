"""Unit tests for the shared-memory data plane (engine/shm.py):
publish/attach round trips, generation stamping, the append-only
encoding-table stream, fault injection, and segment cleanup."""

import os
from types import SimpleNamespace

import pytest

from repro.engine import shm
from repro.engine.columnar import EdgeColumns, EncodingTable
from repro.engine.stats import EngineStats
from repro.faults import FaultPlan

pytestmark = pytest.mark.skipif(
    not shm.available(), reason="POSIX shared memory unavailable"
)


def _cols(table, rows):
    cols = EdgeColumns(table)
    for s, d, label, encoding in rows:
        cols.insert(s, d, label, table.intern(encoding))
    cols.compact()
    return cols


def _rows(cols, table):
    return sorted(
        (s, d, label, table.decode(eid))
        for s, d, label, eid in cols.iter_rows()
    )


ROWS = [
    (0, 1, 3, (("I", "f", 0, 0),)),
    (0, 2, 3, (("I", "g", 1, 1),)),
    (2, 5, 4, (("I", "f", 0, 0), ("I", "h", 2, 2))),
]


@pytest.fixture()
def hub(tmp_path):
    hub = shm.ShmHub(shm.workdir_tag(str(tmp_path)), stats=EngineStats())
    yield hub
    hub.close()


def _segments(tag):
    prefix = shm.NAME_PREFIX + tag + "_"
    return sorted(n for n in os.listdir("/dev/shm") if n.startswith(prefix))


def test_workdir_tag_stable_and_distinct(tmp_path):
    a = shm.workdir_tag(str(tmp_path / "a"))
    assert a == shm.workdir_tag(str(tmp_path / "a"))
    assert a != shm.workdir_tag(str(tmp_path / "b"))
    assert len(a) == 10


def test_publish_attach_round_trip(hub):
    table = EncodingTable()
    cols = _cols(table, ROWS)
    part = SimpleNamespace(index=0, version=1)
    ref = hub.publish(part, table, lambda: cols)
    assert ref is not None and ref["rows"] == 3

    # Worker side: fresh table, ids interned in a different order.
    worker_table = EncodingTable()
    worker_table.intern((("I", "z", 9, 9),))
    cache = shm.ShmAttachCache(worker_table, stats=EngineStats())
    shared = cache.attach(ref, hub.table_ref)
    assert _rows(shared, worker_table) == _rows(cols, table)
    # Zero-copy probe path used by the kernel and the merge-join drain.
    assert [(d, lab) for d, lab, _e in shared.out_rows(0)] == [(1, 3), (2, 3)]
    assert cache.stats.shm_attaches == 1
    assert cache.stats.shm_bytes_mapped >= ref["nbytes"]
    cache.close()


def test_publish_is_version_cached(hub):
    table = EncodingTable()
    cols = _cols(table, ROWS)
    part = SimpleNamespace(index=0, version=1)
    calls = []

    def loader():
        calls.append(1)
        return cols

    ref1 = hub.publish(part, table, loader)
    ref2 = hub.publish(part, table, loader)
    assert ref1 is ref2 and len(calls) == 1
    part.version = 2
    ref3 = hub.publish(part, table, loader)
    assert len(calls) == 2
    assert ref3["generation"] > ref1["generation"]
    assert hub.stats.shm_publishes == 2


def test_invalidate_unlinks_segment(hub):
    table = EncodingTable()
    part = SimpleNamespace(index=3, version=1)
    ref = hub.publish(part, table, lambda: _cols(table, ROWS))
    assert ref["name"] in _segments(hub.tag)
    hub.invalidate(3)
    assert ref["name"] not in _segments(hub.tag)


def test_close_unlinks_everything_and_scrub_cleans_leftovers(tmp_path):
    tag = shm.workdir_tag(str(tmp_path))
    hub = shm.ShmHub(tag)
    table = EncodingTable()
    hub.publish(SimpleNamespace(index=0, version=1), table,
                lambda: _cols(table, ROWS))
    assert _segments(tag)
    hub.close()
    assert _segments(tag) == []
    # A crashed predecessor's leftovers are scrubbed by name prefix.
    leftover = shm._Segment(
        name=f"{shm.NAME_PREFIX}{tag}_p9g9", create=True, size=64
    )
    leftover.try_close()
    fresh = shm.ShmHub(tag)
    assert _segments(tag) == []
    fresh.close()


def test_table_stream_survives_growth(hub):
    """Interning past the segment capacity grows the table segment
    prefix-identically; an attached reader keeps its parse offset."""
    table = EncodingTable()
    cols = _cols(table, ROWS)
    ref = hub.publish(SimpleNamespace(index=0, version=1), table,
                      lambda: cols)
    worker_table = EncodingTable()
    cache = shm.ShmAttachCache(worker_table)
    cache.attach(ref, hub.table_ref)
    gen_before = hub.table_ref["generation"]

    # Force growth: a large batch of fresh encodings.
    for i in range(4000):
        table.intern((("I", f"name_{i}", i % 7, i % 5),))
    hub.sync_table(table)
    assert hub.table_ref["generation"] > gen_before

    extra = _cols(table, [(7, 8, 1, (("I", "name_1234", 2, 4),))])
    ref2 = hub.publish(SimpleNamespace(index=1, version=1), table,
                       lambda: extra)
    shared = cache.attach(ref2, hub.table_ref)
    assert _rows(shared, worker_table) == _rows(extra, table)
    cache.close()


def test_stale_generation_raises_attach_lost(hub):
    table = EncodingTable()
    part = SimpleNamespace(index=0, version=1)
    ref = dict(hub.publish(part, table, lambda: _cols(table, ROWS)))
    ref["generation"] += 1  # ref from a future republish
    cache = shm.ShmAttachCache(EncodingTable())
    with pytest.raises(shm.ShmAttachLost):
        cache.attach(ref, hub.table_ref)
    cache.close()


def test_vanished_segment_raises_attach_lost(hub):
    table = EncodingTable()
    ref = hub.publish(SimpleNamespace(index=0, version=1), table,
                      lambda: _cols(table, ROWS))
    hub.invalidate(0)  # segment unlinked out from under the worker
    cache = shm.ShmAttachCache(EncodingTable())
    with pytest.raises(shm.ShmAttachLost):
        cache.attach(ref, hub.table_ref)
    cache.close()


def test_shm_unlink_fault_injection(hub):
    """The dedicated fault site unlinks the target segment right before
    the attach, which must surface as ShmAttachLost (the retry path),
    never a silent file fallback."""
    table = EncodingTable()
    ref = hub.publish(SimpleNamespace(index=0, version=1), table,
                      lambda: _cols(table, ROWS))
    plan = FaultPlan.parse("shm_unlink@attach:1")
    cache = shm.ShmAttachCache(EncodingTable(), faults=plan)
    with pytest.raises(shm.ShmAttachLost):
        cache.attach(ref, hub.table_ref)
    assert ref["name"] not in _segments(hub.tag)
    # The fault latched: a republished segment attaches fine.
    hub._parts.clear()
    ref2 = hub.publish(SimpleNamespace(index=0, version=1), table,
                       lambda: _cols(table, ROWS))
    assert cache.attach(ref2, hub.table_ref) is not None
    cache.close()


def test_attach_cache_hits_by_name_and_version(hub):
    table = EncodingTable()
    cols = _cols(table, ROWS)
    part = SimpleNamespace(index=0, version=1)
    ref = hub.publish(part, table, lambda: cols)
    stats = EngineStats()
    cache = shm.ShmAttachCache(EncodingTable(), stats=stats)
    first = cache.attach(ref, hub.table_ref)
    assert cache.attach(ref, hub.table_ref) is first
    assert stats.shm_attaches == 1
    # A republish (new generation) misses and re-attaches.
    part.version = 2
    ref2 = hub.publish(part, table, lambda: cols)
    second = cache.attach(ref2, hub.table_ref)
    assert second is not first
    assert stats.shm_attaches == 2
    cache.close()


def test_publish_failure_after_create_unlinks_partial_segment(hub, monkeypatch):
    """An OSError raised *after* the partition segment exists (here the
    header pack; on a real host the column copy hitting a full
    /dev/shm) must unlink the partial segment: it is not yet in
    hub._parts, so close()/atexit would never reclaim it."""
    table = EncodingTable()

    class _BoomHeader:
        size = shm.PART_HEADER.size

        @staticmethod
        def pack_into(*args, **kwargs):
            raise OSError("no space left on device")

    monkeypatch.setattr(shm, "PART_HEADER", _BoomHeader)
    ref = hub.publish(SimpleNamespace(index=0, version=1), table,
                      lambda: _cols(table, ROWS))
    assert ref is None and hub.broken
    assert not any("_p0g" in name for name in _segments(hub.tag))


def test_table_growth_failure_unlinks_fresh_segment(hub, monkeypatch):
    """An OSError during the grow-and-copy of the encoding-table stream
    must unlink the just-created bigger segment (not yet tracked as
    hub._table_seg) and leave the old generation intact."""
    table = EncodingTable()
    hub.publish(SimpleNamespace(index=0, version=1), table,
                lambda: _cols(table, ROWS))
    before = hub.table_ref["name"]
    for i in range(4000):  # next sync must outgrow the current capacity
        table.intern((("I", f"grow_{i}", i % 7, i % 5),))

    class _TornSegment(shm._Segment):
        @property
        def buf(self):
            raise OSError("mmap write failed")

    monkeypatch.setattr(shm, "_Segment", _TornSegment)
    with pytest.raises(OSError):
        hub.sync_table(table)
    monkeypatch.undo()
    enc_segments = [n for n in _segments(hub.tag) if "_enc_g" in n]
    assert enc_segments == [before]
    assert hub.table_ref["name"] == before


def test_available_requires_scrubbable_backing(monkeypatch):
    """The plane only engages where scrub() can actually find leftover
    segments: no /dev/shm, no shared-memory data plane."""
    real_isdir = os.path.isdir
    monkeypatch.setattr(
        os.path, "isdir",
        lambda p: False if p == shm.SHM_DIR else real_isdir(p),
    )
    assert not shm.available()


def test_broken_hub_degrades_to_none(hub, monkeypatch):
    table = EncodingTable()

    def boom(*a, **kw):
        raise OSError("no space left on device")

    monkeypatch.setattr(shm, "_Segment", boom)
    ref = hub.publish(SimpleNamespace(index=0, version=1), table,
                      lambda: _cols(table, ROWS))
    assert ref is None and hub.broken
    monkeypatch.undo()
    # Broken stays broken: the run falls back to files for good.
    assert hub.publish(SimpleNamespace(index=0, version=2), table,
                       lambda: _cols(table, ROWS)) is None
